//! A complete quality study on MovieLens-shaped data — the paper's
//! Section 7.1 protocol in one runnable program.
//!
//! Pipeline: synthesize a MovieLens-shaped corpus → slice 200 random users
//! × 100 densest movies → predict the missing ratings (the paper's CF
//! pre-processing; here an item-item KNN model) → run GRD, the clustering
//! baseline and the OPT~ local-search proxy under both semantics → report
//! objective, average group satisfaction and group-size distribution.
//!
//! To run on the *real* MovieLens file instead, pass its path:
//! `cargo run --release --example movielens_study -- path/to/ratings.dat`

use groupform::eval::table::fmt_f;
use groupform::eval::{FiveNumber, Table};
use groupform::exact::{LocalSearch, LocalSearchConfig};
use groupform::prelude::*;
use std::io::BufReader;

fn load_or_synthesize() -> RatingMatrix {
    if let Some(path) = std::env::args().nth(1) {
        println!("loading real MovieLens ratings from {path} …");
        let file = std::fs::File::open(&path).expect("ratings file exists");
        let loaded = groupform::datasets::io::read_movielens_dat(
            BufReader::new(file),
            RatingScale::half_star(),
        )
        .expect("parse ratings.dat");
        println!(
            "loaded {} ratings from {} users x {} movies",
            loaded.matrix.nnz(),
            loaded.matrix.n_users(),
            loaded.matrix.n_items()
        );
        loaded.matrix
    } else {
        let data = SynthConfig::movielens()
            .with_users(3_000)
            .with_items(600)
            .generate();
        println!(
            "synthesized MovieLens-shaped corpus ({} ratings)",
            data.matrix.nnz()
        );
        data.matrix
    }
}

fn main() {
    let corpus = load_or_synthesize();

    // The paper's quality slice: 200 random users x 100 dense items,
    // completed by collaborative filtering.
    let slice = groupform::datasets::sample::experimental_slice(&corpus, 200, 100, 42)
        .expect("slice the corpus");
    let knn = ItemItemKnn::fit(&slice, 20, 10.0);
    let full = complete_matrix(&slice, &knn, Some(1.0)).expect("complete the slice");
    let prefs = PrefIndex::build(&full);
    println!(
        "{}",
        DatasetStats::compute("study-slice (completed)", &full)
    );

    let opt_proxy = LocalSearch::with_config(LocalSearchConfig {
        max_rounds: 12,
        allow_swaps: true,
    });

    let mut table = Table::new(
        "Quality study: 200 users, 100 items, 10 groups, k = 5",
        &[
            "config",
            "algorithm",
            "objective",
            "avg satisfaction",
            "groups",
        ],
    );
    for sem in [Semantics::LeastMisery, Semantics::AggregateVoting] {
        for agg in [Aggregation::Min, Aggregation::Max, Aggregation::Sum] {
            let cfg = FormationConfig::new(sem, agg, 5, 10);
            let algos: Vec<(&str, FormationResult)> = vec![
                (
                    "GRD",
                    GreedyFormer::new().form(&full, &prefs, &cfg).unwrap(),
                ),
                (
                    "Baseline",
                    BaselineFormer::new().form(&full, &prefs, &cfg).unwrap(),
                ),
                ("OPT~", opt_proxy.form(&full, &prefs, &cfg).unwrap()),
            ];
            for (label, result) in &algos {
                let avg = groupform::core::avg_group_satisfaction(
                    &full,
                    &result.grouping,
                    sem,
                    cfg.policy,
                    cfg.k,
                );
                table.push_row(vec![
                    format!("{}-{}", sem.tag(), agg.tag()),
                    label.to_string(),
                    fmt_f(result.objective),
                    fmt_f(avg),
                    result.grouping.len().to_string(),
                ]);
            }
            // Sanity: the greedy LM guarantees hold against the proxy.
            if let Some(bound) = cfg.error_bound(&full) {
                let grd_obj = algos[0].1.objective;
                let opt_obj = algos[2].1.objective;
                assert!(
                    opt_obj - grd_obj <= bound + 1e-9,
                    "{sem}-{agg}: error bound violated"
                );
            }
        }
    }
    println!("{table}");

    // Group-size distribution (Table 4 style) for GRD-LM-MAX.
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Max, 5, 10);
    let result = GreedyFormer::new().form(&full, &prefs, &cfg).unwrap();
    let sizes: Vec<f64> = result.grouping.sizes().iter().map(|&s| s as f64).collect();
    println!(
        "GRD-LM-MAX group sizes: {}",
        FiveNumber::compute(&sizes).unwrap()
    );
}
