//! Music listener segmentation — the Yahoo!-Music-shaped scenario.
//!
//! An online music service wants to split a large listener base into
//! segments and push each segment one playlist. This example runs the full
//! pipeline at a realistic sparse scale (20,000 listeners × 5,000 songs):
//! no matrix completion, missing ratings handled pessimistically, both
//! semantics compared, with wall-clock timings — a miniature of the
//! paper's Section 7.2 scalability study.
//!
//! Run with: `cargo run --release --example music_segments`

use groupform::prelude::*;
use std::time::Instant;

fn main() {
    let start = Instant::now();
    let data = SynthConfig::yahoo_music()
        .with_users(20_000)
        .with_items(5_000)
        .with_seed(7)
        .generate();
    let prefs = PrefIndex::build(&data.matrix);
    println!(
        "generated {} ratings for {} listeners x {} songs in {:.2?}",
        data.matrix.nnz(),
        data.matrix.n_users(),
        data.matrix.n_items(),
        start.elapsed()
    );

    // 50 segments, 10-song playlists.
    for (sem, agg) in [
        (Semantics::LeastMisery, Aggregation::Min),
        (Semantics::LeastMisery, Aggregation::Sum),
        (Semantics::AggregateVoting, Aggregation::Min),
    ] {
        let cfg = FormationConfig::new(sem, agg, 10, 50);
        let t = Instant::now();
        let result = GreedyFormer::new()
            .form(&data.matrix, &prefs, &cfg)
            .expect("formation at scale");
        let elapsed = t.elapsed();
        let avg_sat = groupform::core::avg_group_satisfaction(
            &data.matrix,
            &result.grouping,
            sem,
            cfg.policy,
            cfg.k,
        );
        let sizes = result.grouping.sizes();
        let largest = sizes.iter().max().copied().unwrap_or(0);
        println!(
            "{:<11}: objective {:>9.1} | avg group satisfaction {:>6.2} | \
             {} segments (largest {largest}) | {} hash keys | {elapsed:.2?}",
            cfg.grd_name(),
            result.objective,
            avg_sat,
            result.grouping.len(),
            result.n_buckets,
        );
    }

    // The Section-6 weighted-sum extension: discount playlist positions.
    let weighted = FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::WeightedSum(WeightScheme::InverseLog2),
        10,
        50,
    );
    let result = GreedyFormer::new()
        .form(&data.matrix, &prefs, &weighted)
        .expect("weighted formation");
    println!(
        "{:<11}: objective {:>9.1} (DCG-style position discounting)",
        "GRD-LM-WSUM", result.objective
    );
}
