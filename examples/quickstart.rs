//! Quickstart: the paper's running example, end to end.
//!
//! Builds Table 1 (Example 1 of the paper), forms groups with
//! `GRD-LM-MIN`, compares against the exact optimum, and prints the
//! recommended item per group — reproducing the numbers in Sections 4
//! and Appendix A (GRD objective 11, optimum 12).
//!
//! Run with: `cargo run --release --example quickstart`

use groupform::prelude::*;

fn main() {
    // Table 1 of the paper: 6 users (rows) rating 3 items (columns).
    let matrix = RatingMatrix::from_dense(
        &[
            // i1,  i2,  i3
            &[1.0, 4.0, 3.0][..], // u1
            &[2.0, 3.0, 5.0],     // u2
            &[2.0, 5.0, 1.0],     // u3
            &[2.0, 5.0, 1.0],     // u4
            &[3.0, 1.0, 1.0],     // u5
            &[1.0, 2.0, 5.0],     // u6
        ],
        RatingScale::one_to_five(),
    )
    .expect("valid example matrix");
    let prefs = PrefIndex::build(&matrix);

    // Recommend the top-1 item per group, form at most 3 groups, least
    // misery semantics (k = 1 makes Min/Max/Sum coincide).
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);

    println!("== {} on the paper's Example 1 ==", cfg.grd_name());
    let greedy = GreedyFormer::new()
        .form(&matrix, &prefs, &cfg)
        .expect("greedy formation");
    print_result(&greedy, "greedy");

    let optimal = PartitionDp::new()
        .form(&matrix, &prefs, &cfg)
        .expect("exact formation");
    print_result(&optimal, "optimal (partition DP)");

    let bound = cfg.error_bound(&matrix).expect("LM-Min has a bound");
    println!(
        "\nTheorem 2 check: OPT - GRD = {:.0} <= r_max = {:.0}  ✓",
        optimal.objective - greedy.objective,
        bound
    );
    assert_eq!(greedy.objective, 11.0);
    assert_eq!(optimal.objective, 12.0);
}

fn print_result(result: &FormationResult, label: &str) {
    println!("\n{label}: objective = {:.0}", result.objective);
    for group in &result.grouping.groups {
        let members: Vec<String> = group
            .members
            .iter()
            .map(|&u| format!("u{}", u + 1))
            .collect();
        let items: Vec<String> = group
            .top_k
            .iter()
            .map(|&(i, s)| format!("i{} (score {s:.0})", i + 1))
            .collect();
        println!(
            "  {{{}}} <- recommended {}",
            members.join(", "),
            items.join(", ")
        );
    }
}
