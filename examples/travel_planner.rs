//! Travel planning — the paper's motivating application (Section 1).
//!
//! "Several hundreds of travelers can register their individual preferences
//! to visit certain points of interest (POIs) in a city. A travel agency
//! may decide to support, say 25 different user groups … each plan consists
//! of a list of 5–10 different POIs tailored to each group."
//!
//! This example registers 600 travelers over 80 POIs, forms 25 groups, and
//! prints each group's 7-POI plan, comparing the semantics-aware greedy
//! formation against the clustering baseline.
//!
//! Run with: `cargo run --release --example travel_planner`

use groupform::prelude::*;

fn main() {
    // 600 registered travelers, 80 POIs, preferences on a 1-5 scale. The
    // synthetic population has taste clusters (museum people, food people…).
    let data = SynthConfig::flickr_poi()
        .with_users(600)
        .with_items(80)
        .with_seed(2026)
        .generate();
    let prefs = PrefIndex::build(&data.matrix);
    println!(
        "{}",
        DatasetStats::compute("travel-preferences", &data.matrix)
    );

    // 25 groups, 7 POIs per plan, least-misery semantics with Sum
    // aggregation: a plan is judged by the total enjoyment of its POIs for
    // the least happy traveler.
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 7, 25);

    let grd = GreedyFormer::new()
        .form(&data.matrix, &prefs, &cfg)
        .expect("greedy formation");
    let baseline = BaselineFormer::new()
        .form(&data.matrix, &prefs, &cfg)
        .expect("baseline formation");

    println!(
        "\nGRD-LM-SUM: objective {:.0} across {} groups ({} intermediate groups)",
        grd.objective,
        grd.grouping.len(),
        grd.n_buckets
    );
    println!(
        "Baseline-LM-SUM (Kendall-Tau + clustering): objective {:.0} across {} groups",
        baseline.objective,
        baseline.grouping.len()
    );
    assert!(
        grd.objective >= baseline.objective,
        "semantics-aware formation should not lose to semantics-blind clustering"
    );

    // Print the three largest groups' plans.
    let mut by_size: Vec<&Group> = grd.grouping.groups.iter().collect();
    by_size.sort_by_key(|g| std::cmp::Reverse(g.len()));
    println!("\nThree largest groups and their plans:");
    for group in by_size.iter().take(3) {
        let plan: Vec<String> = group
            .top_k
            .iter()
            .map(|&(poi, score)| format!("POI#{poi} ({score:.0})"))
            .collect();
        println!("  {} travelers -> plan: {}", group.len(), plan.join(" -> "));
    }

    // Per-traveler satisfaction with the plans (NDCG in [0, 1]).
    let sats =
        groupform::core::metrics::per_user_satisfaction(&data.matrix, &prefs, &grd.grouping, cfg.k);
    let mean: f64 = sats.iter().map(|&(_, s)| s).sum::<f64>() / sats.len() as f64;
    let fully = sats.iter().filter(|&&(_, s)| s >= 0.999).count();
    println!(
        "\ntraveler satisfaction: mean NDCG {:.3}; {fully}/{} travelers get a plan \
         identical in value to their personal ideal",
        mean,
        sats.len()
    );
}
