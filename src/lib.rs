//! # groupform — recommendation-aware group formation
//!
//! A production-quality Rust reproduction of *"From Group Recommendations
//! to Group Formation"* (Roy, Lakshmanan, Liu — SIGMOD 2015,
//! arXiv:1503.03753), complete with every substrate the paper depends on.
//!
//! Given a population of users with explicit item ratings, a group
//! recommendation semantics (least misery or aggregate voting) and a budget
//! of `ℓ` groups, *group formation* partitions the users so that the total
//! satisfaction of the groups with their own recommended top-`k` item lists
//! is maximized. The problem is NP-hard under both semantics; the paper's
//! greedy algorithms achieve bounded absolute error under least misery and
//! strong empirical quality under aggregate voting.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] (`gf-core`) | data model, group recommendation engine, the six `GRD-*` greedy algorithms, metrics, Section-6 extensions |
//! | [`datasets`] (`gf-datasets`) | synthetic Yahoo!-Music / MovieLens / Flickr-POI-shaped generators, real-file loaders, sampling, splits, statistics |
//! | [`recsys`] (`gf-recsys`) | rating prediction: bias model, item-item KNN, SGD matrix factorization, matrix completion |
//! | [`baselines`] (`gf-baselines`) | Kendall-Tau distances, k-medoids, sparse k-means, the paper's `Baseline-LM` / `Baseline-AV` |
//! | [`exact`] (`gf-exact`) | exact optima (partition DP, branch & bound), anytime local search, Appendix-A IP model + CPLEX LP export |
//! | [`eval`] (`gf-eval`) | experiment harness, five-number summaries, tables, the simulated AMT user study |
//! | [`serve`] (`gf-serve`) | the online component: batched HTTP serving with snapshot queries and incremental `/rate` updates |
//!
//! ## Quickstart
//!
//! ```
//! use groupform::prelude::*;
//!
//! // A small synthetic population shaped like the Yahoo! Music corpus.
//! let data = SynthConfig::yahoo_music()
//!     .with_users(300)
//!     .with_items(120)
//!     .generate();
//! let prefs = PrefIndex::build(&data.matrix);
//!
//! // Form at most 10 groups, recommending 5 items per group, under the
//! // least-misery semantics with Min aggregation (GRD-LM-MIN).
//! let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10);
//! let result = GreedyFormer::new().form(&data.matrix, &prefs, &cfg).unwrap();
//!
//! assert!(result.grouping.len() <= 10);
//! result.grouping.validate(data.matrix.n_users(), 10).unwrap();
//! println!("objective = {:.1}", result.objective);
//! for (slot, group) in result.grouping.groups.iter().enumerate() {
//!     println!(
//!         "group {slot}: {} members, satisfaction {:.1}",
//!         group.len(),
//!         group.satisfaction
//!     );
//! }
//! ```
//!
//! On instances small enough for the exact set-partition DP, the greedy
//! objective is sandwiched by the paper's Theorem-2 absolute-error bound:
//!
//! ```
//! use groupform::prelude::*;
//!
//! let data = SynthConfig::tiny(10, 6).generate();
//! let prefs = PrefIndex::build(&data.matrix);
//! let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
//!
//! let grd = GreedyFormer::new().form(&data.matrix, &prefs, &cfg).unwrap();
//! let opt = PartitionDp::new().form(&data.matrix, &prefs, &cfg).unwrap();
//!
//! // GRD never beats the optimum, and under least misery with split-aware
//! // selection it trails it by at most the Theorem-2 bound.
//! assert!(grd.objective <= opt.objective + 1e-9);
//! let bound = cfg.error_bound(&data.matrix).unwrap();
//! let split_aware = GreedyFormer::new()
//!     .with_split_aware_selection(true)
//!     .form(&data.matrix, &prefs, &cfg)
//!     .unwrap();
//! assert!(opt.objective - split_aware.objective <= bound + 1e-9);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (travel planning,
//! music segmentation, a full quality study against exact optima) and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use gf_baselines as baselines;
pub use gf_core as core;
pub use gf_datasets as datasets;
pub use gf_eval as eval;
pub use gf_exact as exact;
pub use gf_recsys as recsys;
pub use gf_serve as serve;

/// The names most programs need, in one import.
pub mod prelude {
    pub use gf_baselines::{BaselineFormer, ClusterStrategy};
    pub use gf_core::{
        resolve_threads, Aggregation, FormationConfig, FormationResult, GfError, GreedyFormer,
        Group, GroupFormer, GroupRecommender, Grouping, MissingPolicy, PrefIndex, RatingMatrix,
        RatingScale, Semantics, ShardedFormer, WeightScheme,
    };
    pub use gf_datasets::{Dataset, DatasetStats, SynthConfig};
    pub use gf_exact::{BranchAndBound, LocalSearch, PartitionDp};
    pub use gf_recsys::{
        complete_matrix, complete_matrix_threaded, BiasModel, ItemItemKnn, MatrixFactorization,
    };
    pub use gf_serve::{ServeConfig, ServeState};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_pipeline() {
        let data = SynthConfig::tiny(12, 6).generate();
        let prefs = PrefIndex::build(&data.matrix);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        let grd = GreedyFormer::new()
            .form(&data.matrix, &prefs, &cfg)
            .unwrap();
        let opt = PartitionDp::new().form(&data.matrix, &prefs, &cfg).unwrap();
        assert!(grd.objective <= opt.objective + 1e-9);
    }
}
