#!/usr/bin/env bash
# End-to-end smoke test for the gf-serve binary: launch it against the
# checked-in 20-user MovieLens fixture, drive every endpoint over real
# HTTP with curl, and fail on any non-expected status or malformed JSON.
# Run from the repository root; expects target/release/gf-serve to exist
# and `curl` + `jq` on PATH (both present on ubuntu-latest).
set -euo pipefail

BIN=target/release/gf-serve
FIXTURE=crates/datasets/tests/fixtures/ratings_20users.dat
PORT="${GF_SMOKE_PORT:-7878}"
BASE="http://127.0.0.1:${PORT}"
LOG=$(mktemp)

"$BIN" --port "$PORT" --data "$FIXTURE" --ell 4 --k 3 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; cat "$LOG"' EXIT

# Wait for the listening line (the binary prints it once ready).
for _ in $(seq 1 100); do
  grep -q "listening on" "$LOG" && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died during startup"; exit 1; }
  sleep 0.1
done
grep -q "listening on" "$LOG" || { echo "server never became ready"; exit 1; }

# request METHOD PATH EXPECTED_STATUS [BODY] -> prints response body,
# fails on status mismatch or non-JSON payload.
request() {
  local method=$1 path=$2 expected=$3 body=${4:-}
  local out status
  if [ -n "$body" ]; then
    out=$(curl -sS -w '\n%{http_code}' -X "$method" -d "$body" "$BASE$path")
  else
    out=$(curl -sS -w '\n%{http_code}' -X "$method" "$BASE$path")
  fi
  status=${out##*$'\n'}
  out=${out%$'\n'*}
  if [ "$status" != "$expected" ]; then
    echo "FAIL: $method $path returned $status (expected $expected): $out" >&2
    exit 1
  fi
  jq -e . >/dev/null <<<"$out" || { echo "FAIL: $method $path returned malformed JSON: $out" >&2; exit 1; }
  echo "$out"
}

echo "== /health =="
health=$(request GET /health 200)
jq -e '.status == "ok" and .users == 20' <<<"$health" >/dev/null

echo "== /form (re-form under AV-SUM) =="
formed=$(request POST /form 200 '{"semantics":"av","aggregation":"sum","ell":4}')
jq -e '.algorithm == "GRD-AV-SUM" and .groups <= 4 and .objective > 0' <<<"$formed" >/dev/null

echo "== /group/3 =="
group=$(request GET /group/3 200)
jq -e '.user == 3 and (.members | index(3) != null) and (.top_k | length) <= 3' <<<"$group" >/dev/null

echo "== /group/3 pagination =="
paged=$(request GET "/group/3?limit=1&offset=0" 200)
full_size=$(jq -r '.members | length' <<<"$group")
jq -e '(.members | length) <= 1 and .members_total == '"$full_size" <<<"$paged" >/dev/null
request GET "/group/3?limit=bogus" 400 | jq -e '.error' >/dev/null

echo "== /recommend =="
gi=$(jq -r '.group' <<<"$group")
request GET "/recommend/$gi" 200 | jq -e '.top_k | length >= 1' >/dev/null

echo "== /rate (incremental update reaches a fresh snapshot) =="
# Baseline must be read *after* /form (which already bumped the version),
# immediately before the rate — otherwise this loop exits vacuously.
version=$(request GET /health 200 | jq -r '.version')
request POST /rate 202 '{"user":3,"item":1,"rating":5}' | jq -e '.accepted == true' >/dev/null
new_version=$version
for _ in $(seq 1 100); do
  new_version=$(request GET /health 200 | jq -r '.version')
  [ "$new_version" -gt "$version" ] && break
  sleep 0.1
done
[ "$new_version" -gt "$version" ] || { echo "FAIL: /rate never produced a new snapshot"; exit 1; }
# The new snapshot must actually carry the applied rating.
request GET /stats 200 | jq -e '.rates_applied >= 1' >/dev/null

echo "== /stats =="
# The path counters increment before `refresh_passes` (and before the
# snapshot install the earlier version-wait observed), so these checks
# cannot flake on a mid-pass read.
request GET /stats 200 | jq -e '.rates_applied >= 1 and .form_runs >= 1
  and .refresh_incremental >= 1 and .refresh_cold == 0
  and (.refresh_incremental + .refresh_cold) >= .refresh_passes
  and .refresh_mode == "auto"' >/dev/null

echo "== error paths stay JSON =="
request GET /group/9999 404 | jq -e '.error' >/dev/null
request POST /rate 400 '{"user":0,"item":0,"rating":99}' | jq -e '.error' >/dev/null
request GET /nope 404 | jq -e '.error' >/dev/null

# ---------------------------------------------------------------------------
# Growth smoke: a second instance under --grow admits a never-seen user on a
# never-seen item over real sockets — no restart — and serves their group
# once the background refresh lands.
# ---------------------------------------------------------------------------
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

GROW_PORT=$((PORT + 1))
BASE="http://127.0.0.1:${GROW_PORT}"
GROW_LOG=$(mktemp)
"$BIN" --port "$GROW_PORT" --synth 30x10 --ell 3 --k 2 --grow --max-users 200 --max-items 100 \
  >"$GROW_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; cat "$LOG" "$GROW_LOG"' EXIT

for _ in $(seq 1 100); do
  grep -q "listening on" "$GROW_LOG" && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "grow server died during startup"; exit 1; }
  sleep 0.1
done
grep -q "listening on" "$GROW_LOG" || { echo "grow server never became ready"; exit 1; }

echo "== growth: baseline shape =="
request GET /stats 200 | jq -e '.n_users == 30 and .n_items == 10
  and .users_admitted == 0 and .items_admitted == 0' >/dev/null
# The never-seen user is unknown until the admission applies.
request GET /group/42 404 | jq -e '.error' >/dev/null

echo "== growth: admit user 42 on item 25 via /rate =="
version=$(request GET /health 200 | jq -r '.version')
request POST /rate 202 '{"user":42,"item":25,"rating":4}' | jq -e '.accepted == true' >/dev/null
new_version=$version
for _ in $(seq 1 100); do
  new_version=$(request GET /health 200 | jq -r '.version')
  [ "$new_version" -gt "$version" ] && break
  sleep 0.1
done
[ "$new_version" -gt "$version" ] || { echo "FAIL: admission never produced a new snapshot"; exit 1; }

echo "== growth: /group/42 resolves after refresh =="
request GET /group/42 200 | jq -e '.user == 42 and (.members | index(42) != null)' >/dev/null
# A gap row admitted alongside (users 30..41 exist now, ratingless) serves too.
request GET /group/35 200 | jq -e '.members_total >= 1' >/dev/null

echo "== growth: /stats counters advanced =="
request GET /stats 200 | jq -e '.n_users == 43 and .n_items == 26
  and .users_admitted == 13 and .items_admitted == 16
  and .rates_applied >= 1' >/dev/null

echo "== growth: cap exhaustion is a clean 409 =="
request POST /rate 409 '{"user":9999,"item":0,"rating":3}' | jq -e '.error' >/dev/null
request GET /stats 200 | jq -e '.n_users == 43' >/dev/null

# ---------------------------------------------------------------------------
# Persist smoke: a durable (--data-dir) instance is rated, SIGKILLed
# mid-flight and rebooted on the same directory; the warm restart must
# replay every acknowledged rating and land on the identical /digest.
# ---------------------------------------------------------------------------
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

PERSIST_PORT=$((PORT + 2))
BASE="http://127.0.0.1:${PERSIST_PORT}"
DATA_DIR=$(mktemp -d)
PERSIST_LOG=$(mktemp)
# A huge checkpoint interval keeps recovery on the boot-checkpoint + full
# WAL-replay path, so the replayed count below is deterministic. The log
# is truncated per boot so readiness greps never match a previous boot.
start_persist_server() {
  "$BIN" --port "$PERSIST_PORT" --synth 30x10 --ell 3 --k 2 \
    --grow --max-users 200 --max-items 100 \
    --data-dir "$DATA_DIR" --wal-sync always --checkpoint-interval-ms 3600000 \
    >"$PERSIST_LOG" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$PERSIST_LOG" && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "persist server died during startup"; cat "$PERSIST_LOG"; exit 1; }
    sleep 0.1
  done
  grep -q "listening on" "$PERSIST_LOG" || { echo "persist server never became ready"; exit 1; }
}
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$DATA_DIR"; cat "$LOG" "$GROW_LOG" "$PERSIST_LOG"' EXIT

echo "== persist: cold start writes the initial checkpoint =="
start_persist_server
grep -q "recovery: cold start" "$PERSIST_LOG" || { echo "FAIL: no cold-start recovery line"; exit 1; }

echo "== persist: journal three ratings (one admission) =="
request POST /rate 202 '{"user":3,"item":1,"rating":5}' | jq -e '.accepted == true' >/dev/null
request POST /rate 202 '{"user":7,"item":2,"rating":2}' | jq -e '.accepted == true' >/dev/null
request POST /rate 202 '{"user":50,"item":20,"rating":4}' | jq -e '.accepted == true' >/dev/null
for _ in $(seq 1 100); do
  applied=$(request GET /stats 200 | jq -r '.rates_applied')
  [ "$applied" -eq 3 ] && break
  sleep 0.1
done
[ "$applied" -eq 3 ] || { echo "FAIL: ratings never applied"; exit 1; }
request GET /stats 200 | jq -e '.wal_records == 3 and .wal_seq == 3' >/dev/null
digest_before=$(request GET /digest 200 | jq -r '.digest')
version_before=$(request GET /digest 200 | jq -r '.version')

echo "== persist: kill -9, warm restart recovers every acked rating =="
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
start_persist_server
grep -q "recovery: checkpoint version 1 + 3 wal records replayed" "$PERSIST_LOG" \
  || { echo "FAIL: warm-restart recovery line missing/wrong"; exit 1; }
request GET /stats 200 | jq -e '.recovery_replayed == 3 and .recovery_dropped_bytes == 0
  and .rates_applied == 3 and .users_admitted >= 1' >/dev/null
request GET /digest 200 | jq -e '.digest == "'"$digest_before"'"
  and .version == '"$version_before" >/dev/null
request GET /group/50 200 | jq -e '.user == 50 and (.members | index(50) != null)' >/dev/null

# ---------------------------------------------------------------------------
# Multi-grouping smoke: one instance serving several named groupings with
# different aggregation semantics over one shared matrix — boot-declared
# (--grouping) and socket-registered (POST /grouping) alike — every /rate
# fanning out to all of them.
# ---------------------------------------------------------------------------
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

MULTI_PORT=$((PORT + 3))
BASE="http://127.0.0.1:${MULTI_PORT}"
MULTI_LOG=$(mktemp)
"$BIN" --port "$MULTI_PORT" --data "$FIXTURE" --ell 4 --k 3 \
  --grouping fair:semantics=av,agg=sum \
  --grouping cons:semantics=cons,lambda=0.5 \
  >"$MULTI_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$DATA_DIR"; cat "$LOG" "$GROW_LOG" "$PERSIST_LOG" "$MULTI_LOG"' EXIT

for _ in $(seq 1 100); do
  grep -q "listening on" "$MULTI_LOG" && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "multi-grouping server died during startup"; exit 1; }
  sleep 0.1
done
grep -q "listening on" "$MULTI_LOG" || { echo "multi-grouping server never became ready"; exit 1; }

echo "== multi: boot registry has default + fair + cons =="
request GET /health 200 | jq -e '.groupings == 3' >/dev/null
request GET /stats 200 | jq -e '.groupings | keys == ["cons","default","fair"]
  and .default.algorithm == "GRD-LM-MIN"
  and .fair.algorithm == "GRD-AV-SUM"
  and .cons.algorithm == "GRD-CONS-MIN"' >/dev/null

echo "== multi: every grouping answers /group/{name}/{u} =="
request GET /group/3 200 | jq -e '.grouping == "default" and .user == 3' >/dev/null
request GET /group/fair/3 200 | jq -e '.grouping == "fair" and .user == 3
  and (.members | index(3) != null)' >/dev/null
request GET /group/cons/3 200 | jq -e '.grouping == "cons" and .user == 3' >/dev/null
gi=$(request GET /group/fair/3 200 | jq -r '.group')
request GET "/recommend/fair/$gi" 200 | jq -e '.top_k | length >= 1' >/dev/null

echo "== multi: POST /grouping registers a fourth live =="
request POST /grouping 200 '{"name":"ldr","semantics":"ldr","k":2}' \
  | jq -e '.grouping == "ldr" and .algorithm == "GRD-LDR-MIN"' >/dev/null
request GET /health 200 | jq -e '.groupings == 4' >/dev/null
request GET /group/ldr/3 200 | jq -e '.grouping == "ldr"' >/dev/null

echo "== multi: unknown names 404 everywhere, /form never mints =="
request GET /group/nope/3 404 | jq -e '.error' >/dev/null
request POST "/form?name=nope" 404 | jq -e '.error' >/dev/null
request GET /health 200 | jq -e '.groupings == 4' >/dev/null

echo "== multi: one /rate advances every grouping =="
fair_v=$(request GET /stats 200 | jq -r '.groupings.fair.version')
cons_v=$(request GET /stats 200 | jq -r '.groupings.cons.version')
request POST /rate 202 '{"user":3,"item":1,"rating":1}' | jq -e '.accepted == true' >/dev/null
for _ in $(seq 1 100); do
  new_fair_v=$(request GET /stats 200 | jq -r '.groupings.fair.version')
  [ "$new_fair_v" -gt "$fair_v" ] && break
  sleep 0.1
done
[ "$new_fair_v" -gt "$fair_v" ] || { echo "FAIL: /rate never advanced grouping 'fair'"; exit 1; }
request GET /stats 200 | jq -e '.groupings.cons.version > '"$cons_v"'
  and .groupings.default.version == .groupings.fair.version' >/dev/null

echo "== multi: /form?name= re-forms one grouping, not the others =="
default_v=$(request GET /stats 200 | jq -r '.groupings.default.version')
request POST "/form?name=fair" 200 '{"ell":3}' \
  | jq -e '.grouping == "fair" and .groups <= 3' >/dev/null
request GET /stats 200 | jq -e '.groupings.fair.version > .groupings.default.version
  and .groupings.default.version == '"$default_v" >/dev/null

echo "== multi: /digest carries one fingerprint per grouping =="
request GET /digest 200 | jq -e '.groupings | keys == ["cons","default","fair","ldr"]
  and (to_entries | all(.value | test("^[0-9a-f]{16}$")))' >/dev/null

# ---------------------------------------------------------------------------
# Quality smoke: the /v1 surface closes the loop on the multi-grouping
# instance — candidate-filtered /v1/recommend, journaled /v1/feedback,
# and per-grouping quality counters advancing in /v1/stats.
# ---------------------------------------------------------------------------
echo "== quality: /v1 aliases answer, legacy carries a Deprecation header =="
request GET /v1/health 200 | jq -e '.status == "ok"' >/dev/null
curl -sS -D - -o /dev/null "$BASE/health" | grep -qi '^Deprecation:' \
  || { echo "FAIL: legacy /health missing Deprecation header"; exit 1; }
if curl -sS -D - -o /dev/null "$BASE/v1/health" | grep -qi '^Deprecation:'; then
  echo "FAIL: /v1/health must not carry a Deprecation header"; exit 1
fi

echo "== quality: /v1/recommend filters rated items by default =="
gi=$(request GET /v1/group/fair/3 200 | jq -r '.group')
filtered=$(request GET "/v1/recommend/fair/$gi" 200)
jq -e '.excluded_rated == true and .grouping == "fair"' <<<"$filtered" >/dev/null
request GET "/v1/recommend/fair/$gi?exclude_rated=false&top_k=2" 200 \
  | jq -e '.excluded_rated == false and (.top_k | length) <= 2' >/dev/null
request GET "/v1/recommend/fair/$gi?exclude_rated=bogus" 400 \
  | jq -e '.error.code == "bad_request"' >/dev/null

echo "== quality: /v1/feedback journals and the quality block advances =="
before=$(request GET /v1/stats 200 | jq -r '.feedback_applied // 0')
request POST /v1/feedback 202 '{"user":3,"item":1}' | jq -e '.accepted == true' >/dev/null
request POST /v1/feedback 202 '{"user":5,"item":2,"grouping":"fair"}' \
  | jq -e '.accepted == true' >/dev/null
request POST /v1/feedback 404 '{"user":3,"item":1,"grouping":"nope"}' \
  | jq -e '.error.code == "unknown_grouping"' >/dev/null
for _ in $(seq 1 100); do
  applied=$(request GET /v1/stats 200 | jq -r '.feedback_applied // 0')
  [ "$applied" -ge $((before + 2)) ] && break
  sleep 0.1
done
[ "$applied" -ge $((before + 2)) ] || { echo "FAIL: feedback never applied"; exit 1; }
request GET /v1/stats 200 | jq -e '.quality.fair.window_events >= 2
  and .quality.default.window_events >= 1
  and (.quality | keys == ["cons","default","fair","ldr"])' >/dev/null

echo "== quality: the error envelope is uniform on /v1 =="
request GET /v1/nope 404 | jq -e '.error.code == "unknown_endpoint" and .error.message' >/dev/null
request GET /v1/group/abc 400 | jq -e '.error.code == "bad_request"' >/dev/null

# ---------------------------------------------------------------------------
# Net-transport smoke: boot the same corpus under --net epoll and
# --net blocking, drive the same endpoints, and assert the response
# bodies are byte-identical — the transports must be indistinguishable
# above the socket layer.
# ---------------------------------------------------------------------------
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

NET_ENDPOINTS=(
  "GET /v1/health"
  "GET /v1/group/3"
  "GET /v1/group/3?limit=1&offset=0"
  "GET /v1/group/9999"
  "GET /v1/nope"
  "GET /v1/group/abc"
)

# capture_transport MODE PORT OUTFILE — boots --net MODE, appends one
# "METHOD PATH -> body" line per endpoint, shuts down.
capture_transport() {
  local mode=$1 port=$2 outfile=$3
  local log; log=$(mktemp)
  "$BIN" --port "$port" --data "$FIXTURE" --ell 4 --k 3 --net "$mode" \
    --conn-timeout-ms 5000 >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$log" && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "--net $mode server died during startup"; cat "$log"; exit 1; }
    sleep 0.1
  done
  grep -q "listening on" "$log" || { echo "--net $mode server never became ready"; exit 1; }
  grep -q "net=$mode" "$log" || { echo "FAIL: listening line does not report net=$mode"; cat "$log"; exit 1; }
  : >"$outfile"
  local method path body
  for ep in "${NET_ENDPOINTS[@]}"; do
    method=${ep%% *}
    path=${ep#* }
    body=$(curl -sS -X "$method" "http://127.0.0.1:${port}${path}")
    jq -e . >/dev/null <<<"$body" || { echo "FAIL: --net $mode $method $path returned malformed JSON: $body" >&2; exit 1; }
    printf '%s %s -> %s\n' "$method" "$path" "$body" >>"$outfile"
  done
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
}

echo "== net: identical bodies under --net epoll and --net blocking =="
NET_PORT_A=$((PORT + 4))
NET_PORT_B=$((PORT + 5))
EPOLL_OUT=$(mktemp)
BLOCKING_OUT=$(mktemp)
capture_transport epoll "$NET_PORT_A" "$EPOLL_OUT"
capture_transport blocking "$NET_PORT_B" "$BLOCKING_OUT"
diff -u "$EPOLL_OUT" "$BLOCKING_OUT" \
  || { echo "FAIL: transports served different bodies"; exit 1; }
trap 'rm -rf "$DATA_DIR"' EXIT

echo "serve smoke: all checks passed"
