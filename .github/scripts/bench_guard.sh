#!/usr/bin/env bash
# Bench-regression guard for the serving hot path: parses the quick-scale
# `incremental_refresh` bench output and fails if the 64-update
# incremental refresh regressed past FACTOR x the baseline recorded in
# EXPERIMENTS.md. Runner-noise-aware on purpose: CI runners are noisy and
# differently-sized from the machine that recorded the baseline, so a
# regression must show in BOTH views before the job fails —
#
#   1. absolute: the incremental median exceeds FACTOR x its recorded
#      baseline median, AND
#   2. normalized: the same-run incremental/cold ratio exceeds FACTOR x
#      the recorded incremental/cold ratio (a uniformly slower runner
#      inflates cold identically, leaving this ratio untouched; an
#      accidental O(nnz) rebuild on the incremental path drags the ratio
#      toward 1 and trips it).
#
# This catches algorithmic regressions, not percent-level drift.
#
# usage: bench_guard.sh <bench-output-file> [baseline-file]
set -euo pipefail

BENCH_OUT=${1:?usage: bench_guard.sh <bench-output-file> [baseline-file]}
BASELINE_FILE=${2:-EXPERIMENTS.md}
INC_KEY="incremental-refresh-2000x200/refresh_64_incremental"
COLD_KEY="incremental-refresh-2000x200/refresh_64_cold"
FACTOR=2

# Prints "<value> <unit>" from the *last* `median` line carrying the key —
# EXPERIMENTS.md appends a section per PR, and the most recent recording
# is the baseline.
extract() {
  awk -v key="$2" 'index($0, key) && $2 == "median" { v = $3; u = $4 }
    END { if (v != "") print v, u }' "$1"
}

# Converts "<value> <unit>" to integer nanoseconds.
to_ns() {
  awk -v v="$1" -v u="$2" 'BEGIN {
    f = -1;
    if (u == "ns") f = 1;
    else if (u == "µs" || u == "us") f = 1000;
    else if (u == "ms") f = 1000000;
    else if (u == "s") f = 1000000000;
    if (f < 0) exit 2;
    printf "%.0f", v * f;
  }'
}

need() { # file key -> "<ns>" or die with guidance
  local file=$1 key=$2 v u
  read -r v u < <(extract "$file" "$key") || true
  if [ -z "${v:-}" ]; then
    echo "bench_guard: no '$key' median in $file" >&2
    echo "bench_guard: did the quick-scale bench labels change? Update the keys here and the EXPERIMENTS.md baseline together." >&2
    exit 1
  fi
  to_ns "$v" "$u"
}

MEASURED_INC=$(need "$BENCH_OUT" "$INC_KEY")
MEASURED_COLD=$(need "$BENCH_OUT" "$COLD_KEY")
BASELINE_INC=$(need "$BASELINE_FILE" "$INC_KEY")
BASELINE_COLD=$(need "$BASELINE_FILE" "$COLD_KEY")

ABS_LIMIT=$((BASELINE_INC * FACTOR))
echo "bench_guard: incremental measured ${MEASURED_INC} ns (baseline ${BASELINE_INC} ns, absolute limit ${FACTOR}x = ${ABS_LIMIT} ns)"
if [ "$MEASURED_INC" -le "$ABS_LIMIT" ]; then
  echo "bench_guard: OK — within the absolute limit"
  exit 0
fi

# Past the absolute limit: only fail if the same-run cold normalization
# agrees this is the incremental path regressing, not a slow runner.
RATIO_BAD=$(awk -v mi="$MEASURED_INC" -v mc="$MEASURED_COLD" \
  -v bi="$BASELINE_INC" -v bc="$BASELINE_COLD" -v factor="$FACTOR" \
  'BEGIN { print (mi / mc > factor * bi / bc) ? 1 : 0 }')
echo "bench_guard: past the absolute limit; normalized check: measured inc/cold = $(awk -v a="$MEASURED_INC" -v b="$MEASURED_COLD" 'BEGIN{printf "%.3f", a/b}') vs baseline $(awk -v a="$BASELINE_INC" -v b="$BASELINE_COLD" 'BEGIN{printf "%.3f", a/b}') (limit ${FACTOR}x)"
if [ "$RATIO_BAD" -eq 1 ]; then
  echo "bench_guard: FAIL — the incremental refresh regressed past ${FACTOR}x in both absolute time and cold-normalized ratio" >&2
  exit 1
fi
echo "bench_guard: OK — cold inflated alongside incremental (slow/noisy runner), not an incremental-path regression"
