//! Every worked example in the paper, verified end to end through the
//! public API: Tables 1, 2 and 5, Examples 1–5, the Section 4/5 algorithm
//! traces and the Appendix A/B optima.

use groupform::prelude::*;

/// Table 1.
fn example1() -> (RatingMatrix, PrefIndex) {
    let m = RatingMatrix::from_dense(
        &[
            &[1.0, 4.0, 3.0][..],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[3.0, 1.0, 1.0],
            &[1.0, 2.0, 5.0],
        ],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let p = PrefIndex::build(&m);
    (m, p)
}

/// Table 2.
fn example2() -> (RatingMatrix, PrefIndex) {
    let m = RatingMatrix::from_dense(
        &[
            &[3.0, 1.0, 4.0][..],
            &[1.0, 4.0, 3.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[1.0, 2.0, 3.0],
            &[3.0, 2.0, 1.0],
        ],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let p = PrefIndex::build(&m);
    (m, p)
}

/// Table 5 (Appendix B).
fn example5() -> (RatingMatrix, PrefIndex) {
    let m = RatingMatrix::from_dense(
        &[
            &[1.0, 4.0, 3.0][..],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 4.0, 3.0],
            &[1.0, 2.0, 5.0],
        ],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let p = PrefIndex::build(&m);
    (m, p)
}

fn members_sorted(r: &FormationResult) -> Vec<Vec<u32>> {
    let mut g: Vec<Vec<u32>> = r
        .grouping
        .groups
        .iter()
        .map(|g| g.members.clone())
        .collect();
    g.sort();
    g
}

#[test]
fn section4_grd_lm_min_k1_trace() {
    // "the final set of groups are {u3,u4}, {u2,u6}, {u1,u5} and the
    // corresponding value Obj of the objective function is 5 + 5 + 1 = 11."
    let (m, p) = example1();
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
    let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(r.objective, 11.0);
    assert_eq!(members_sorted(&r), vec![vec![0, 4], vec![1, 5], vec![2, 3]]);
}

#[test]
fn section4_grd_lm_min_k2_trace() {
    // "the final set of groups are {u1}, {u2}, {u3,u4,u5,u6}. The
    // corresponding value of Obj is 3 + 3 + 1 = 7."
    let (m, p) = example1();
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
    let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(r.objective, 7.0);
    assert_eq!(members_sorted(&r), vec![vec![0], vec![1], vec![2, 3, 4, 5]]);
}

#[test]
fn section4_grd_lm_sum_k2_trace() {
    // "{u3,u4}, {u1,u5,u6}, {u2} with the total objective function value
    // as (5+2) + (1+1) + (5+3) = 17."
    let (m, p) = example1();
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 3);
    let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(r.objective, 17.0);
    assert_eq!(members_sorted(&r), vec![vec![0, 4, 5], vec![1], vec![2, 3]]);
}

#[test]
fn appendix_a_example1_optimum() {
    // "{u1,u3,u4}, {u2,u6}, {u5} with an overall Obj value of 4+5+3 = 12."
    let (m, p) = example1();
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
    for solver in [
        Box::new(PartitionDp::new()) as Box<dyn GroupFormer>,
        Box::new(BranchAndBound::new()),
        Box::new(LocalSearch::new()),
    ] {
        let r = solver.form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 12.0, "{}", solver.name(&cfg));
    }
    let r = PartitionDp::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(members_sorted(&r), vec![vec![0, 2, 3], vec![1, 5], vec![4]]);
}

#[test]
fn section5_grd_av_min_k2_trace() {
    // Step-by-step Section 5: {u3,u4} (AV score 4), then {u1,u2,u5,u6}
    // recommended (i3, i2) with bottom score 9; objective 13.
    let (m, p) = example2();
    let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, 2, 2);
    let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(r.objective, 13.0);
    assert_eq!(members_sorted(&r), vec![vec![0, 1, 4, 5], vec![2, 3]]);
    let small = r.grouping.groups.iter().find(|g| g.len() == 2).unwrap();
    assert_eq!(small.top_k, vec![(1, 10.0), (0, 4.0)]); // (i2; i1), bottom 4
}

#[test]
fn section5_grd_av_sum_k2_trace() {
    // "the overall objective function value is 14 + 20 = 34."
    let (m, p) = example2();
    let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 2);
    let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(r.objective, 34.0);
}

#[test]
fn section5_paper_exhibited_av_grouping_scores_14() {
    // The paper exhibits {u1,u3,u4}, {u2,u5,u6} with objective 14 as an
    // improvement over greedy's 13. (Exhaustive search shows the true
    // optimum is 16 — recorded in EXPERIMENTS.md as a paper discrepancy.)
    let (m, _) = example2();
    let rec = GroupRecommender::new(&m, Semantics::AggregateVoting);
    let obj = rec.satisfaction(&[0, 2, 3], 2, Aggregation::Min)
        + rec.satisfaction(&[1, 4, 5], 2, Aggregation::Min);
    assert_eq!(obj, 14.0);
    let (m, p) = example2();
    let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, 2, 2);
    let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(opt.objective, 16.0);
}

#[test]
fn example3_lm_bottom_item_subtlety() {
    // Example 3: grouping on the shared bottom item alone is wrong; the
    // group's recommended top-2 is (i2; i1) with LM bottom score 1, even
    // though both users' personal bottom item is i2 with rating 4.
    let m = RatingMatrix::from_dense(
        &[&[5.0, 4.0, 1.0][..], &[1.0, 4.0, 5.0]],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let rec = GroupRecommender::new(&m, Semantics::LeastMisery);
    let top = rec.top_k(&[0, 1], 2);
    assert_eq!(top[0], (1, 4.0));
    assert_eq!(top[1].1, 1.0);
    assert_eq!(rec.satisfaction(&[0, 1], 2, Aggregation::Min), 1.0);
}

#[test]
fn example4_av_counterintuitive_merge() {
    // Example 4: grouping u1 with {u2,u3} scores 13 + 2 = 15, beating the
    // common-top-2 grouping's 14 — AV can prefer personally-worse groups.
    let m = RatingMatrix::from_dense(
        &[&[5.0, 4.0][..], &[4.0, 5.0], &[4.0, 5.0], &[3.0, 2.0]],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let rec = GroupRecommender::new(&m, Semantics::AggregateVoting);
    let merged = rec.satisfaction(&[0, 1, 2], 2, Aggregation::Min)
        + rec.satisfaction(&[3], 2, Aggregation::Min);
    let by_prefix = rec.satisfaction(&[0, 3], 2, Aggregation::Min)
        + rec.satisfaction(&[1, 2], 2, Aggregation::Min);
    assert_eq!(by_prefix, 14.0);
    assert_eq!(merged, 15.0);
    assert!(merged > by_prefix);
}

#[test]
fn appendix_b_example5_suboptimality() {
    // GRD-LM-SUM: {u2}, {u3,u4}, {u1,u5,u6} with objective 20; the optimal
    // grouping {u2,u6}, {u3,u4}, {u1,u5} scores 21.
    let (m, p) = example5();
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 3);
    let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(grd.objective, 20.0);
    assert_eq!(
        members_sorted(&grd),
        vec![vec![0, 4, 5], vec![1], vec![2, 3]]
    );
    let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(opt.objective, 21.0);
    assert_eq!(
        members_sorted(&opt),
        vec![vec![0, 4], vec![1, 5], vec![2, 3]]
    );
    // Theorem 3: the gap (1) is within k * r_max = 10.
    assert!(opt.objective - grd.objective <= cfg.error_bound(&m).unwrap());
}

#[test]
fn preference_list_of_u2_matches_paper() {
    // "for user u2 in Example 1, L_u2 = <i3, 5; i2, 3; i1, 2>".
    let (_, p) = example1();
    assert_eq!(p.ranked_items(1), &[2, 1, 0]);
    assert_eq!(p.ranked_scores(1), &[5.0, 3.0, 2.0]);
}

#[test]
fn ip_model_reproduces_appendix_numbers() {
    use groupform::exact::ip::IpModel;
    let (m, p) = example1();
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
    let model = IpModel::build(&m, &cfg).unwrap();
    let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(model.evaluate(&opt.grouping).unwrap(), 12.0);
    let lp = model.to_lp_string();
    assert!(lp.contains("Maximize"));
    assert!(lp.contains("Binary"));
}
