//! Randomized verification of the paper's theoretical claims across many
//! seeded instances (complementing the proptest suites inside the crates).

use groupform::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(rng: &mut SmallRng, max_n: u32, max_m: u32) -> (RatingMatrix, PrefIndex) {
    let n = rng.gen_range(2..=max_n);
    let m = rng.gen_range(2..=max_m);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..m).map(|_| rng.gen_range(1..=5) as f64).collect())
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let mat = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
    let prefs = PrefIndex::build(&mat);
    (mat, prefs)
}

/// Theorem 2 at scale: 200 random instances, every (k, ℓ) combination.
///
/// As documented in EXPERIMENTS.md, the paper's bound holds in the
/// *distinct-key* regime (no two users hash identically); trials with
/// duplicate keys are checked against the split-aware variant instead,
/// whose bound is unconditional.
#[test]
fn theorem2_holds_across_two_hundred_instances() {
    let mut rng = SmallRng::seed_from_u64(0x7e01);
    let mut worst_gap: f64 = 0.0;
    let mut distinct_trials = 0usize;
    for trial in 0..200 {
        let (m, p) = random_instance(&mut rng, 8, 5);
        let k = 1 + (trial % 3);
        let ell = 1 + (trial % 4);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, k, ell);
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let bound = cfg.error_bound(&m).unwrap();
        if grd.n_buckets == m.n_users() as usize {
            // Distinct keys: the paper's theorem applies to paper mode.
            let gap = opt.objective - grd.objective;
            assert!(gap >= -1e-9, "greedy beat OPT on trial {trial}");
            assert!(
                gap <= bound + 1e-9,
                "trial {trial}: gap {gap} exceeds r_max"
            );
            worst_gap = worst_gap.max(gap);
            distinct_trials += 1;
        }
        // Split-aware mode: the bound is unconditional.
        let fixed = GreedyFormer::new()
            .with_split_aware_selection(true)
            .form(&m, &p, &cfg)
            .unwrap();
        assert!(
            opt.objective - fixed.objective <= bound + 1e-9,
            "trial {trial}: split-aware gap exceeds r_max"
        );
    }
    assert!(
        distinct_trials >= 50,
        "too few distinct-key trials to be meaningful"
    );
    // The bound is r_max = 5; the observed worst case should be within it
    // (and nonzero somewhere, or the test is vacuous).
    assert!(worst_gap > 0.0, "never observed any greedy suboptimality");
    assert!(worst_gap <= 5.0);
}

/// Theorem 3 at scale (same regime split as Theorem 2).
#[test]
fn theorem3_holds_across_instances() {
    let mut rng = SmallRng::seed_from_u64(0x7e02);
    for trial in 0..120 {
        let (m, p) = random_instance(&mut rng, 7, 5);
        let k = 1 + (trial % 3);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, k, 1 + trial % 3);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let bound = cfg.error_bound(&m).unwrap();
        if grd.n_buckets == m.n_users() as usize {
            assert!(
                opt.objective - grd.objective <= bound + 1e-9,
                "trial {trial}"
            );
        }
        let fixed = GreedyFormer::new()
            .with_split_aware_selection(true)
            .form(&m, &p, &cfg)
            .unwrap();
        assert!(
            opt.objective - fixed.objective <= bound + 1e-9,
            "trial {trial}: split-aware"
        );
    }
}

/// The proof structure of Theorem 2: the greedy's first ℓ-1 groups
/// dominate any optimal solution's first ℓ-1 groups (sorted by score) —
/// in the distinct-key regime where the paper's argument applies.
#[test]
fn greedy_prefix_domination() {
    let mut rng = SmallRng::seed_from_u64(0x7e03);
    let mut checked = 0usize;
    for _ in 0..100 {
        let (m, p) = random_instance(&mut rng, 7, 4);
        let ell = 3usize;
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, ell);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        if grd.n_buckets != m.n_users() as usize {
            continue; // duplicate keys: the domination argument has a hole
        }
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let mut g: Vec<f64> = grd.grouping.groups.iter().map(|x| x.satisfaction).collect();
        let mut o: Vec<f64> = opt.grouping.groups.iter().map(|x| x.satisfaction).collect();
        g.sort_by(|a, b| b.total_cmp(a));
        o.sort_by(|a, b| b.total_cmp(a));
        let take = ell.saturating_sub(1).min(g.len()).min(o.len());
        let g_prefix: f64 = g.iter().take(take).sum();
        let o_prefix: f64 = o.iter().take(take).sum();
        assert!(
            g_prefix >= o_prefix - 1e-9,
            "prefix domination violated: {g_prefix} < {o_prefix}"
        );
        checked += 1;
    }
    assert!(checked >= 20, "too few distinct-key instances checked");
}

/// The Theorem-2 counterexample we found, as a permanent regression test:
/// duplicate profiles + spare budget break the paper-mode bound, and
/// split-aware selection repairs it.
#[test]
fn theorem2_duplicate_key_counterexample() {
    let rows: Vec<Vec<f64>> = vec![vec![1.0, 1.0, 4.0, 1.0]; 3];
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
    let p = PrefIndex::build(&m);
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 4);
    let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
    let bound = cfg.error_bound(&m).unwrap();
    assert!(
        opt.objective - grd.objective > bound,
        "expected the counterexample to exceed the bound: OPT {} GRD {}",
        opt.objective,
        grd.objective
    );
    let fixed = GreedyFormer::new()
        .with_split_aware_selection(true)
        .form(&m, &p, &cfg)
        .unwrap();
    assert_eq!(fixed.objective, opt.objective);
}

/// Surplus splitting never hurts, and only differs when budget is spare.
#[test]
fn surplus_splitting_is_safe() {
    let mut rng = SmallRng::seed_from_u64(0x7e04);
    for _ in 0..40 {
        let (m, p) = random_instance(&mut rng, 8, 4);
        for ell in [2usize, 4, 8] {
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, ell);
            let plain = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
            let split = GreedyFormer::new()
                .with_surplus_splitting(true)
                .form(&m, &p, &cfg)
                .unwrap();
            assert!(split.objective >= plain.objective - 1e-9);
            split.grouping.validate(m.n_users(), ell).unwrap();
        }
    }
}

/// NP-hardness reduction sanity (Theorem 1): on a binary X3C-style
/// instance, the optimal k = 1 objective equals the number of groups iff
/// an exact cover exists.
#[test]
fn x3c_reduction_instance() {
    // Ground set {x1..x6}; C = {S1={x1,x2,x3}, S2={x4,x5,x6}, S3={x2,x3,x4}}.
    // An exact cover exists: {S1, S2}. Users = elements, items = sets,
    // sc(u, j) = 1 iff element u in set Sj.
    let m = RatingMatrix::from_dense(
        &[
            &[1.0, 0.0, 0.0][..], // x1
            &[1.0, 0.0, 1.0],     // x2
            &[1.0, 0.0, 1.0],     // x3
            &[0.0, 1.0, 1.0],     // x4
            &[0.0, 1.0, 0.0],     // x5
            &[0.0, 1.0, 0.0],     // x6
        ],
        RatingScale::binary(),
    )
    .unwrap();
    let p = PrefIndex::build(&m);
    // K = q = 2 groups: optimum = 2 iff the partition follows the cover.
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 2);
    let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
    assert_eq!(opt.objective, 2.0);
    let mut groups: Vec<Vec<u32>> = opt
        .grouping
        .groups
        .iter()
        .map(|g| g.members.clone())
        .collect();
    groups.sort();
    assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4, 5]]);
}
