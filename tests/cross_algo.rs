//! Cross-algorithm consistency: every former implements the same contract
//! and their quality ordering is coherent on structured data.

use groupform::prelude::*;

fn structured() -> (RatingMatrix, PrefIndex) {
    let d = SynthConfig::yahoo_music()
        .with_users(100)
        .with_items(50)
        .with_user_noise(0.15)
        .generate();
    let p = PrefIndex::build(&d.matrix);
    (d.matrix, p)
}

fn all_formers(n_users: u32) -> Vec<Box<dyn GroupFormer>> {
    let mut v: Vec<Box<dyn GroupFormer>> = vec![
        Box::new(GreedyFormer::new()),
        Box::new(GreedyFormer::new().with_surplus_splitting(true)),
        Box::new(BaselineFormer::new().with_max_iter(30)),
        Box::new(LocalSearch::new()),
    ];
    if n_users <= 16 {
        v.push(Box::new(PartitionDp::new()));
    }
    if n_users <= 20 {
        v.push(Box::new(BranchAndBound::new()));
    }
    v
}

#[test]
fn every_former_produces_valid_groupings() {
    let (m, p) = structured();
    for sem in [Semantics::LeastMisery, Semantics::AggregateVoting] {
        for agg in [Aggregation::Min, Aggregation::Max, Aggregation::Sum] {
            let cfg = FormationConfig::new(sem, agg, 4, 7);
            for former in all_formers(m.n_users()) {
                let r = former.form(&m, &p, &cfg).unwrap();
                r.grouping
                    .validate(m.n_users(), cfg.ell)
                    .unwrap_or_else(|e| panic!("{}: {e}", former.name(&cfg)));
                let recomputed = groupform::core::recompute_objective(
                    &m,
                    &r.grouping,
                    sem,
                    agg,
                    cfg.policy,
                    cfg.k,
                );
                assert!(
                    (recomputed - r.objective).abs() < 1e-9,
                    "{} reported {} but recomputes to {recomputed}",
                    former.name(&cfg),
                    r.objective
                );
            }
        }
    }
}

#[test]
fn names_are_distinct_and_stable() {
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10);
    let names: Vec<String> = all_formers(10).iter().map(|f| f.name(&cfg)).collect();
    assert_eq!(
        names,
        vec![
            "GRD-LM-MIN",
            "GRD-LM-MIN",
            "Baseline-LM-MIN",
            "OPT~-LM-MIN",
            "OPT-LM-MIN",
            "BNB-LM-MIN"
        ]
    );
}

#[test]
fn quality_ordering_grd_vs_baseline_vs_proxy() {
    let (m, p) = structured();
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 10);
    let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
    let base = BaselineFormer::new()
        .with_max_iter(50)
        .form(&m, &p, &cfg)
        .unwrap();
    let ls = LocalSearch::new().form(&m, &p, &cfg).unwrap();
    assert!(grd.objective >= base.objective, "GRD lost to the baseline");
    assert!(
        ls.objective >= grd.objective - 1e-9,
        "LS below its own seed"
    );
}

#[test]
fn weighted_sum_extension_is_consistent() {
    // WeightedSum(Uniform) must agree exactly with plain Sum everywhere.
    let (m, p) = structured();
    let sum_cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 4, 6);
    let wsum_cfg = FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::WeightedSum(WeightScheme::Uniform),
        4,
        6,
    );
    let a = GreedyFormer::new().form(&m, &p, &sum_cfg).unwrap();
    let b = GreedyFormer::new().form(&m, &p, &wsum_cfg).unwrap();
    assert!((a.objective - b.objective).abs() < 1e-9);
    // Position-discounted weights yield a smaller objective (weights <= 1).
    let log_cfg = FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::WeightedSum(WeightScheme::InverseLog2),
        4,
        6,
    );
    let c = GreedyFormer::new().form(&m, &p, &log_cfg).unwrap();
    assert!(c.objective <= a.objective + 1e-9);
}

#[test]
fn missing_policies_affect_sparse_but_not_dense_inputs() {
    // Dense matrix: policy is irrelevant.
    let dense = SynthConfig::tiny(20, 8).generate();
    let p = PrefIndex::build(&dense.matrix);
    let mut objectives = Vec::new();
    for policy in [
        MissingPolicy::Min,
        MissingPolicy::UserMean,
        MissingPolicy::Skip,
    ] {
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 4)
            .with_policy(policy);
        objectives.push(
            GreedyFormer::new()
                .form(&dense.matrix, &p, &cfg)
                .unwrap()
                .objective,
        );
    }
    assert!((objectives[0] - objectives[1]).abs() < 1e-9);
    assert!((objectives[0] - objectives[2]).abs() < 1e-9);

    // Sparse matrix: Skip >= Min objective under LM (skipping misery floors).
    let sparse = SynthConfig::yahoo_music()
        .with_users(60)
        .with_items(300)
        .generate();
    let p = PrefIndex::build(&sparse.matrix);
    let base = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 6);
    let min_obj = GreedyFormer::new()
        .form(&sparse.matrix, &p, &base.with_policy(MissingPolicy::Min))
        .unwrap()
        .objective;
    let skip_obj = GreedyFormer::new()
        .form(&sparse.matrix, &p, &base.with_policy(MissingPolicy::Skip))
        .unwrap()
        .objective;
    assert!(skip_obj >= min_obj - 1e-9);
}
