//! Cross-crate integration: the full paper pipeline — synthesize, split,
//! predict, complete, slice, form, evaluate — through the public API only.

use groupform::datasets::{sample, split};
use groupform::eval::experiment::run_timed;
use groupform::prelude::*;
use groupform::recsys::{mae, rmse, MfConfig};

#[test]
fn full_quality_pipeline() {
    // 1. Synthesize a Yahoo!-shaped corpus.
    let corpus = SynthConfig::yahoo_music()
        .with_users(400)
        .with_items(250)
        .generate();

    // 2. Hold out 20% of ratings and fit predictors, as in the paper's
    //    CF pre-processing.
    let holdout = split::holdout_split(&corpus.matrix, 0.2, 1).unwrap();
    let bias = BiasModel::fit(&holdout.train, 25.0);
    let mf = MatrixFactorization::fit(
        &holdout.train,
        MfConfig {
            n_epochs: 15,
            ..MfConfig::default()
        },
    );
    let bias_rmse = rmse(&bias, &holdout.test);
    let mf_rmse = rmse(&mf, &holdout.test);
    assert!(mf_rmse <= bias_rmse + 0.05, "MF should be competitive");
    assert!(mae(&mf, &holdout.test) <= mf_rmse + 1e-9);

    // 3. Slice the experimental sub-population and complete it.
    let slice = sample::experimental_slice(&corpus.matrix, 120, 60, 2).unwrap();
    let completed = complete_matrix(&slice, &mf, Some(1.0)).unwrap();
    assert_eq!(completed.density(), 1.0);
    let prefs = PrefIndex::build(&completed);

    // 4. Form groups with every algorithm and validate everything.
    for sem in [Semantics::LeastMisery, Semantics::AggregateVoting] {
        for agg in [Aggregation::Min, Aggregation::Max, Aggregation::Sum] {
            let cfg = FormationConfig::new(sem, agg, 5, 8);
            let grd = GreedyFormer::new().form(&completed, &prefs, &cfg).unwrap();
            let base = BaselineFormer::new()
                .with_max_iter(30)
                .form(&completed, &prefs, &cfg)
                .unwrap();
            let ls = LocalSearch::new().form(&completed, &prefs, &cfg).unwrap();
            for r in [&grd, &base, &ls] {
                r.grouping.validate(completed.n_users(), 8).unwrap();
                let recomputed = groupform::core::recompute_objective(
                    &completed,
                    &r.grouping,
                    sem,
                    agg,
                    cfg.policy,
                    cfg.k,
                );
                assert!((recomputed - r.objective).abs() < 1e-9);
            }
            assert!(ls.objective >= grd.objective - 1e-9, "{sem}-{agg}");
        }
    }
}

#[test]
fn scalability_pipeline_stays_sparse() {
    // The Section-7.2 path: no completion, Min policy, larger population.
    let corpus = SynthConfig::yahoo_music()
        .with_users(5_000)
        .with_items(2_000)
        .generate();
    let prefs = PrefIndex::build(&corpus.matrix);
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10);
    let rec = run_timed(&GreedyFormer::new(), &corpus.matrix, &prefs, &cfg, 1).unwrap();
    assert_eq!(rec.group_sizes.iter().sum::<usize>(), 5_000);
    assert!(rec.n_groups <= 10);
    // The greedy run at this size should take well under a second.
    assert!(rec.elapsed.as_secs_f64() < 5.0, "took {:?}", rec.elapsed);
}

#[test]
fn ten_fold_cross_validation_layout() {
    // The Yahoo! snapshot ships as 10 equal user folds; verify our splitter
    // provides the same layout and that formation works per fold.
    let corpus = SynthConfig::yahoo_music()
        .with_users(200)
        .with_items(80)
        .generate();
    let folds = split::user_folds(corpus.matrix.n_users(), 10, 3);
    assert_eq!(folds.len(), 10);
    let fold = &folds[0];
    let items: Vec<u32> = (0..corpus.matrix.n_items()).collect();
    let sub = corpus.matrix.submatrix(fold, &items).unwrap();
    let prefs = PrefIndex::build(&sub);
    let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 3, 4);
    let r = GreedyFormer::new().form(&sub, &prefs, &cfg).unwrap();
    r.grouping.validate(sub.n_users(), 4).unwrap();
}

#[test]
fn loaders_round_trip_through_formation() {
    // Export a synthetic matrix to TSV, reload it, and confirm formation
    // produces identical results — the "drop in the real file" path.
    let corpus = SynthConfig::tiny(30, 12).generate();
    let mut buf = Vec::new();
    groupform::datasets::io::write_tsv(&corpus.matrix, &mut buf).unwrap();
    let loaded =
        groupform::datasets::io::read_tsv(std::io::Cursor::new(buf), RatingScale::one_to_five())
            .unwrap();
    assert_eq!(loaded.matrix.nnz(), corpus.matrix.nnz());
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 5);
    let a = GreedyFormer::new()
        .form(&corpus.matrix, &PrefIndex::build(&corpus.matrix), &cfg)
        .unwrap();
    let b = GreedyFormer::new()
        .form(&loaded.matrix, &PrefIndex::build(&loaded.matrix), &cfg)
        .unwrap();
    assert_eq!(a.objective, b.objective);
}

#[test]
fn user_study_smoke() {
    use groupform::eval::{UserStudy, UserStudyConfig};
    let out = UserStudy::new(UserStudyConfig {
        n_workers: 30,
        evaluators_per_hit: 6,
        ..UserStudyConfig::default()
    })
    .run();
    assert_eq!(out.hits.len(), 6);
    assert_eq!(out.votes.len(), 2);
}
