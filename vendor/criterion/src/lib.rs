//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Wall-clock benchmarking with the criterion 0.5 call surface this
//! workspace uses: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], `criterion_group!`, `criterion_main!` and
//! [`black_box`]. Each benchmark is warmed up, then timed over
//! `sample_size` samples; the median per-iteration time is printed to
//! stdout. No plotting, no statistical regression analysis.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target measuring time per benchmark across all samples.
const TARGET_TIME: Duration = Duration::from_millis(600);

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Times a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Times a function under `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Times a function receiving a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` back to back.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates iterations per sample, collects samples, prints a summary.
fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count that takes ~1/sample_size of
    // the target time, starting from a single warm-up iteration.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let per_sample = TARGET_TIME / sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<50} median {} mean {} ({sample_size} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:>8.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:>8.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:>8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:>8.2} s ")
    }
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("alg", 42).to_string(), "alg/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
