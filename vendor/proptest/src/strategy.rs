//! The [`Strategy`] trait, primitive strategies and combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of an output type.
///
/// This stub generates values only — there is no shrinking tree. Every
/// strategy must be usable by `&self` so one strategy serves many cases.
pub trait Strategy {
    /// The type of the generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, builds a dependent strategy from
    /// it with `f`, and draws the final value from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Randomly permutes the generated collection (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { base: self }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut SmallRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes `self` in place.
    fn shuffle(&mut self, rng: &mut SmallRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    base: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        let mut v = self.base.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Generates any value of `T` (`any::<bool>()`, `any::<u32>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for types implementing [`rand::Standard`].
#[derive(Debug, Clone)]
pub struct StandardStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: rand::Standard + Debug> Strategy for StandardStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen::<T>()
    }
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                StandardStrategy { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

impl_arbitrary_standard!(bool, u32, u64, f64);
