//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec()`]: an exact `usize` or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec: empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec: empty size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
