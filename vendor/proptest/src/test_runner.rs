//! The case loop behind the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the stream seed. `PROPTEST_SEED` (decimal or `0x…` hex), when
/// set, is used verbatim — so feeding back the seed printed by a failure
/// replays the exact stream. Otherwise a fixed constant is mixed with the
/// test name so distinct tests explore distinct streams.
fn stream_seed(test_name: &str) -> u64 {
    if let Some(seed) = std::env::var("PROPTEST_SEED").ok().and_then(|s| {
        let s = s.trim();
        match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse::<u64>().ok(),
        }
    }) {
        return seed;
    }
    let mut h = 0x5EED_CAFE_F00D_D00Du64;
    for b in test_name.bytes() {
        h = h.rotate_left(5) ^ u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Runs `test` over `config.cases` inputs drawn from `strategy`.
///
/// On a panic inside `test`, prints the case index, effective seed and the
/// generated input, then re-raises the panic so the libtest harness records
/// the failure.
pub fn run<S, F>(config: &ProptestConfig, test_name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let seed = stream_seed(test_name);
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest stub: test `{test_name}` failed at case {case}/{} \
                 (seed {seed:#x})\n  input: {shown}",
                config.cases
            );
            resume_unwind(panic);
        }
    }
}
