//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Random property testing without shrinking: each `proptest!` test runs
//! its body over `ProptestConfig::cases` inputs drawn from the given
//! strategies. A failing case prints its case number, seed and generated
//! input before propagating the panic; set `PROPTEST_SEED` to reproduce a
//! run (generation is deterministic per seed).
//!
//! Implemented surface: the [`Strategy`] trait with `prop_map`,
//! `prop_flat_map` and `prop_shuffle`; range, tuple, [`Just`] and
//! [`collection::vec`] strategies; [`any`]`::<T>()`; the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` and `prop_assume!` macros; and
//! [`ProptestConfig::with_cases`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// The names `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when its precondition does not hold.
///
/// Unlike real proptest this does not redraw a replacement input; the case
/// simply counts as passed, which is sound (if weaker) for every property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}
