//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the exact subset of the rand 0.8 API this workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`]. The generator is xoshiro256++ seeded through
//! splitmix64, so seeded streams are deterministic across runs and
//! platforms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` is uniform in `[0, 1)`; `bool` is a fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Element types with uniform range sampling ([`Rng::gen_range`]).
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample from the half-open range `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample from the closed range `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Draws uniformly from `[0, span)` by rejection, avoiding modulo bias.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as u64) - (lo as u64);
                lo + uniform_u64_below(rng, span) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        lo + f64::sample(rng) * (hi - lo)
    }
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Unlike the real `rand::rngs::SmallRng`, the output stream is stable
    /// across versions of this stub — seeded code is reproducible forever.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3..9u32);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
            let w = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&w));
            let u = rng.gen_range(0usize..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn range_sampling_covers_support() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
