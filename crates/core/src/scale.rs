//! Rating scales.
//!
//! The paper assumes explicit feedback on a discrete positive scale `R`
//! (e.g. 1..5) with minimum `r_min` and maximum `r_max`. `r_max` appears in
//! the absolute-error guarantees of the greedy LM algorithms (Theorems 2–3),
//! and `r_min` is the pessimistic score assigned to unrated items under
//! [`MissingPolicy::Min`](crate::MissingPolicy). Predicted ratings may be
//! real numbers, so the scale is stored as `f64` bounds.

use crate::error::{GfError, Result};

/// An inclusive rating range `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RatingScale {
    min: f64,
    max: f64,
}

impl RatingScale {
    /// Creates a scale, rejecting `min >= max` and non-finite bounds.
    pub fn new(min: f64, max: f64) -> Result<Self> {
        if !min.is_finite() || !max.is_finite() || min >= max {
            return Err(GfError::InvalidScale { min, max });
        }
        Ok(RatingScale { min, max })
    }

    /// The classic 1..5 star scale used by Yahoo! Music and MovieLens.
    pub fn one_to_five() -> Self {
        RatingScale { min: 1.0, max: 5.0 }
    }

    /// A 0..5 scale (the paper notes `r_min` may be 0).
    pub fn zero_to_five() -> Self {
        RatingScale { min: 0.0, max: 5.0 }
    }

    /// MovieLens 10M's half-star scale, 0.5..5.0.
    pub fn half_star() -> Self {
        RatingScale { min: 0.5, max: 5.0 }
    }

    /// Binary relevance, as used in the NP-hardness reduction (Theorem 1).
    pub fn binary() -> Self {
        RatingScale { min: 0.0, max: 1.0 }
    }

    /// The minimum rating `r_min`.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The maximum rating `r_max` (the constant in the LM error bounds).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The width `r_max - r_min` of the scale.
    #[inline]
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Whether `score` lies within the scale (NaN is never contained).
    #[inline]
    pub fn contains(&self, score: f64) -> bool {
        score >= self.min && score <= self.max
    }

    /// Clamps `score` into the scale; NaN becomes `r_min`.
    #[inline]
    pub fn clamp(&self, score: f64) -> f64 {
        if score.is_nan() {
            return self.min;
        }
        score.clamp(self.min, self.max)
    }

    /// Rounds `score` to the nearest multiple of `step` within the scale,
    /// e.g. `step = 1.0` for whole stars or `0.5` for half stars.
    pub fn quantize(&self, score: f64, step: f64) -> f64 {
        debug_assert!(step > 0.0);
        let snapped = self.min + ((score - self.min) / step).round() * step;
        self.clamp(snapped)
    }

    /// The absolute-error guarantee of `GRD-LM-MIN` (Theorem 2): `r_max`.
    #[inline]
    pub fn lm_min_error_bound(&self) -> f64 {
        self.max
    }

    /// The absolute-error guarantee of `GRD-LM-SUM` (Theorem 3): `k * r_max`.
    #[inline]
    pub fn lm_sum_error_bound(&self, k: usize) -> f64 {
        self.max * k as f64
    }
}

impl Default for RatingScale {
    fn default() -> Self {
        RatingScale::one_to_five()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(RatingScale::new(1.0, 5.0).is_ok());
        assert!(RatingScale::new(5.0, 1.0).is_err());
        assert!(RatingScale::new(3.0, 3.0).is_err());
        assert!(RatingScale::new(f64::NAN, 5.0).is_err());
        assert!(RatingScale::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn contains_and_clamp() {
        let s = RatingScale::one_to_five();
        assert!(s.contains(1.0));
        assert!(s.contains(5.0));
        assert!(!s.contains(0.99));
        assert!(!s.contains(f64::NAN));
        assert_eq!(s.clamp(9.0), 5.0);
        assert_eq!(s.clamp(-2.0), 1.0);
        assert_eq!(s.clamp(f64::NAN), 1.0);
    }

    #[test]
    fn quantize_snaps_to_steps() {
        let s = RatingScale::one_to_five();
        assert_eq!(s.quantize(3.4, 1.0), 3.0);
        assert_eq!(s.quantize(3.6, 1.0), 4.0);
        let hs = RatingScale::half_star();
        assert_eq!(hs.quantize(3.3, 0.5), 3.5);
        assert_eq!(hs.quantize(0.1, 0.5), 0.5);
    }

    #[test]
    fn error_bounds_match_theorems() {
        let s = RatingScale::one_to_five();
        assert_eq!(s.lm_min_error_bound(), 5.0);
        assert_eq!(s.lm_sum_error_bound(5), 25.0);
    }

    #[test]
    fn presets() {
        assert_eq!(RatingScale::binary().range(), 1.0);
        assert_eq!(RatingScale::zero_to_five().min(), 0.0);
        assert_eq!(RatingScale::default(), RatingScale::one_to_five());
    }
}
