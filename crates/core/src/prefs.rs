//! Per-user preference lists.
//!
//! Section 4 of the paper assumes each user has a preference list `L_u` of
//! items sorted in non-increasing order of rating — e.g. for user `u2` of
//! Example 1, `L_u2 = <i3,5; i2,3; i1,2>`. [`PrefIndex`] materializes those
//! lists once (O(Σ d_u log d_u)) so the greedy algorithms can read any
//! user's top-`k` prefix in O(k).
//!
//! Ties are broken by ascending item id, making every preference list — and
//! therefore every algorithm in this crate — deterministic.

use crate::error::{GfError, Result};
use crate::matrix::RatingMatrix;

/// All users' preference lists, stored flat in CSR layout.
#[derive(Debug, Clone)]
pub struct PrefIndex {
    offsets: Vec<usize>,
    /// Item ids sorted by (score desc, item asc) within each user row.
    items: Vec<u32>,
    /// Scores aligned with `items` (non-increasing within a row).
    scores: Vec<f64>,
}

impl PrefIndex {
    /// Sorts every user's ratings into a preference list.
    pub fn build(matrix: &RatingMatrix) -> Self {
        let n = matrix.n_users() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut items = Vec::with_capacity(matrix.nnz());
        let mut scores = Vec::with_capacity(matrix.nnz());
        let mut row: Vec<(u32, f64)> = Vec::new();
        for u in 0..matrix.n_users() {
            row.clear();
            row.extend(matrix.user_ratings(u));
            // Score descending, then item id ascending. total_cmp is safe
            // because the matrix rejects non-finite scores.
            row.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            for &(i, s) in &row {
                items.push(i);
                scores.push(s);
            }
            offsets.push(items.len());
        }
        PrefIndex {
            offsets,
            items,
            scores,
        }
    }

    /// Rebuilds an index from raw CSR storage — the inverse of
    /// [`PrefIndex::parts`], used by the `gf-persist` checkpoint loader.
    /// Re-validates the structural invariants ([`PrefIndex::build`]'s
    /// postconditions): monotone offsets covering the storage and, within
    /// each row, finite scores in non-increasing order with score ties
    /// broken by ascending item id.
    pub fn from_parts(offsets: Vec<usize>, items: Vec<u32>, scores: Vec<f64>) -> Result<Self> {
        let corrupt = |msg: String| GfError::Persist(format!("invalid pref parts: {msg}"));
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(corrupt("offsets must start at 0".into()));
        }
        if items.len() != scores.len() {
            return Err(corrupt(format!(
                "{} items vs {} scores",
                items.len(),
                scores.len()
            )));
        }
        if *offsets.last().expect("non-empty") != items.len() {
            return Err(corrupt(format!(
                "last offset {} does not cover {} entries",
                offsets.last().expect("non-empty"),
                items.len()
            )));
        }
        for u in 0..offsets.len() - 1 {
            let (lo, hi) = (offsets[u], offsets[u + 1]);
            if lo > hi || hi > items.len() {
                return Err(corrupt(format!("bad row range {lo}..{hi} for user {u}")));
            }
            for idx in lo..hi {
                if !scores[idx].is_finite() {
                    return Err(corrupt(format!("non-finite score in row {u}")));
                }
                if idx > lo {
                    let order = scores[idx - 1]
                        .total_cmp(&scores[idx])
                        .then(items[idx].cmp(&items[idx - 1]));
                    if order == std::cmp::Ordering::Less {
                        return Err(corrupt(format!("row {u} not in preference order")));
                    }
                    if scores[idx - 1] == scores[idx] && items[idx - 1] == items[idx] {
                        return Err(corrupt(format!("row {u} repeats an item")));
                    }
                }
            }
        }
        Ok(PrefIndex {
            offsets,
            items,
            scores,
        })
    }

    /// The raw CSR storage `(offsets, items, scores)` — the exact bytes a
    /// checkpoint serializes.
    pub fn parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.offsets, &self.items, &self.scores)
    }

    /// Number of users indexed.
    #[inline]
    pub fn n_users(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of rated items for user `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// User `u`'s full preference list: items sorted by preference.
    #[inline]
    pub fn ranked_items(&self, u: u32) -> &[u32] {
        let u = u as usize;
        &self.items[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Scores aligned with [`PrefIndex::ranked_items`] (non-increasing).
    #[inline]
    pub fn ranked_scores(&self, u: u32) -> &[f64] {
        let u = u as usize;
        &self.scores[self.offsets[u]..self.offsets[u + 1]]
    }

    /// The first `k` entries of `u`'s preference list, fewer if `u` rated
    /// fewer than `k` items.
    pub fn top_k(&self, u: u32, k: usize) -> (&[u32], &[f64]) {
        let items = self.ranked_items(u);
        let scores = self.ranked_scores(u);
        let t = k.min(items.len());
        (&items[..t], &scores[..t])
    }

    /// `u`'s `k`-th best score `sc(u, i^k)`, if `u` rated at least `k` items.
    pub fn kth_score(&self, u: u32, k: usize) -> Option<f64> {
        debug_assert!(k >= 1);
        self.ranked_scores(u).get(k - 1).copied()
    }

    /// Re-sorts user `u`'s preference list from the matrix's current row,
    /// leaving every other user's list untouched.
    ///
    /// This is the incremental counterpart of [`PrefIndex::build`] for use
    /// after [`RatingMatrix::upsert`]: O(d log d) for the affected row,
    /// plus an O(n) offset shift (and an O(nnz) splice) only when the
    /// row's degree changed. The result is exactly what a full `build` of
    /// the patched matrix would produce — the serving layer's
    /// incremental-vs-cold equivalence test enforces this.
    pub fn patch_user(&mut self, matrix: &RatingMatrix, u: u32) {
        debug_assert_eq!(self.n_users(), matrix.n_users());
        let mut row: Vec<(u32, f64)> = matrix.user_ratings(u).collect();
        row.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let u = u as usize;
        let (lo, hi) = (self.offsets[u], self.offsets[u + 1]);
        if row.len() == hi - lo {
            for (slot, (i, s)) in row.into_iter().enumerate() {
                self.items[lo + slot] = i;
                self.scores[lo + slot] = s;
            }
            return;
        }
        let delta = row.len() as i64 - (hi - lo) as i64;
        self.items.splice(lo..hi, row.iter().map(|&(i, _)| i));
        self.scores.splice(lo..hi, row.iter().map(|&(_, s)| s));
        for o in &mut self.offsets[u + 1..] {
            *o = (*o as i64 + delta) as usize;
        }
    }

    /// Re-sorts several users' preference lists from the matrix in one
    /// pass: the batched counterpart of [`PrefIndex::patch_user`].
    ///
    /// When no row's degree changed, each row is patched in place; when
    /// degrees changed, the flat storage is rebuilt with a single O(nnz)
    /// pass instead of one O(nnz) splice per degree-changing user. The
    /// result is exactly what a full [`PrefIndex::build`] of the patched
    /// matrix would produce. Duplicate user ids are fine.
    ///
    /// The matrix may have **grown** (see
    /// [`crate::GrowthPolicy`]): rows the index has never seen are
    /// appended — implicitly dirty, whether or not `users` names them.
    pub fn patch_users(&mut self, matrix: &RatingMatrix, users: &[u32]) {
        debug_assert!(matrix.n_users() >= self.n_users());
        let mut dirty: Vec<u32> = users.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        let degrees_stable = matrix.n_users() == self.n_users()
            && dirty.iter().all(|&u| matrix.degree(u) == self.degree(u));
        if degrees_stable {
            for &u in &dirty {
                self.patch_user(matrix, u);
            }
            return;
        }
        *self = self.rebuilt_with(matrix, &dirty);
    }

    /// Builds the index that [`PrefIndex::patch_users`] would leave
    /// behind, without mutating `self`: one pass over the storage, no
    /// intermediate clone — the snapshot-succession twin of
    /// [`RatingMatrix::with_upserts`]. Duplicate user ids are fine, and a
    /// grown matrix appends the new rows exactly as `patch_users` would.
    pub fn patched(&self, matrix: &RatingMatrix, users: &[u32]) -> PrefIndex {
        debug_assert!(matrix.n_users() >= self.n_users());
        let mut dirty: Vec<u32> = users.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        self.rebuilt_with(matrix, &dirty)
    }

    /// One-pass successor build: dirty rows re-sorted from the matrix,
    /// clean rows copied verbatim, rows beyond the index's old edge (a
    /// grown matrix) treated as dirty. `dirty` must be sorted and deduped.
    fn rebuilt_with(&self, matrix: &RatingMatrix, dirty: &[u32]) -> PrefIndex {
        let mut is_dirty = vec![false; matrix.n_users() as usize];
        for &u in dirty {
            is_dirty[u as usize] = true;
        }
        for slot in &mut is_dirty[(self.offsets.len() - 1)..] {
            *slot = true;
        }
        let mut items = Vec::with_capacity(matrix.nnz());
        let mut scores = Vec::with_capacity(matrix.nnz());
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0usize);
        let mut row: Vec<(u32, f64)> = Vec::new();
        for u in 0..matrix.n_users() {
            if is_dirty[u as usize] {
                row.clear();
                row.extend(matrix.user_ratings(u));
                row.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                items.extend(row.iter().map(|&(i, _)| i));
                scores.extend(row.iter().map(|&(_, s)| s));
            } else {
                let (lo, hi) = (self.offsets[u as usize], self.offsets[u as usize + 1]);
                items.extend_from_slice(&self.items[lo..hi]);
                scores.extend_from_slice(&self.scores[lo..hi]);
            }
            offsets.push(items.len());
        }
        PrefIndex {
            offsets,
            items,
            scores,
        }
    }

    /// The rank (0-based position) of `item` in `u`'s preference list, or
    /// `None` if `u` did not rate it. O(d) scan — used by evaluation code,
    /// not by the formation hot path.
    pub fn rank_of(&self, u: u32, item: u32) -> Option<usize> {
        self.ranked_items(u).iter().position(|&i| i == item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RatingScale;

    fn example1() -> RatingMatrix {
        RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn paper_preference_list_u2() {
        // The paper: L_u2 = <i3,5; i2,3; i1,2>.
        let prefs = PrefIndex::build(&example1());
        assert_eq!(prefs.ranked_items(1), &[2, 1, 0]);
        assert_eq!(prefs.ranked_scores(1), &[5.0, 3.0, 2.0]);
    }

    #[test]
    fn tie_break_by_item_id() {
        // u5 in Example 1 rates (3, 1, 1): i2 and i3 tie at 1, i2 wins.
        let prefs = PrefIndex::build(&example1());
        assert_eq!(prefs.ranked_items(4), &[0, 1, 2]);
    }

    #[test]
    fn top_k_and_kth_score() {
        let prefs = PrefIndex::build(&example1());
        let (items, scores) = prefs.top_k(0, 2);
        assert_eq!(items, &[1, 2]); // u1: i2 (4), i3 (3)
        assert_eq!(scores, &[4.0, 3.0]);
        assert_eq!(prefs.kth_score(0, 2), Some(3.0));
        assert_eq!(prefs.kth_score(0, 4), None);
    }

    #[test]
    fn top_k_truncates_for_sparse_users() {
        let m = crate::matrix::RatingMatrix::from_triples(
            2,
            5,
            vec![(0, 3, 4.0), (0, 1, 2.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let prefs = PrefIndex::build(&m);
        let (items, scores) = prefs.top_k(0, 10);
        assert_eq!(items, &[3, 1]);
        assert_eq!(scores, &[4.0, 2.0]);
        let (items, _) = prefs.top_k(1, 10);
        assert!(items.is_empty());
        assert_eq!(prefs.degree(1), 0);
    }

    #[test]
    fn rank_of() {
        let prefs = PrefIndex::build(&example1());
        assert_eq!(prefs.rank_of(1, 2), Some(0)); // u2's best is i3
        assert_eq!(prefs.rank_of(1, 0), Some(2));
        let sparse = crate::matrix::RatingMatrix::from_triples(
            1,
            4,
            vec![(0, 2, 3.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&sparse);
        assert_eq!(p.rank_of(0, 0), None);
    }

    #[test]
    fn patch_user_matches_cold_build() {
        let mut matrix = example1();
        let mut prefs = PrefIndex::build(&matrix);
        // Same-degree patch: replace an existing rating.
        matrix.upsert(1, 0, 4.0).unwrap();
        prefs.patch_user(&matrix, 1);
        // Degree-growing patch on a sparse matrix.
        let mut sparse = crate::matrix::RatingMatrix::from_triples(
            3,
            4,
            vec![(0, 1, 2.0), (2, 0, 5.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let mut sparse_prefs = PrefIndex::build(&sparse);
        sparse.upsert(0, 3, 4.0).unwrap();
        sparse.upsert(1, 2, 1.0).unwrap();
        sparse_prefs.patch_user(&sparse, 0);
        sparse_prefs.patch_user(&sparse, 1);
        for (m, p) in [(&matrix, &prefs), (&sparse, &sparse_prefs)] {
            let cold = PrefIndex::build(m);
            for u in 0..m.n_users() {
                assert_eq!(p.ranked_items(u), cold.ranked_items(u), "user {u}");
                assert_eq!(p.ranked_scores(u), cold.ranked_scores(u), "user {u}");
            }
        }
    }

    #[test]
    fn patch_users_matches_cold_build() {
        // Degree-stable batch.
        let mut stable = example1();
        let mut stable_prefs = PrefIndex::build(&stable);
        stable.upsert(1, 0, 4.0).unwrap();
        stable.upsert(4, 2, 5.0).unwrap();
        stable_prefs.patch_users(&stable, &[1, 4, 4]);
        // Degree-growing batch on a sparse matrix (one brand-new row).
        let mut sparse = crate::matrix::RatingMatrix::from_triples(
            4,
            5,
            vec![(0, 1, 2.0), (2, 0, 5.0), (2, 3, 1.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let mut sparse_prefs = PrefIndex::build(&sparse);
        sparse.upsert(0, 3, 4.0).unwrap();
        sparse.upsert(3, 2, 2.0).unwrap();
        sparse.upsert(2, 0, 3.0).unwrap();
        sparse_prefs.patch_users(&sparse, &[0, 3, 2]);
        for (m, p) in [(&stable, &stable_prefs), (&sparse, &sparse_prefs)] {
            let cold = PrefIndex::build(m);
            for u in 0..m.n_users() {
                assert_eq!(p.ranked_items(u), cold.ranked_items(u), "user {u}");
                assert_eq!(p.ranked_scores(u), cold.ranked_scores(u), "user {u}");
            }
        }
    }

    #[test]
    fn patched_appends_rows_for_grown_matrices() {
        use crate::matrix::GrowthPolicy;
        let mut matrix = crate::matrix::RatingMatrix::from_triples(
            3,
            3,
            vec![(0, 1, 2.0), (2, 0, 5.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let mut prefs = PrefIndex::build(&matrix);
        // Admit users 3..=5 (4 stays an empty gap row) and item 4.
        let updates = [(5u32, 4u32, 4.0), (3, 0, 1.0), (0, 1, 3.0)];
        let outcomes = matrix
            .upsert_batch_under(&updates, GrowthPolicy::unbounded())
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        let users: Vec<u32> = updates.iter().map(|&(u, _, _)| u).collect();
        let pure = prefs.patched(&matrix, &users);
        prefs.patch_users(&matrix, &users);
        let cold = PrefIndex::build(&matrix);
        assert_eq!(cold.n_users(), 6);
        for p in [&prefs, &pure] {
            assert_eq!(p.n_users(), 6);
            for u in 0..matrix.n_users() {
                assert_eq!(p.ranked_items(u), cold.ranked_items(u), "user {u}");
                assert_eq!(p.ranked_scores(u), cold.ranked_scores(u), "user {u}");
            }
        }
        assert_eq!(prefs.degree(4), 0);
    }

    #[test]
    fn scores_are_non_increasing() {
        let prefs = PrefIndex::build(&example1());
        for u in 0..prefs.n_users() {
            let s = prefs.ranked_scores(u);
            for w in s.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }
}
