//! Sparse user–item rating matrix.
//!
//! Ratings are stored in CSR (compressed sparse row) layout: one row per
//! user, columns sorted by item id. This supports the two access patterns
//! the algorithms need — iterate a user's ratings in item order (for group
//! top-k merges) and O(log d) point lookup — while keeping memory at
//! O(#ratings), which is what makes the paper's 200,000-user scalability
//! experiments feasible.

use crate::error::{GfError, Result};
use crate::scale::RatingScale;

/// Whether the user/item universe may grow when an update names an id
/// beyond the current dimensions.
///
/// Every growing entry point ([`RatingMatrix::upsert_batch_under`],
/// [`RatingMatrix::with_upserts_under`], [`MatrixBuilder::with_growth`])
/// takes the policy explicitly; the policy-free methods keep today's
/// strict bounds-checking, so existing callers are unaffected. Growing a
/// matrix by an out-of-range id `x` admits *every* id up to `x` — the new
/// rows between the old edge and `x` simply hold no ratings yet, exactly
/// as a cold build over the union universe would shape them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GrowthPolicy {
    /// Reject ids beyond the current dimensions (the historical behavior).
    #[default]
    Fixed,
    /// Admit new ids, extending `n_users`/`n_items` up to the caps; an id
    /// at or beyond its cap is a [`GfError::GrowthExhausted`] error.
    Grow {
        /// Hard cap on `n_users` after growth.
        max_users: u32,
        /// Hard cap on `n_items` after growth.
        max_items: u32,
    },
}

impl GrowthPolicy {
    /// A [`GrowthPolicy::Grow`] with both caps at `u32::MAX`.
    pub fn unbounded() -> Self {
        GrowthPolicy::Grow {
            max_users: u32::MAX,
            max_items: u32::MAX,
        }
    }

    /// Whether this policy admits any new ids at all.
    pub fn allows_growth(self) -> bool {
        matches!(self, GrowthPolicy::Grow { .. })
    }

    /// Validates admitting `user` given `n_users` current users: `Ok` with
    /// the (possibly unchanged) user count a matrix containing `user` must
    /// have, or the policy's refusal.
    pub fn admit_user(self, user: u32, n_users: u32) -> Result<u32> {
        if user < n_users {
            return Ok(n_users);
        }
        match self {
            GrowthPolicy::Fixed => Err(GfError::UserOutOfRange { user, n_users }),
            GrowthPolicy::Grow { max_users, .. } => {
                if user >= max_users {
                    Err(GfError::GrowthExhausted {
                        axis: "user",
                        id: user,
                        max: max_users,
                    })
                } else {
                    Ok(user + 1)
                }
            }
        }
    }

    /// The item-axis counterpart of [`GrowthPolicy::admit_user`].
    pub fn admit_item(self, item: u32, n_items: u32) -> Result<u32> {
        if item < n_items {
            return Ok(n_items);
        }
        match self {
            GrowthPolicy::Fixed => Err(GfError::ItemOutOfRange { item, n_items }),
            GrowthPolicy::Grow { max_items, .. } => {
                if item >= max_items {
                    Err(GfError::GrowthExhausted {
                        axis: "item",
                        id: item,
                        max: max_items,
                    })
                } else {
                    Ok(item + 1)
                }
            }
        }
    }
}

/// A sparse, immutable user–item rating matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RatingMatrix {
    n_users: u32,
    n_items: u32,
    scale: RatingScale,
    /// Row offsets; `offsets[u]..offsets[u+1]` indexes `items`/`scores`.
    offsets: Vec<usize>,
    /// Item ids per row, strictly increasing within a row.
    items: Vec<u32>,
    /// Scores aligned with `items`.
    scores: Vec<f64>,
}

impl RatingMatrix {
    /// Builds a matrix from `(user, item, score)` triples.
    ///
    /// Triples may arrive in any order; duplicates are rejected. All scores
    /// must be finite and within `scale`.
    pub fn from_triples(
        n_users: u32,
        n_items: u32,
        triples: impl IntoIterator<Item = (u32, u32, f64)>,
        scale: RatingScale,
    ) -> Result<Self> {
        let mut b = MatrixBuilder::new(n_users, n_items, scale);
        for (u, i, s) in triples {
            b.push(u, i, s)?;
        }
        b.build()
    }

    /// Builds a dense matrix: `rows[u][i]` is user `u`'s rating of item `i`.
    ///
    /// Every row must have the same length. Handy for the paper's small
    /// worked examples (Tables 1, 2 and 5).
    pub fn from_dense(rows: &[&[f64]], scale: RatingScale) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(GfError::EmptyMatrix);
        }
        let m = rows[0].len();
        let mut b = MatrixBuilder::new(rows.len() as u32, m as u32, scale);
        for (u, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(GfError::InvalidGrouping(format!(
                    "dense row {u} has length {} but expected {m}",
                    row.len()
                )));
            }
            for (i, &s) in row.iter().enumerate() {
                b.push(u as u32, i as u32, s)?;
            }
        }
        b.build()
    }

    /// Builds a fully dense matrix from a row-major `n_users x n_items`
    /// score buffer, consuming the buffer as the score storage — no
    /// intermediate triples, no per-row sort. Every score is validated
    /// against `scale` exactly as [`MatrixBuilder::push`] would.
    ///
    /// This is the fast path for producers that already materialize dense
    /// rows (e.g. threaded matrix completion): versus routing `n * m`
    /// cells through a builder it skips the 16-byte-per-cell triple buffer
    /// and the counting sort.
    pub fn from_dense_buffer(
        n_users: u32,
        n_items: u32,
        scores: Vec<f64>,
        scale: RatingScale,
    ) -> Result<Self> {
        if n_users == 0 || n_items == 0 {
            return Err(GfError::EmptyMatrix);
        }
        let (n, m) = (n_users as usize, n_items as usize);
        if scores.len() != n * m {
            return Err(GfError::InvalidGrouping(format!(
                "dense buffer holds {} cells but expected {n} x {m}",
                scores.len()
            )));
        }
        for (idx, &s) in scores.iter().enumerate() {
            if !s.is_finite() {
                return Err(GfError::NonFiniteScore {
                    user: (idx / m) as u32,
                    item: (idx % m) as u32,
                });
            }
            if !scale.contains(s) {
                return Err(GfError::ScaleViolation {
                    user: (idx / m) as u32,
                    item: (idx % m) as u32,
                    score: s,
                });
            }
        }
        Ok(RatingMatrix {
            n_users,
            n_items,
            scale,
            offsets: (0..=n).map(|u| u * m).collect(),
            items: (0..n).flat_map(|_| 0..n_items).collect(),
            scores,
        })
    }

    /// Rebuilds a matrix from raw CSR storage — the inverse of
    /// [`RatingMatrix::csr_parts`], used by the `gf-persist` checkpoint
    /// loader. Every invariant the builders enforce is re-validated here
    /// (monotone offsets, strictly increasing item ids per row, finite
    /// in-scale scores), so a corrupted or hand-edited checkpoint cannot
    /// smuggle an invalid matrix into a serving process.
    pub fn from_csr_parts(
        n_users: u32,
        n_items: u32,
        scale: RatingScale,
        offsets: Vec<usize>,
        items: Vec<u32>,
        scores: Vec<f64>,
    ) -> Result<Self> {
        if n_users == 0 || n_items == 0 {
            return Err(GfError::EmptyMatrix);
        }
        let corrupt = |msg: String| GfError::Persist(format!("invalid CSR parts: {msg}"));
        if offsets.len() != n_users as usize + 1 {
            return Err(corrupt(format!(
                "{} offsets for {n_users} users",
                offsets.len()
            )));
        }
        if offsets[0] != 0 {
            return Err(corrupt(format!("offsets[0] = {}", offsets[0])));
        }
        if items.len() != scores.len() {
            return Err(corrupt(format!(
                "{} items vs {} scores",
                items.len(),
                scores.len()
            )));
        }
        if *offsets.last().expect("non-empty") != items.len() {
            return Err(corrupt(format!(
                "last offset {} does not cover {} entries",
                offsets.last().expect("non-empty"),
                items.len()
            )));
        }
        for u in 0..n_users as usize {
            let (lo, hi) = (offsets[u], offsets[u + 1]);
            if lo > hi {
                return Err(corrupt(format!("offsets decrease at row {u}")));
            }
            let row = items
                .get(lo..hi)
                .ok_or_else(|| corrupt(format!("row {u} range {lo}..{hi} out of bounds")))?;
            for (idx, &i) in row.iter().enumerate() {
                if i >= n_items {
                    return Err(GfError::ItemOutOfRange { item: i, n_items });
                }
                if idx > 0 && row[idx - 1] >= i {
                    return Err(corrupt(format!("row {u} item ids not strictly increasing")));
                }
                let s = scores[lo + idx];
                if !s.is_finite() {
                    return Err(GfError::NonFiniteScore {
                        user: u as u32,
                        item: i,
                    });
                }
                if !scale.contains(s) {
                    return Err(GfError::ScaleViolation {
                        user: u as u32,
                        item: i,
                        score: s,
                    });
                }
            }
        }
        Ok(RatingMatrix {
            n_users,
            n_items,
            scale,
            offsets,
            items,
            scores,
        })
    }

    /// The raw CSR storage `(offsets, items, scores)` — the exact bytes a
    /// checkpoint serializes. `offsets[u]..offsets[u+1]` indexes the
    /// parallel `items`/`scores` slices for user `u`.
    pub fn csr_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.offsets, &self.items, &self.scores)
    }

    /// Number of users `n`.
    #[inline]
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Number of items `m`.
    #[inline]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// The rating scale the matrix was validated against.
    #[inline]
    pub fn scale(&self) -> RatingScale {
        self.scale
    }

    /// Total number of stored ratings.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.items.len()
    }

    /// Fraction of the full `n x m` matrix that is rated.
    pub fn density(&self) -> f64 {
        if self.n_users == 0 || self.n_items == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// Number of ratings by user `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// The items rated by `u`, in increasing item order.
    #[inline]
    pub fn user_items(&self, u: u32) -> &[u32] {
        let u = u as usize;
        &self.items[self.offsets[u]..self.offsets[u + 1]]
    }

    /// The scores of user `u`, aligned with [`RatingMatrix::user_items`].
    #[inline]
    pub fn user_scores(&self, u: u32) -> &[f64] {
        let u = u as usize;
        &self.scores[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Iterates `(item, score)` pairs of user `u` in increasing item order.
    pub fn user_ratings(&self, u: u32) -> impl ExactSizeIterator<Item = (u32, f64)> + '_ {
        self.user_items(u)
            .iter()
            .copied()
            .zip(self.user_scores(u).iter().copied())
    }

    /// User `u`'s rating of item `i`, if present. O(log d) binary search.
    pub fn get(&self, u: u32, i: u32) -> Option<f64> {
        let items = self.user_items(u);
        items
            .binary_search(&i)
            .ok()
            .map(|pos| self.user_scores(u)[pos])
    }

    /// Mean of user `u`'s ratings, or the scale midpoint if `u` rated
    /// nothing (a neutral prior for cold users).
    pub fn user_mean(&self, u: u32) -> f64 {
        let scores = self.user_scores(u);
        if scores.is_empty() {
            return (self.scale.min() + self.scale.max()) / 2.0;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// Mean over all stored ratings, or the scale midpoint if empty.
    pub fn global_mean(&self) -> f64 {
        if self.scores.is_empty() {
            return (self.scale.min() + self.scale.max()) / 2.0;
        }
        self.scores.iter().sum::<f64>() / self.scores.len() as f64
    }

    /// Builds the item-major transpose: for each item, the `(user, score)`
    /// pairs in increasing user order. Used by collaborative filtering and
    /// by per-item statistics.
    pub fn transpose(&self) -> ItemMajor {
        let m = self.n_items as usize;
        let mut counts = vec![0usize; m + 1];
        for &i in &self.items {
            counts[i as usize + 1] += 1;
        }
        for i in 0..m {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut users = vec![0u32; self.items.len()];
        let mut scores = vec![0f64; self.items.len()];
        for u in 0..self.n_users {
            for (i, s) in self.user_ratings(u) {
                let slot = cursor[i as usize];
                users[slot] = u;
                scores[slot] = s;
                cursor[i as usize] += 1;
            }
        }
        ItemMajor {
            n_items: self.n_items,
            offsets,
            users,
            scores,
        }
    }

    /// Inserts or replaces a single rating in place, validating exactly as
    /// [`MatrixBuilder::push`] would.
    ///
    /// Replacing an existing rating is O(log d) (binary search + one
    /// store); inserting a new one shifts the CSR tail, O(nnz) worst case.
    /// This is the patch hook the serving layer (`gf-serve`) uses to apply
    /// `POST /rate` updates without rebuilding the matrix; after an upsert
    /// the affected user's preference list must be re-sorted via
    /// [`crate::PrefIndex::patch_user`].
    pub fn upsert(&mut self, user: u32, item: u32, score: f64) -> Result<Upsert> {
        if user >= self.n_users {
            return Err(GfError::UserOutOfRange {
                user,
                n_users: self.n_users,
            });
        }
        if item >= self.n_items {
            return Err(GfError::ItemOutOfRange {
                item,
                n_items: self.n_items,
            });
        }
        if !score.is_finite() {
            return Err(GfError::NonFiniteScore { user, item });
        }
        if !self.scale.contains(score) {
            return Err(GfError::ScaleViolation { user, item, score });
        }
        let u = user as usize;
        let (lo, hi) = (self.offsets[u], self.offsets[u + 1]);
        match self.items[lo..hi].binary_search(&item) {
            Ok(pos) => {
                let previous = std::mem::replace(&mut self.scores[lo + pos], score);
                Ok(Upsert::Updated { previous })
            }
            Err(pos) => {
                self.items.insert(lo + pos, item);
                self.scores.insert(lo + pos, score);
                for o in &mut self.offsets[u + 1..] {
                    *o += 1;
                }
                Ok(Upsert::Inserted)
            }
        }
    }

    /// Applies a batch of rating updates in one pass over the CSR storage.
    ///
    /// Equivalent to calling [`RatingMatrix::upsert`] once per update in
    /// order (later updates to the same cell win, and each outcome reports
    /// the value it replaced — including one written earlier in the same
    /// batch), but degree-growing rows are rebuilt with a single splice:
    /// O(nnz + b log b) total instead of O(b · nnz) element moves for a
    /// batch of `b` inserts. Every update is validated before anything
    /// mutates, so on `Err` the matrix is unchanged. Returns per-update
    /// outcomes aligned with `updates`.
    pub fn upsert_batch(&mut self, updates: &[(u32, u32, f64)]) -> Result<Vec<Upsert>> {
        self.upsert_batch_under(updates, GrowthPolicy::Fixed)
    }

    /// [`RatingMatrix::upsert_batch`] under an explicit [`GrowthPolicy`]:
    /// with [`GrowthPolicy::Grow`], updates naming users/items beyond the
    /// current dimensions extend `n_users`/`n_items` (appending empty CSR
    /// rows up to the named id) instead of erroring, as long as the caps
    /// allow it. Same-batch semantics carry over unchanged: rating a
    /// brand-new user's cell twice in one batch reports `Inserted` then
    /// `Updated` with the first write as its previous value.
    pub fn upsert_batch_under(
        &mut self,
        updates: &[(u32, u32, f64)],
        growth: GrowthPolicy,
    ) -> Result<Vec<Upsert>> {
        let (written, outcomes, inserts, n_users, n_items) =
            self.resolve_updates(updates, growth)?;
        if inserts == 0 && n_users == self.n_users && n_items == self.n_items {
            // Pure overwrites: patch scores in place, no storage reshaping.
            for (&(user, item), &score) in &written {
                let u = user as usize;
                let (lo, hi) = (self.offsets[u], self.offsets[u + 1]);
                let pos = self.items[lo..hi]
                    .binary_search(&item)
                    .expect("overwrite target exists");
                self.scores[lo + pos] = score;
            }
            return Ok(outcomes);
        }
        *self = self.rebuilt_with(&written, inserts, n_users, n_items);
        Ok(outcomes)
    }

    /// Builds the matrix that [`RatingMatrix::upsert_batch`] would leave
    /// behind, without mutating `self`: one pass over the storage, no
    /// intermediate clone. This is the serving layer's snapshot-succession
    /// primitive — the old matrix stays live for concurrent readers while
    /// the successor is assembled.
    pub fn with_upserts(&self, updates: &[(u32, u32, f64)]) -> Result<(RatingMatrix, Vec<Upsert>)> {
        self.with_upserts_under(updates, GrowthPolicy::Fixed)
    }

    /// [`RatingMatrix::with_upserts`] under an explicit [`GrowthPolicy`]:
    /// the successor's dimensions grow to cover every admitted id (still
    /// one pass over the storage — appending empty rows costs O(new rows),
    /// not O(nnz), on top of the usual successor build).
    pub fn with_upserts_under(
        &self,
        updates: &[(u32, u32, f64)],
        growth: GrowthPolicy,
    ) -> Result<(RatingMatrix, Vec<Upsert>)> {
        let (written, outcomes, inserts, n_users, n_items) =
            self.resolve_updates(updates, growth)?;
        Ok((
            self.rebuilt_with(&written, inserts, n_users, n_items),
            outcomes,
        ))
    }

    /// Validates `updates` and resolves them sequentially into final cell
    /// values plus per-update outcomes: a later update of a cell written
    /// earlier in the batch replaces the earlier value, not the stored one
    /// — exactly the per-call [`RatingMatrix::upsert`] semantics. Also
    /// resolves the grown dimensions the batch requires under `growth`.
    /// Nothing is mutated; on `Err` the caller's matrix is untouched.
    #[allow(clippy::type_complexity)] // private helper: (final cells, outcomes, insert count, grown dims)
    fn resolve_updates(
        &self,
        updates: &[(u32, u32, f64)],
        growth: GrowthPolicy,
    ) -> Result<(
        crate::fxhash::FxHashMap<(u32, u32), f64>,
        Vec<Upsert>,
        usize,
        u32,
        u32,
    )> {
        let mut n_users = self.n_users;
        let mut n_items = self.n_items;
        for &(user, item, score) in updates {
            n_users = growth.admit_user(user, n_users)?;
            n_items = growth.admit_item(item, n_items)?;
            if !score.is_finite() {
                return Err(GfError::NonFiniteScore { user, item });
            }
            if !self.scale.contains(score) {
                return Err(GfError::ScaleViolation { user, item, score });
            }
        }
        let mut written: crate::fxhash::FxHashMap<(u32, u32), f64> =
            crate::fxhash::FxHashMap::default();
        let mut outcomes = Vec::with_capacity(updates.len());
        let mut inserts = 0usize;
        for &(user, item, score) in updates {
            let stored = (user < self.n_users)
                .then(|| self.get(user, item))
                .flatten();
            let outcome = match written.get(&(user, item)) {
                Some(&previous) => Upsert::Updated { previous },
                None => match stored {
                    Some(previous) => Upsert::Updated { previous },
                    None => {
                        inserts += 1;
                        Upsert::Inserted
                    }
                },
            };
            written.insert((user, item), score);
            outcomes.push(outcome);
        }
        Ok((written, outcomes, inserts, n_users, n_items))
    }

    /// Assembles the successor matrix in one pass, merging each dirty row
    /// with its final cell values; clean rows are copied verbatim and rows
    /// beyond the old edge start empty (then receive their cells).
    fn rebuilt_with(
        &self,
        written: &crate::fxhash::FxHashMap<(u32, u32), f64>,
        inserts: usize,
        n_users: u32,
        n_items: u32,
    ) -> RatingMatrix {
        let mut per_user: crate::fxhash::FxHashMap<u32, Vec<(u32, f64)>> =
            crate::fxhash::FxHashMap::default();
        for (&(user, item), &score) in written {
            per_user.entry(user).or_default().push((item, score));
        }
        let mut items = Vec::with_capacity(self.items.len() + inserts);
        let mut scores = Vec::with_capacity(self.scores.len() + inserts);
        let mut offsets = Vec::with_capacity(n_users as usize + 1);
        offsets.push(0usize);
        for u in 0..n_users {
            let (lo, hi) = if u < self.n_users {
                (self.offsets[u as usize], self.offsets[u as usize + 1])
            } else {
                (0, 0) // brand-new row: no stored ratings to merge
            };
            match per_user.get_mut(&u) {
                None => {
                    items.extend_from_slice(&self.items[lo..hi]);
                    scores.extend_from_slice(&self.scores[lo..hi]);
                }
                Some(cells) => {
                    cells.sort_unstable_by_key(|&(i, _)| i);
                    let mut ci = 0usize;
                    for pos in lo..hi {
                        let old_item = self.items[pos];
                        while ci < cells.len() && cells[ci].0 < old_item {
                            items.push(cells[ci].0);
                            scores.push(cells[ci].1);
                            ci += 1;
                        }
                        if ci < cells.len() && cells[ci].0 == old_item {
                            items.push(old_item);
                            scores.push(cells[ci].1);
                            ci += 1;
                        } else {
                            items.push(old_item);
                            scores.push(self.scores[pos]);
                        }
                    }
                    for &(i, s) in &cells[ci..] {
                        items.push(i);
                        scores.push(s);
                    }
                }
            }
            offsets.push(items.len());
        }
        RatingMatrix {
            n_users,
            n_items,
            scale: self.scale,
            offsets,
            items,
            scores,
        }
    }

    /// Restricts the matrix to `users x items` sub-populations, re-indexing
    /// both densely in the order given. Duplicate selections are rejected.
    ///
    /// This is how the experiments "randomly select 200 users and 100 items"
    /// from the full datasets.
    pub fn submatrix(&self, users: &[u32], items: &[u32]) -> Result<RatingMatrix> {
        let mut item_map = vec![u32::MAX; self.n_items as usize];
        for (new, &old) in items.iter().enumerate() {
            if old >= self.n_items {
                return Err(GfError::ItemOutOfRange {
                    item: old,
                    n_items: self.n_items,
                });
            }
            if item_map[old as usize] != u32::MAX {
                return Err(GfError::InvalidGrouping(format!(
                    "item {old} selected twice in submatrix"
                )));
            }
            item_map[old as usize] = new as u32;
        }
        let mut b = MatrixBuilder::new(users.len() as u32, items.len() as u32, self.scale);
        let mut seen = vec![false; self.n_users as usize];
        for (new_u, &old_u) in users.iter().enumerate() {
            if old_u >= self.n_users {
                return Err(GfError::UserOutOfRange {
                    user: old_u,
                    n_users: self.n_users,
                });
            }
            if seen[old_u as usize] {
                return Err(GfError::InvalidGrouping(format!(
                    "user {old_u} selected twice in submatrix"
                )));
            }
            seen[old_u as usize] = true;
            for (i, s) in self.user_ratings(old_u) {
                let mapped = item_map[i as usize];
                if mapped != u32::MAX {
                    b.push(new_u as u32, mapped, s)?;
                }
            }
        }
        b.build()
    }
}

/// What a [`RatingMatrix::upsert`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Upsert {
    /// The `(user, item)` pair was already rated; the score was replaced.
    Updated {
        /// The score that was overwritten.
        previous: f64,
    },
    /// The pair was new; a rating was inserted.
    Inserted,
}

/// Item-major (transposed) view of a [`RatingMatrix`].
#[derive(Debug, Clone)]
pub struct ItemMajor {
    n_items: u32,
    offsets: Vec<usize>,
    users: Vec<u32>,
    scores: Vec<f64>,
}

impl ItemMajor {
    /// Number of items.
    #[inline]
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of users who rated item `i`.
    #[inline]
    pub fn degree(&self, i: u32) -> usize {
        let i = i as usize;
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The users who rated item `i`, in increasing user order.
    #[inline]
    pub fn item_users(&self, i: u32) -> &[u32] {
        let i = i as usize;
        &self.users[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Scores aligned with [`ItemMajor::item_users`].
    #[inline]
    pub fn item_scores(&self, i: u32) -> &[f64] {
        let i = i as usize;
        &self.scores[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Mean rating of item `i`, if anyone rated it.
    pub fn item_mean(&self, i: u32) -> Option<f64> {
        let s = self.item_scores(i);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }
}

/// Incremental builder for [`RatingMatrix`].
///
/// Accepts triples in any order; `build` sorts rows and verifies there are
/// no duplicate `(user, item)` pairs.
#[derive(Debug, Clone)]
pub struct MatrixBuilder {
    n_users: u32,
    n_items: u32,
    scale: RatingScale,
    growth: GrowthPolicy,
    triples: Vec<(u32, u32, f64)>,
}

impl MatrixBuilder {
    /// Creates a builder for an `n_users x n_items` matrix.
    pub fn new(n_users: u32, n_items: u32, scale: RatingScale) -> Self {
        MatrixBuilder {
            n_users,
            n_items,
            scale,
            growth: GrowthPolicy::Fixed,
            triples: Vec::new(),
        }
    }

    /// Lets [`MatrixBuilder::push`] grow the declared dimensions instead
    /// of rejecting out-of-range ids, up to the policy's caps. The initial
    /// dimensions become a floor: the built matrix is at least
    /// `n_users x n_items` even if no pushed rating reaches the edge.
    pub fn with_growth(mut self, growth: GrowthPolicy) -> Self {
        self.growth = growth;
        self
    }

    /// The current (possibly grown) user-axis size.
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// The current (possibly grown) item-axis size.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Reserves capacity for `additional` more ratings.
    pub fn reserve(&mut self, additional: usize) {
        self.triples.reserve(additional);
    }

    /// Adds one rating, validating the indices and the score eagerly
    /// (growing the dimensions instead where [`MatrixBuilder::with_growth`]
    /// allows it).
    pub fn push(&mut self, user: u32, item: u32, score: f64) -> Result<()> {
        // Validate everything before committing either axis: a rejected
        // rating must not leave grown dimensions behind.
        let n_users = self.growth.admit_user(user, self.n_users)?;
        let n_items = self.growth.admit_item(item, self.n_items)?;
        if !score.is_finite() {
            return Err(GfError::NonFiniteScore { user, item });
        }
        if !self.scale.contains(score) {
            return Err(GfError::ScaleViolation { user, item, score });
        }
        self.n_users = n_users;
        self.n_items = n_items;
        self.triples.push((user, item, score));
        Ok(())
    }

    /// Number of ratings pushed so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no ratings have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Finalizes into a [`RatingMatrix`], sorting rows and rejecting
    /// duplicate `(user, item)` pairs.
    pub fn build(mut self) -> Result<RatingMatrix> {
        if self.n_users == 0 || self.n_items == 0 {
            return Err(GfError::EmptyMatrix);
        }
        // Counting sort by user keeps this O(nnz) instead of O(nnz log nnz).
        let n = self.n_users as usize;
        let mut counts = vec![0usize; n + 1];
        for &(u, _, _) in &self.triples {
            counts[u as usize + 1] += 1;
        }
        for u in 0..n {
            counts[u + 1] += counts[u];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let nnz = self.triples.len();
        let mut items = vec![0u32; nnz];
        let mut scores = vec![0f64; nnz];
        for &(u, i, s) in &self.triples {
            let slot = cursor[u as usize];
            items[slot] = i;
            scores[slot] = s;
            cursor[u as usize] += 1;
        }
        self.triples.clear();
        self.triples.shrink_to_fit();
        // Sort each row by item id and detect duplicates.
        for u in 0..n {
            let (lo, hi) = (offsets[u], offsets[u + 1]);
            if hi - lo <= 1 {
                continue;
            }
            let mut row: Vec<(u32, f64)> = items[lo..hi]
                .iter()
                .copied()
                .zip(scores[lo..hi].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(i, _)| i);
            for w in row.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(GfError::DuplicateRating {
                        user: u as u32,
                        item: w[0].0,
                    });
                }
            }
            for (slot, (i, s)) in row.into_iter().enumerate() {
                items[lo + slot] = i;
                scores[lo + slot] = s;
            }
        }
        Ok(RatingMatrix {
            n_users: self.n_users,
            n_items: self.n_items,
            scale: self.scale,
            offsets,
            items,
            scores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example1() -> RatingMatrix {
        // Table 1 of the paper (rows here are users, columns items).
        RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn dense_round_trip() {
        let m = example1();
        assert_eq!(m.n_users(), 6);
        assert_eq!(m.n_items(), 3);
        assert_eq!(m.nnz(), 18);
        assert_eq!(m.get(0, 1), Some(4.0));
        assert_eq!(m.get(4, 0), Some(3.0));
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    fn from_dense_buffer_matches_from_dense() {
        let rows: [&[f64]; 3] = [&[1.0, 4.0, 3.0], &[2.0, 3.0, 5.0], &[2.0, 5.0, 1.0]];
        let via_builder = RatingMatrix::from_dense(&rows, RatingScale::one_to_five()).unwrap();
        let buf: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let direct =
            RatingMatrix::from_dense_buffer(3, 3, buf, RatingScale::one_to_five()).unwrap();
        assert_eq!(via_builder, direct);
        assert_eq!(direct.density(), 1.0);
    }

    #[test]
    fn from_dense_buffer_validates() {
        let scale = RatingScale::one_to_five();
        assert!(matches!(
            RatingMatrix::from_dense_buffer(0, 2, vec![], scale),
            Err(GfError::EmptyMatrix)
        ));
        assert!(matches!(
            RatingMatrix::from_dense_buffer(2, 2, vec![1.0; 3], scale),
            Err(GfError::InvalidGrouping(_))
        ));
        assert_eq!(
            RatingMatrix::from_dense_buffer(2, 2, vec![1.0, 2.0, 9.0, 3.0], scale).unwrap_err(),
            GfError::ScaleViolation {
                user: 1,
                item: 0,
                score: 9.0
            }
        );
        assert_eq!(
            RatingMatrix::from_dense_buffer(2, 2, vec![1.0, f64::NAN, 2.0, 3.0], scale)
                .unwrap_err(),
            GfError::NonFiniteScore { user: 0, item: 1 }
        );
    }

    #[test]
    fn triples_any_order() {
        let m = RatingMatrix::from_triples(
            2,
            3,
            vec![(1, 2, 5.0), (0, 0, 1.0), (1, 0, 2.0), (0, 2, 3.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        assert_eq!(m.user_items(0), &[0, 2]);
        assert_eq!(m.user_scores(1), &[2.0, 5.0]);
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.degree(0), 2);
    }

    #[test]
    fn duplicate_rejected() {
        let err = RatingMatrix::from_triples(
            2,
            2,
            vec![(0, 1, 3.0), (0, 1, 4.0)],
            RatingScale::one_to_five(),
        )
        .unwrap_err();
        assert_eq!(err, GfError::DuplicateRating { user: 0, item: 1 });
    }

    #[test]
    fn out_of_range_and_scale_rejected() {
        let mut b = MatrixBuilder::new(2, 2, RatingScale::one_to_five());
        assert!(matches!(
            b.push(2, 0, 3.0),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            b.push(0, 5, 3.0),
            Err(GfError::ItemOutOfRange { .. })
        ));
        assert!(matches!(
            b.push(0, 0, 9.0),
            Err(GfError::ScaleViolation { .. })
        ));
        assert!(matches!(
            b.push(0, 0, f64::NAN),
            Err(GfError::NonFiniteScore { .. })
        ));
    }

    #[test]
    fn empty_matrix_rejected() {
        assert_eq!(
            MatrixBuilder::new(0, 5, RatingScale::one_to_five())
                .build()
                .unwrap_err(),
            GfError::EmptyMatrix
        );
        assert!(RatingMatrix::from_dense(&[], RatingScale::one_to_five()).is_err());
    }

    #[test]
    fn user_with_no_ratings_is_fine() {
        let m = RatingMatrix::from_triples(3, 2, vec![(0, 0, 2.0)], RatingScale::one_to_five())
            .unwrap();
        assert_eq!(m.degree(1), 0);
        assert_eq!(m.user_items(2), &[] as &[u32]);
        // Cold user mean falls back to the scale midpoint.
        assert_eq!(m.user_mean(1), 3.0);
    }

    #[test]
    fn means() {
        let m = example1();
        assert!((m.user_mean(0) - (1.0 + 4.0 + 3.0) / 3.0).abs() < 1e-12);
        let total: f64 = (0..6).map(|u| m.user_scores(u).iter().sum::<f64>()).sum();
        assert!((m.global_mean() - total / 18.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_matches_row_view() {
        let m = example1();
        let t = m.transpose();
        assert_eq!(t.n_items(), 3);
        assert_eq!(t.degree(1), 6);
        assert_eq!(t.item_users(0), &[0, 1, 2, 3, 4, 5]);
        // Column i2 of Table 1: 4 3 5 5 1 2.
        assert_eq!(t.item_scores(1), &[4.0, 3.0, 5.0, 5.0, 1.0, 2.0]);
        assert_eq!(t.item_mean(1), Some(20.0 / 6.0));
    }

    #[test]
    fn transpose_on_sparse() {
        let m = RatingMatrix::from_triples(
            3,
            3,
            vec![(0, 1, 2.0), (2, 1, 4.0), (1, 0, 5.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let t = m.transpose();
        assert_eq!(t.item_users(1), &[0, 2]);
        assert_eq!(t.item_scores(1), &[2.0, 4.0]);
        assert_eq!(t.degree(2), 0);
        assert_eq!(t.item_mean(2), None);
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut m = example1();
        assert_eq!(
            m.upsert(0, 1, 2.0).unwrap(),
            Upsert::Updated { previous: 4.0 }
        );
        assert_eq!(m.get(0, 1), Some(2.0));
        assert_eq!(m.nnz(), 18);
    }

    #[test]
    fn upsert_inserts_and_matches_cold_rebuild() {
        let mut m = RatingMatrix::from_triples(
            3,
            4,
            vec![(0, 0, 2.0), (0, 3, 4.0), (2, 1, 5.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        assert_eq!(m.upsert(0, 2, 3.0).unwrap(), Upsert::Inserted);
        assert_eq!(m.upsert(1, 0, 1.0).unwrap(), Upsert::Inserted);
        let cold = RatingMatrix::from_triples(
            3,
            4,
            vec![
                (0, 0, 2.0),
                (0, 2, 3.0),
                (0, 3, 4.0),
                (1, 0, 1.0),
                (2, 1, 5.0),
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        assert_eq!(m, cold);
    }

    #[test]
    fn upsert_validates_like_push() {
        let mut m = example1();
        assert!(matches!(
            m.upsert(99, 0, 3.0),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            m.upsert(0, 99, 3.0),
            Err(GfError::ItemOutOfRange { .. })
        ));
        assert!(matches!(
            m.upsert(0, 0, 9.0),
            Err(GfError::ScaleViolation { .. })
        ));
        assert!(matches!(
            m.upsert(0, 0, f64::NAN),
            Err(GfError::NonFiniteScore { .. })
        ));
        // Failed upserts leave the matrix untouched.
        assert_eq!(m, example1());
    }

    #[test]
    fn upsert_batch_matches_sequential_upserts() {
        let base = RatingMatrix::from_triples(
            4,
            5,
            vec![(0, 0, 2.0), (0, 3, 4.0), (2, 1, 5.0), (3, 4, 1.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        // Mix of overwrites, inserts, a same-cell double write and a
        // previously empty row.
        let updates = [
            (0u32, 3u32, 5.0),
            (1, 2, 3.0),
            (0, 1, 2.0),
            (1, 2, 4.0),
            (3, 0, 2.0),
            (2, 1, 1.0),
        ];
        let mut batched = base.clone();
        let outcomes = batched.upsert_batch(&updates).unwrap();
        let mut sequential = base.clone();
        let expected: Vec<Upsert> = updates
            .iter()
            .map(|&(u, i, s)| sequential.upsert(u, i, s).unwrap())
            .collect();
        assert_eq!(outcomes, expected);
        assert_eq!(batched, sequential);
        // The double write reports the first batch write as its previous.
        assert_eq!(outcomes[3], Upsert::Updated { previous: 3.0 });
    }

    #[test]
    fn upsert_batch_pure_overwrites_avoid_rebuild() {
        let mut m = example1();
        let outcomes = m.upsert_batch(&[(0, 1, 1.0), (1, 0, 5.0)]).unwrap();
        assert_eq!(
            outcomes,
            vec![
                Upsert::Updated { previous: 4.0 },
                Upsert::Updated { previous: 2.0 }
            ]
        );
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.nnz(), example1().nnz());
    }

    #[test]
    fn upsert_batch_validates_before_mutating() {
        let mut m = example1();
        assert!(matches!(
            m.upsert_batch(&[(0, 0, 3.0), (99, 0, 3.0)]),
            Err(GfError::UserOutOfRange { .. })
        ));
        assert!(matches!(
            m.upsert_batch(&[(0, 0, 3.0), (0, 0, 9.0)]),
            Err(GfError::ScaleViolation { .. })
        ));
        assert_eq!(m, example1());
        assert_eq!(m.upsert_batch(&[]).unwrap(), vec![]);
    }

    #[test]
    fn upsert_batch_under_grows_to_cold_union_build() {
        let base = RatingMatrix::from_triples(
            3,
            2,
            vec![(0, 0, 2.0), (2, 1, 5.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let growth = GrowthPolicy::unbounded();
        // Admit user 5 (creating empty rows 3, 4) and item 3 (items 2 as a
        // gap column), mixing in an overwrite of an existing cell.
        let updates = [(5u32, 3u32, 4.0), (0, 0, 3.0), (4, 1, 1.0)];
        let mut grown = base.clone();
        let outcomes = grown.upsert_batch_under(&updates, growth).unwrap();
        assert_eq!(
            outcomes,
            vec![
                Upsert::Inserted,
                Upsert::Updated { previous: 2.0 },
                Upsert::Inserted
            ]
        );
        let (pure, pure_outcomes) = base.with_upserts_under(&updates, growth).unwrap();
        assert_eq!(pure_outcomes, outcomes);
        assert_eq!(pure, grown);
        let cold = RatingMatrix::from_triples(
            6,
            4,
            vec![(0, 0, 3.0), (2, 1, 5.0), (4, 1, 1.0), (5, 3, 4.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        assert_eq!(grown, cold);
        assert_eq!(grown.degree(3), 0); // gap row admitted empty
    }

    #[test]
    fn same_batch_create_then_rate_again() {
        let base = RatingMatrix::from_triples(2, 2, vec![(0, 0, 2.0)], RatingScale::one_to_five())
            .unwrap();
        let mut m = base.clone();
        // A brand-new user's cell written twice in one batch: the second
        // write reports the first as its previous value, and the final
        // matrix carries the last write.
        let outcomes = m
            .upsert_batch_under(
                &[(4, 3, 2.0), (4, 3, 5.0)],
                GrowthPolicy::Grow {
                    max_users: 8,
                    max_items: 8,
                },
            )
            .unwrap();
        assert_eq!(
            outcomes,
            vec![Upsert::Inserted, Upsert::Updated { previous: 2.0 }]
        );
        assert_eq!(m.get(4, 3), Some(5.0));
        assert_eq!(m.n_users(), 5);
        assert_eq!(m.n_items(), 4);
    }

    #[test]
    fn growth_caps_are_enforced_and_atomic() {
        let base = RatingMatrix::from_triples(2, 2, vec![(0, 0, 2.0)], RatingScale::one_to_five())
            .unwrap();
        let growth = GrowthPolicy::Grow {
            max_users: 4,
            max_items: 3,
        };
        let mut m = base.clone();
        assert_eq!(
            m.upsert_batch_under(&[(1, 1, 3.0), (4, 0, 3.0)], growth)
                .unwrap_err(),
            GfError::GrowthExhausted {
                axis: "user",
                id: 4,
                max: 4
            }
        );
        assert_eq!(
            m.upsert_batch_under(&[(0, 3, 3.0)], growth).unwrap_err(),
            GfError::GrowthExhausted {
                axis: "item",
                id: 3,
                max: 3
            }
        );
        // Failed batches leave the matrix untouched, even mid-growth.
        assert_eq!(m, base);
        // Fixed policy keeps the historical errors.
        assert!(matches!(
            m.upsert_batch_under(&[(5, 0, 3.0)], GrowthPolicy::Fixed),
            Err(GfError::UserOutOfRange { .. })
        ));
    }

    #[test]
    fn builder_grows_under_policy() {
        let mut b =
            MatrixBuilder::new(2, 2, RatingScale::one_to_five()).with_growth(GrowthPolicy::Grow {
                max_users: 10,
                max_items: 10,
            });
        b.push(0, 0, 2.0).unwrap();
        b.push(7, 4, 5.0).unwrap();
        assert_eq!((b.n_users(), b.n_items()), (8, 5));
        assert!(matches!(
            b.push(10, 0, 3.0),
            Err(GfError::GrowthExhausted { axis: "user", .. })
        ));
        let m = b.build().unwrap();
        assert_eq!((m.n_users(), m.n_items()), (8, 5));
        assert_eq!(m.get(7, 4), Some(5.0));
        assert_eq!(m.degree(3), 0);
    }

    #[test]
    fn builder_push_is_atomic_under_growth() {
        let mut b =
            MatrixBuilder::new(2, 2, RatingScale::one_to_five()).with_growth(GrowthPolicy::Grow {
                max_users: 100,
                max_items: 3,
            });
        // A rejected score must not leave grown dimensions behind.
        assert!(matches!(
            b.push(50, 0, f64::NAN),
            Err(GfError::NonFiniteScore { .. })
        ));
        assert_eq!((b.n_users(), b.n_items()), (2, 2));
        // Neither must a push that fails on the *other* axis.
        assert!(matches!(
            b.push(60, 99, 3.0),
            Err(GfError::GrowthExhausted { axis: "item", .. })
        ));
        assert_eq!((b.n_users(), b.n_items()), (2, 2));
        b.push(0, 0, 3.0).unwrap();
        assert_eq!(b.build().unwrap().n_users(), 2);
    }

    #[test]
    fn submatrix_reindexes() {
        let m = example1();
        // Keep users u2, u6 (indices 1, 5) and items i3, i1 (indices 2, 0).
        let s = m.submatrix(&[1, 5], &[2, 0]).unwrap();
        assert_eq!(s.n_users(), 2);
        assert_eq!(s.n_items(), 2);
        // New user 0 = old u2: i3 -> new item 0 (5.0), i1 -> new item 1 (2.0).
        assert_eq!(s.get(0, 0), Some(5.0));
        assert_eq!(s.get(0, 1), Some(2.0));
        assert_eq!(s.get(1, 0), Some(5.0));
        assert_eq!(s.get(1, 1), Some(1.0));
    }

    #[test]
    fn submatrix_rejects_bad_selections() {
        let m = example1();
        assert!(m.submatrix(&[0, 0], &[0]).is_err());
        assert!(m.submatrix(&[0], &[0, 0]).is_err());
        assert!(m.submatrix(&[99], &[0]).is_err());
        assert!(m.submatrix(&[0], &[99]).is_err());
    }
}
