//! Thread-count resolution shared by every parallel hot path.
//!
//! Every thread knob in the workspace (`FormationConfig::with_threads`,
//! `BaselineFormer::with_threads`, `complete_matrix_threaded`, …) follows
//! one convention, implemented once here:
//!
//! * `0` means **auto**: use [`std::thread::available_parallelism`]
//!   (falling back to 1 if the platform cannot report it);
//! * any other value is taken literally;
//! * the result is always clamped to `1..=max_useful`, where `max_useful`
//!   is the number of independent work units (rows, users, shards) — there
//!   is never a point in spawning more workers than work.

use std::ops::Range;

/// Resolves a thread-count knob into an actual worker count.
///
/// `requested == 0` selects auto mode (`available_parallelism`); the result
/// is clamped into `1..=max_useful.max(1)`.
///
/// ```
/// use gf_core::resolve_threads;
/// assert_eq!(resolve_threads(4, 100), 4);
/// assert_eq!(resolve_threads(4, 2), 2); // never more workers than work
/// assert_eq!(resolve_threads(7, 0), 1); // always at least one
/// assert!(resolve_threads(0, 1_000) >= 1); // auto
/// ```
pub fn resolve_threads(requested: usize, max_useful: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    t.clamp(1, max_useful.max(1))
}

/// Splits `0..n` into `parts` contiguous ranges whose lengths differ by at
/// most one, in ascending order. With `parts > n` the trailing ranges are
/// empty; callers that cannot tolerate empty ranges should clamp `parts`
/// via [`resolve_threads`] first.
pub fn even_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    (0..parts)
        .map(|t| (n * t / parts)..(n * (t + 1) / parts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_are_clamped_to_work() {
        assert_eq!(resolve_threads(1, 10), 1);
        assert_eq!(resolve_threads(16, 3), 3);
        assert_eq!(resolve_threads(16, 0), 1);
        assert_eq!(resolve_threads(2, 1), 1);
    }

    #[test]
    fn zero_is_auto_and_at_least_one() {
        let t = resolve_threads(0, usize::MAX);
        assert!(t >= 1);
        assert_eq!(resolve_threads(0, 1), 1);
    }

    #[test]
    fn ranges_cover_exactly_once_in_order() {
        for n in [0usize, 1, 2, 7, 17, 100] {
            for parts in [1usize, 2, 3, 7, 16] {
                let ranges = even_ranges(n, parts);
                assert_eq!(ranges.len(), parts);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                let (min, max) = ranges.iter().fold((usize::MAX, 0), |(lo, hi), r| {
                    (lo.min(r.len()), hi.max(r.len()))
                });
                assert!(max - min <= 1, "n={n} parts={parts}: {min}..{max}");
            }
        }
    }
}
