//! Discounted cumulative gain and NDCG-based user satisfaction.
//!
//! Section 6 of the paper ("weights at the user level") proposes measuring
//! how satisfied an *individual* is with a recommended list via NDCG over a
//! graded relevance scale, then feeding those per-user satisfactions into
//! any group semantics. The user-study simulator (`gf-eval`) also uses this
//! to model a worker's 1–5 rating of their assigned group.

use crate::matrix::RatingMatrix;
use crate::prefs::PrefIndex;

/// Discounted cumulative gain of a list of relevance scores (position 1
/// first): `Σ_p rel_p / log2(p + 1)`.
pub fn dcg(relevances: &[f64]) -> f64 {
    relevances
        .iter()
        .enumerate()
        .map(|(idx, &rel)| rel / ((idx as f64 + 2.0).log2()))
        .sum()
}

/// Normalized DCG: `dcg(actual) / dcg(ideal)`, where `ideal` is the same
/// multiset of any available relevances sorted descending. Returns 1.0 when
/// the ideal DCG is 0 (nothing to gain — vacuously satisfied).
pub fn ndcg(actual: &[f64], ideal: &[f64]) -> f64 {
    let denom = dcg(ideal);
    if denom <= 0.0 {
        return 1.0;
    }
    (dcg(actual) / denom).clamp(0.0, 1.0)
}

/// How satisfied user `u` is with a recommended item list, in `[0, 1]`:
/// the DCG of `u`'s own ratings of the recommended items (unrated items
/// gain `r_min`) over the DCG of `u`'s personal ideal top-`k`.
///
/// Equals 1 exactly when the recommended list matches the user's personal
/// top-`k` by score profile — the paper's observation that all users in the
/// first `ℓ-1` greedy groups are "fully satisfied".
pub fn user_satisfaction(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    u: u32,
    recommended: &[u32],
    k: usize,
) -> f64 {
    let take = k.min(recommended.len());
    let r_min = matrix.scale().min();
    let actual: Vec<f64> = recommended[..take]
        .iter()
        .map(|&i| matrix.get(u, i).unwrap_or(r_min))
        .collect();
    let (_, ideal_scores) = prefs.top_k(u, k);
    let mut ideal: Vec<f64> = ideal_scores.to_vec();
    // If the user rated fewer than k items, the ideal list pads with r_min,
    // mirroring how recommendations treat unrated items.
    while ideal.len() < take {
        ideal.push(r_min);
    }
    ndcg(&actual, &ideal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RatingScale;

    #[test]
    fn dcg_discounts_by_position() {
        // DCG((3, 2)) = 3/log2(2) + 2/log2(3) = 3 + 2/1.585 = 4.2618…
        let v = dcg(&[3.0, 2.0]);
        assert!((v - (3.0 + 2.0 / 3f64.log2())).abs() < 1e-12);
    }

    #[test]
    fn dcg_of_empty_is_zero() {
        assert_eq!(dcg(&[]), 0.0);
    }

    #[test]
    fn ndcg_is_one_for_ideal_order() {
        assert!((ndcg(&[5.0, 3.0, 1.0], &[5.0, 3.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_wrong_order() {
        let v = ndcg(&[1.0, 3.0, 5.0], &[5.0, 3.0, 1.0]);
        assert!(v < 1.0);
        assert!(v > 0.0);
    }

    #[test]
    fn ndcg_handles_zero_ideal() {
        assert_eq!(ndcg(&[0.0], &[0.0]), 1.0);
    }

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[&[1.0, 4.0, 3.0][..], &[2.0, 3.0, 5.0], &[2.0, 5.0, 1.0]],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn satisfied_user_scores_one() {
        let (m, p) = example1();
        // u1's personal top-2 is (i2, i3).
        assert!((user_satisfaction(&m, &p, 0, &[1, 2], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equal_scores_count_as_fully_satisfied() {
        let (m, p) = example1();
        // u3 rates i1 = 2, i3 = 1: recommending (i1, i3) instead of the
        // ideal (i2, i1) is strictly worse; recommending (i2, i1) is ideal.
        let worse = user_satisfaction(&m, &p, 2, &[0, 2], 2);
        let ideal = user_satisfaction(&m, &p, 2, &[1, 0], 2);
        assert!(worse < ideal);
        assert!((ideal - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrated_recommendations_gain_r_min() {
        let m = RatingMatrix::from_triples(1, 4, vec![(0, 0, 5.0)], RatingScale::one_to_five())
            .unwrap();
        let p = PrefIndex::build(&m);
        // Recommending two items the user never rated: gains r_min each,
        // ideal is (5, r_min) -> satisfaction strictly below 1.
        let s = user_satisfaction(&m, &p, 0, &[1, 2], 2);
        assert!(s < 1.0);
        // Recommending the rated best plus one unrated matches the ideal.
        let s = user_satisfaction(&m, &p, 0, &[0, 3], 2);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn satisfaction_monotone_in_list_quality() {
        let (m, p) = example1();
        // For u2 (ratings 2, 3, 5): ideal (i3, i2); flipping positions or
        // substituting the worst item only lowers satisfaction.
        let best = user_satisfaction(&m, &p, 1, &[2, 1], 2);
        let flip = user_satisfaction(&m, &p, 1, &[1, 2], 2);
        let worst = user_satisfaction(&m, &p, 1, &[0, 1], 2);
        assert!(best > flip);
        assert!(flip > worst);
    }
}
