//! Position weight schemes for Weighted Sum aggregation (Section 6).
//!
//! The paper's "weights at the item list level" extension assigns each of
//! the top-`k` positions a weight "inversely proportional to the position or
//! its logarithm", so that top items count more than bottom ones. Plain Sum
//! aggregation is the uniform special case.

use std::fmt;

/// How much each of the `k` list positions contributes to a weighted sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WeightScheme {
    /// All positions weigh 1 — identical to plain Sum aggregation.
    Uniform,
    /// Position `p` (1-based) weighs `1 / p`.
    InversePosition,
    /// Position `p` (1-based) weighs `1 / log2(p + 1)` — the DCG discount.
    InverseLog2,
}

impl WeightScheme {
    /// The weight of 1-based position `p >= 1`.
    #[inline]
    pub fn weight(self, p: usize) -> f64 {
        debug_assert!(p >= 1, "positions are 1-based");
        match self {
            WeightScheme::Uniform => 1.0,
            WeightScheme::InversePosition => 1.0 / p as f64,
            WeightScheme::InverseLog2 => 1.0 / ((p as f64) + 1.0).log2(),
        }
    }

    /// The weights of positions `1..=k`.
    pub fn weights(self, k: usize) -> Vec<f64> {
        (1..=k).map(|p| self.weight(p)).collect()
    }

    /// Weighted sum of `scores`, where `scores[0]` is position 1.
    pub fn weighted_sum(self, scores: &[f64]) -> f64 {
        scores
            .iter()
            .enumerate()
            .map(|(idx, &s)| self.weight(idx + 1) * s)
            .sum()
    }

    /// All schemes, for sweeps.
    pub fn all() -> [WeightScheme; 3] {
        [
            WeightScheme::Uniform,
            WeightScheme::InversePosition,
            WeightScheme::InverseLog2,
        ]
    }
}

impl fmt::Display for WeightScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightScheme::Uniform => f.write_str("uniform"),
            WeightScheme::InversePosition => f.write_str("1/pos"),
            WeightScheme::InverseLog2 => f.write_str("1/log2(pos+1)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_plain_sum() {
        let s = [5.0, 3.0, 1.0];
        assert_eq!(WeightScheme::Uniform.weighted_sum(&s), 9.0);
    }

    #[test]
    fn inverse_position_weights() {
        let w = WeightScheme::InversePosition.weights(3);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn log2_is_the_dcg_discount() {
        let w = WeightScheme::InverseLog2.weights(2);
        assert!((w[0] - 1.0).abs() < 1e-12); // 1/log2(2) = 1
        assert!((w[1] - 1.0 / 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn weights_are_non_increasing() {
        for scheme in WeightScheme::all() {
            let w = scheme.weights(10);
            for pair in w.windows(2) {
                assert!(pair[0] >= pair[1] - 1e-12, "{scheme}: {w:?}");
            }
        }
    }

    #[test]
    fn weighted_sum_of_empty_is_zero() {
        for scheme in WeightScheme::all() {
            assert_eq!(scheme.weighted_sum(&[]), 0.0);
        }
    }
}
