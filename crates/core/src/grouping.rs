//! Groups and groupings (the output of group formation).

use crate::error::{GfError, Result};

/// One formed group: its members, the top-`k` item list recommended to it,
/// and its satisfaction with that list.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Group {
    /// Member user indices, sorted ascending.
    pub members: Vec<u32>,
    /// The recommended top-`k` list: `(item, group score)` pairs, best first.
    /// Scores follow the semantics the group was formed under.
    pub top_k: Vec<(u32, f64)>,
    /// The group's satisfaction `gs(I_g^k)` under the configured
    /// aggregation function.
    pub satisfaction: f64,
}

impl Group {
    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The recommended items without their scores, best first.
    pub fn items(&self) -> impl Iterator<Item = u32> + '_ {
        self.top_k.iter().map(|&(i, _)| i)
    }
}

/// A complete grouping: at most `ell` disjoint groups covering all users.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grouping {
    /// The groups, in the order the algorithm formed them.
    pub groups: Vec<Group>,
}

impl Grouping {
    /// Creates a grouping from groups.
    pub fn new(groups: Vec<Group>) -> Self {
        Grouping { groups }
    }

    /// Number of groups.
    #[inline]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Sum of group satisfactions — the objective `Obj` of Section 2.4.
    pub fn objective(&self) -> f64 {
        self.groups.iter().map(|g| g.satisfaction).sum()
    }

    /// Sizes of the groups, in formation order.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(Group::len).collect()
    }

    /// Total number of users across all groups.
    pub fn n_assigned(&self) -> usize {
        self.groups.iter().map(Group::len).sum()
    }

    /// The group index each user belongs to; `None` where unassigned.
    pub fn assignment(&self, n_users: u32) -> Vec<Option<usize>> {
        let mut assign = vec![None; n_users as usize];
        for (gi, g) in self.groups.iter().enumerate() {
            for &u in &g.members {
                if (u as usize) < assign.len() {
                    assign[u as usize] = Some(gi);
                }
            }
        }
        assign
    }

    /// Validates the Section-2.4 constraints: at most `ell` non-empty,
    /// pairwise-disjoint groups that together cover all `n_users` users.
    pub fn validate(&self, n_users: u32, ell: usize) -> Result<()> {
        if self.groups.len() > ell {
            return Err(GfError::InvalidGrouping(format!(
                "{} groups formed but at most {ell} allowed",
                self.groups.len()
            )));
        }
        let mut seen = vec![false; n_users as usize];
        for (gi, g) in self.groups.iter().enumerate() {
            if g.is_empty() {
                return Err(GfError::InvalidGrouping(format!("group {gi} is empty")));
            }
            for &u in &g.members {
                if u >= n_users {
                    return Err(GfError::UserOutOfRange { user: u, n_users });
                }
                if seen[u as usize] {
                    return Err(GfError::InvalidGrouping(format!(
                        "user {u} appears in more than one group"
                    )));
                }
                seen[u as usize] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(GfError::InvalidGrouping(format!(
                "user {missing} is not assigned to any group"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(members: &[u32], sat: f64) -> Group {
        Group {
            members: members.to_vec(),
            top_k: vec![],
            satisfaction: sat,
        }
    }

    #[test]
    fn objective_sums_satisfactions() {
        let g = Grouping::new(vec![group(&[0, 1], 5.0), group(&[2], 3.0)]);
        assert_eq!(g.objective(), 8.0);
        assert_eq!(g.sizes(), vec![2, 1]);
        assert_eq!(g.n_assigned(), 3);
    }

    #[test]
    fn validate_accepts_partition() {
        let g = Grouping::new(vec![group(&[0, 2], 1.0), group(&[1], 1.0)]);
        assert!(g.validate(3, 2).is_ok());
        assert!(g.validate(3, 5).is_ok());
    }

    #[test]
    fn validate_rejects_overlap() {
        let g = Grouping::new(vec![group(&[0, 1], 1.0), group(&[1], 1.0)]);
        let err = g.validate(2, 2).unwrap_err();
        assert!(matches!(err, GfError::InvalidGrouping(_)));
    }

    #[test]
    fn validate_rejects_uncovered_user() {
        let g = Grouping::new(vec![group(&[0], 1.0)]);
        assert!(g.validate(2, 2).is_err());
    }

    #[test]
    fn validate_rejects_too_many_groups() {
        let g = Grouping::new(vec![group(&[0], 1.0), group(&[1], 1.0)]);
        assert!(g.validate(2, 1).is_err());
    }

    #[test]
    fn validate_rejects_empty_group_and_bad_user() {
        let g = Grouping::new(vec![group(&[], 0.0)]);
        assert!(g.validate(1, 1).is_err());
        let g = Grouping::new(vec![group(&[7], 0.0)]);
        assert!(matches!(
            g.validate(2, 1).unwrap_err(),
            GfError::UserOutOfRange { .. }
        ));
    }

    #[test]
    fn assignment_maps_users() {
        let g = Grouping::new(vec![group(&[0, 2], 1.0), group(&[1], 1.0)]);
        assert_eq!(g.assignment(4), vec![Some(0), Some(1), Some(0), None]);
    }
}
