//! A small, fast, non-cryptographic hasher for integer-heavy keys.
//!
//! The group formation algorithms hash millions of short integer sequences
//! (top-`k` item ids plus rating bit patterns). SipHash — the standard
//! library default — is a poor fit for such keys, so we bundle the same
//! multiply-rotate scheme used by `rustc` (the `rustc-hash`/Fx algorithm)
//! rather than pulling in an extra dependency. HashDoS resistance is
//! irrelevant here: keys are derived from local rating data, not from
//! untrusted network input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// The Fx multiply-rotate hasher. Fast on short integer keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail. This is only used for
        // non-integer keys, which are rare in this workspace.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&(1u32, 2u32, 3u64)), hash_of(&(1u32, 2u32, 3u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
    }

    #[test]
    fn byte_tail_lengths_differ() {
        // Same prefix, different tails must not collide trivially.
        assert_ne!(
            hash_of(&b"abcdefghi".as_slice()),
            hash_of(&b"abcdefgh".as_slice())
        );
        assert_ne!(hash_of(&b"a".as_slice()), hash_of(&b"".as_slice()));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(vec![i, i + 1], i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&vec![17, 18]], 17);
    }

    #[test]
    fn distribution_smoke() {
        // Not a statistical test, just a sanity check that low bits vary.
        let mut buckets = [0usize; 16];
        for i in 0..4096u64 {
            buckets[(hash_of(&i) & 0xf) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 64, "suspiciously empty bucket: {buckets:?}");
        }
    }
}
