//! # gf-core — recommendation-aware group formation
//!
//! Core data model and algorithms reproducing *"From Group Recommendations to
//! Group Formation"* (Roy, Lakshmanan, Liu — SIGMOD 2015, arXiv:1503.03753).
//!
//! Given `n` users with explicit ratings over `m` items, a group
//! recommendation semantics ([`Semantics::LeastMisery`] or
//! [`Semantics::AggregateVoting`]), an aggregation function over the
//! recommended top-`k` list ([`Aggregation`]) and a budget of `ell` groups,
//! the *group formation* problem asks for a partition of the users into at
//! most `ell` disjoint groups maximizing the total satisfaction of the groups
//! with their own recommended top-`k` item lists. The problem is NP-hard
//! under both semantics (paper, Theorem 1).
//!
//! This crate provides:
//!
//! * the sparse [`RatingMatrix`] data model and per-user [`PrefIndex`],
//! * the group recommendation engine ([`GroupRecommender`]) that computes a
//!   group's top-`k` list and satisfaction under either semantics,
//! * the paper's greedy algorithms ([`GreedyFormer`]): `GRD-LM-MIN`,
//!   `GRD-LM-MAX`, `GRD-LM-SUM`, `GRD-AV-MIN`, `GRD-AV-MAX`, `GRD-AV-SUM`,
//! * evaluation metrics (objective value, average group satisfaction, NDCG),
//! * the Section-6 extensions (weighted sum aggregation, NDCG-weighted
//!   user-level satisfaction),
//! * serve-time quality primitives: the candidate-item engine
//!   ([`CandidateEngine`] — items no group member has rated) and the
//!   online consumption window ([`OnlineEval`] — per-group
//!   precision/recall/NDCG from observed feedback).
//!
//! ## Quickstart
//!
//! ```
//! use gf_core::{
//!     Aggregation, FormationConfig, GreedyFormer, GroupFormer, PrefIndex,
//!     RatingMatrix, RatingScale, Semantics,
//! };
//!
//! // Example 1 from the paper: 6 users, 3 items, ratings on a 1..5 scale.
//! let matrix = RatingMatrix::from_dense(
//!     &[
//!         // i1, i2, i3  (rows = users)
//!         &[1.0, 4.0, 3.0][..],
//!         &[2.0, 3.0, 5.0],
//!         &[2.0, 5.0, 1.0],
//!         &[2.0, 5.0, 1.0],
//!         &[3.0, 1.0, 1.0],
//!         &[1.0, 2.0, 5.0],
//!     ],
//!     RatingScale::one_to_five(),
//! )
//! .unwrap();
//! let prefs = PrefIndex::build(&matrix);
//! let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
//! let result = GreedyFormer::new().form(&matrix, &prefs, &cfg).unwrap();
//! // The paper reports an objective value of 11 for GRD-LM-MIN with k = 1.
//! assert_eq!(result.objective.round() as i64, 11);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod alg;
pub mod candidates;
pub mod error;
pub mod fxhash;
pub mod grouping;
pub mod grouprec;
pub mod ids;
pub mod matrix;
pub mod metrics;
pub mod ndcg;
pub mod online;
pub mod prefs;
pub mod scale;
pub mod semantics;
pub mod threads;
pub mod userweight;
pub mod weights;

pub use aggregate::Aggregation;
pub use alg::{
    FormationConfig, FormationResult, FormerBucket, FormerState, GreedyFormer, GroupFormer,
    IncrementalFormer, RatingDelta, RefreshMode, ShardedFormer,
};
pub use candidates::{brute_force_candidates, CandidateEngine};
pub use error::{GfError, Result};
pub use fxhash::{FxHashMap, FxHashSet};
pub use grouping::{Group, Grouping};
pub use grouprec::{GroupRecommender, MissingPolicy};
pub use ids::{ItemId, UserId};
pub use matrix::{GrowthPolicy, MatrixBuilder, RatingMatrix};
pub use metrics::{avg_group_satisfaction, objective_value, recompute_objective};
pub use ndcg::{dcg, ndcg, user_satisfaction};
pub use online::{FeedbackEvent, GroupQuality, OnlineEval, QualitySummary};
pub use prefs::PrefIndex;
pub use scale::RatingScale;
pub use semantics::{AggSemantics, Semantics};
pub use threads::resolve_threads;
pub use userweight::WeightedRecommender;
pub use weights::WeightScheme;
