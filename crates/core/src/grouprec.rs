//! The group recommendation engine.
//!
//! Given a formed group, this module computes the top-`k` item list `I_g^k`
//! the group would be recommended under a [`Semantics`], together with the
//! per-item group scores `sc(g, i^j)` — i.e. it implements the "existing
//! group recommendation algorithm" the paper's group formation sits on top
//! of.
//!
//! Real rating data is sparse, so a member may not have rated a candidate
//! item; the [`MissingPolicy`] decides what score such a pair contributes.
//! The paper side-steps this by predicting missing ratings during
//! pre-processing (see `gf-recsys`); [`MissingPolicy::Min`] is the
//! pessimistic default that keeps the engine exact and fast at the paper's
//! 200,000-user scalability scale.

use crate::aggregate::Aggregation;
use crate::fxhash::FxHashMap;
use crate::matrix::RatingMatrix;
use crate::semantics::{consensus_score, Semantics};

/// Score assigned to a `(member, item)` pair the member did not rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MissingPolicy {
    /// Unrated items score `r_min` — pessimistic, and the only policy under
    /// which an item unknown to any member can never displace an item the
    /// whole group knows. Default.
    #[default]
    Min,
    /// Unrated items score the member's mean rating — a common
    /// mean-imputation heuristic.
    UserMean,
    /// Unrated pairs are skipped: the group score of an item is computed
    /// over the members who rated it only.
    Skip,
}

/// Computes group top-`k` lists and satisfaction scores.
#[derive(Debug, Clone, Copy)]
pub struct GroupRecommender<'a> {
    matrix: &'a RatingMatrix,
    semantics: Semantics,
    policy: MissingPolicy,
}

/// Per-item accumulator filled in one pass over the members' ratings.
#[derive(Clone, Copy)]
struct Acc {
    count: u32,
    min: f64,
    sum: f64,
    /// Sum of squared ratings (only used under `Consensus`).
    sum_sq: f64,
    /// Sum of the raters' mean ratings (only used under `UserMean`).
    rater_mean_sum: f64,
    /// Sum of the raters' squared mean ratings (`Consensus` + `UserMean`).
    rater_mean_sq_sum: f64,
    /// The leader's rating, if the leader rated this item
    /// (only used under `LeaderWeighted`).
    leader: Option<f64>,
}

impl Default for Acc {
    fn default() -> Self {
        Acc {
            count: 0,
            min: f64::INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
            rater_mean_sum: 0.0,
            rater_mean_sq_sum: 0.0,
            leader: None,
        }
    }
}

impl<'a> GroupRecommender<'a> {
    /// A recommender with the default [`MissingPolicy::Min`].
    pub fn new(matrix: &'a RatingMatrix, semantics: Semantics) -> Self {
        GroupRecommender {
            matrix,
            semantics,
            policy: MissingPolicy::Min,
        }
    }

    /// Overrides the missing-rating policy.
    pub fn with_policy(mut self, policy: MissingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The semantics this recommender scores under.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The missing-rating policy in effect.
    pub fn policy(&self) -> MissingPolicy {
        self.policy
    }

    /// The group score `sc(g, item)` of a single item — the reference
    /// implementation, O(|g| log d). Used as the oracle in tests and for
    /// spot queries.
    pub fn item_score(&self, members: &[u32], item: u32) -> f64 {
        if !self.semantics.is_decomposable() {
            return self.item_score_moments(members, item);
        }
        let mut acc = self.semantics.identity();
        let mut any = false;
        for &u in members {
            let s = match self.matrix.get(u, item) {
                Some(s) => Some(s),
                None => match self.policy {
                    MissingPolicy::Min => Some(self.matrix.scale().min()),
                    MissingPolicy::UserMean => Some(self.matrix.user_mean(u)),
                    MissingPolicy::Skip => None,
                },
            };
            if let Some(s) = s {
                acc = self.semantics.fold(acc, s);
                any = true;
            }
        }
        if !any {
            return self.unrated_floor(members);
        }
        acc
    }

    /// `sc(g, item)` for the moment-based semantics (Consensus,
    /// LeaderWeighted). Accumulates the raters' moments in member order —
    /// the same order and closed forms as [`GroupRecommender::top_k`], so
    /// the two paths agree bit-for-bit.
    fn item_score_moments(&self, members: &[u32], item: u32) -> f64 {
        let g = members.len();
        let leader_id = members.iter().copied().min().unwrap_or(0);
        let need_means = matches!(self.policy, MissingPolicy::UserMean);
        let mut acc = Acc::default();
        let mut mean_total = 0.0;
        let mut mean_sq_total = 0.0;
        for &u in members {
            let mean = if need_means {
                self.matrix.user_mean(u)
            } else {
                0.0
            };
            mean_total += mean;
            mean_sq_total += mean * mean;
            if let Some(s) = self.matrix.get(u, item) {
                acc.count += 1;
                acc.min = acc.min.min(s);
                acc.sum += s;
                acc.sum_sq += s * s;
                acc.rater_mean_sum += mean;
                acc.rater_mean_sq_sum += mean * mean;
                if u == leader_id {
                    acc.leader = Some(s);
                }
            }
        }
        if acc.count == 0 {
            return self.unrated_floor(members);
        }
        self.moment_score(&acc, g, leader_id, mean_total, mean_sq_total)
    }

    /// The top-`k` list `I_g^k` for a group: `(item, group score)` pairs,
    /// best first, ties broken by ascending item id.
    ///
    /// Runs in O(Σ_u d_u + C log C) where C is the size of the union of the
    /// members' rated items (plus an O(|g| log d)-per-item fallback for the
    /// rare `LM + UserMean` combination).
    pub fn top_k(&self, members: &[u32], k: usize) -> Vec<(u32, f64)> {
        if members.is_empty() || k == 0 {
            return Vec::new();
        }
        let g = members.len();
        let leader_id = members.iter().copied().min().unwrap_or(0);
        let mut accs: FxHashMap<u32, Acc> = FxHashMap::default();
        let need_means = matches!(self.policy, MissingPolicy::UserMean);
        let mut mean_total = 0.0;
        let mut mean_sq_total = 0.0;
        for &u in members {
            let mean = if need_means {
                self.matrix.user_mean(u)
            } else {
                0.0
            };
            mean_total += mean;
            mean_sq_total += mean * mean;
            for (i, s) in self.matrix.user_ratings(u) {
                let a = accs.entry(i).or_default();
                a.count += 1;
                a.min = a.min.min(s);
                a.sum += s;
                a.sum_sq += s * s;
                a.rater_mean_sum += mean;
                a.rater_mean_sq_sum += mean * mean;
                if u == leader_id {
                    a.leader = Some(s);
                }
            }
        }
        // Members sorted by ascending mean, for the LM + UserMean fallback.
        let mean_order: Vec<u32> = if need_means && matches!(self.semantics, Semantics::LeastMisery)
        {
            let mut order: Vec<u32> = members.to_vec();
            order.sort_by(|&a, &b| {
                self.matrix
                    .user_mean(a)
                    .total_cmp(&self.matrix.user_mean(b))
                    .then(a.cmp(&b))
            });
            order
        } else {
            Vec::new()
        };

        let r_min = self.matrix.scale().min();
        let mut scored: Vec<(u32, f64)> = Vec::with_capacity(accs.len());
        for (&item, acc) in &accs {
            let score = match (self.semantics, self.policy) {
                (Semantics::LeastMisery, MissingPolicy::Min) => {
                    if acc.count as usize == g {
                        acc.min
                    } else {
                        r_min
                    }
                }
                (Semantics::LeastMisery, MissingPolicy::Skip) => acc.min,
                (Semantics::LeastMisery, MissingPolicy::UserMean) => {
                    if acc.count as usize == g {
                        acc.min
                    } else {
                        acc.min.min(self.first_missing_mean(&mean_order, item))
                    }
                }
                (Semantics::AggregateVoting, MissingPolicy::Min) => {
                    acc.sum + (g - acc.count as usize) as f64 * r_min
                }
                (Semantics::AggregateVoting, MissingPolicy::UserMean) => {
                    acc.sum + (mean_total - acc.rater_mean_sum)
                }
                (Semantics::AggregateVoting, MissingPolicy::Skip) => acc.sum,
                (Semantics::Consensus { .. } | Semantics::LeaderWeighted, _) => {
                    self.moment_score(acc, g, leader_id, mean_total, mean_sq_total)
                }
            };
            scored.push((item, score));
        }
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);

        // Items no member rated score the policy floor. They belong in the
        // list whenever fewer than k union items exist, when they tie the
        // k-th candidate with a smaller id, or (for exotic scales) when the
        // floor exceeds a candidate score — so merge the candidate stream
        // with an ascending-id floor stream unless the k-th candidate
        // strictly beats the floor.
        let floor = self.unrated_floor(members);
        let merge_needed = (accs.len() as u32) < self.matrix.n_items()
            && (scored.len() < k || scored.last().is_none_or(|&(_, s)| s <= floor));
        if merge_needed {
            let mut result: Vec<(u32, f64)> = Vec::with_capacity(k);
            let mut cand = scored.into_iter().peekable();
            let mut next_floor = 0u32;
            while result.len() < k {
                // Advance to the next item id with no ratings from the group.
                while next_floor < self.matrix.n_items() && accs.contains_key(&next_floor) {
                    next_floor += 1;
                }
                let take_candidate = match cand.peek() {
                    Some(&(ci, cs)) => {
                        if next_floor >= self.matrix.n_items() {
                            true
                        } else {
                            // (score desc, id asc) ordering.
                            cs > floor || (cs == floor && ci < next_floor)
                        }
                    }
                    None => false,
                };
                if take_candidate {
                    result.push(cand.next().unwrap());
                } else if next_floor < self.matrix.n_items() {
                    result.push((next_floor, floor));
                    next_floor += 1;
                } else {
                    break; // fewer than k items exist in total
                }
            }
            return result;
        }
        scored
    }

    /// The group's satisfaction `gs(I_g^k)` with its own top-`k` list.
    pub fn satisfaction(&self, members: &[u32], k: usize, agg: Aggregation) -> f64 {
        let top = self.top_k(members, k);
        let scores: Vec<f64> = top.iter().map(|&(_, s)| s).collect();
        agg.apply(&scores)
    }

    /// The group score of an item with at least one rater under the
    /// moment-based semantics (Consensus, LeaderWeighted). One closed form
    /// per `(semantics, policy)` pair; both [`GroupRecommender::top_k`] and
    /// the [`GroupRecommender::item_score`] oracle fill `acc` in member
    /// order and land here, so the two agree bit-for-bit.
    fn moment_score(
        &self,
        acc: &Acc,
        g: usize,
        leader_id: u32,
        mean_total: f64,
        mean_sq_total: f64,
    ) -> f64 {
        let r_min = self.matrix.scale().min();
        let count = acc.count as usize;
        match (self.semantics, self.policy) {
            // Non-raters impute r_min: moments over all g members.
            (Semantics::Consensus { lambda }, MissingPolicy::Min) => {
                let miss = (g - count) as f64;
                consensus_score(
                    lambda,
                    g as f64,
                    acc.sum + miss * r_min,
                    acc.sum_sq + miss * r_min * r_min,
                )
            }
            // Non-raters impute their own mean rating.
            (Semantics::Consensus { lambda }, MissingPolicy::UserMean) => consensus_score(
                lambda,
                g as f64,
                acc.sum + (mean_total - acc.rater_mean_sum),
                acc.sum_sq + (mean_sq_total - acc.rater_mean_sq_sum),
            ),
            // Consensus over the raters only.
            (Semantics::Consensus { lambda }, MissingPolicy::Skip) => {
                consensus_score(lambda, count as f64, acc.sum, acc.sum_sq)
            }
            (Semantics::LeaderWeighted, MissingPolicy::Min) => {
                let s_l = acc.leader.unwrap_or(r_min);
                let base = acc.sum + (g - count) as f64 * r_min;
                (base + s_l) / (g as f64 + 1.0)
            }
            (Semantics::LeaderWeighted, MissingPolicy::UserMean) => {
                let s_l = acc
                    .leader
                    .unwrap_or_else(|| self.matrix.user_mean(leader_id));
                let base = acc.sum + (mean_total - acc.rater_mean_sum);
                (base + s_l) / (g as f64 + 1.0)
            }
            // The leader's extra vote only exists if the leader rated.
            (Semantics::LeaderWeighted, MissingPolicy::Skip) => match acc.leader {
                Some(s_l) => (acc.sum + s_l) / (count as f64 + 1.0),
                None => acc.sum / count as f64,
            },
            (Semantics::LeastMisery | Semantics::AggregateVoting, _) => {
                unreachable!("moment_score is only called for moment-based semantics")
            }
        }
    }

    /// Score of an item no member rated, under the active policy.
    fn unrated_floor(&self, members: &[u32]) -> f64 {
        let r_min = self.matrix.scale().min();
        match (self.semantics, self.policy) {
            (Semantics::LeastMisery, MissingPolicy::Min | MissingPolicy::Skip) => r_min,
            (Semantics::LeastMisery, MissingPolicy::UserMean) => members
                .iter()
                .map(|&u| self.matrix.user_mean(u))
                .fold(f64::INFINITY, f64::min),
            (Semantics::AggregateVoting, MissingPolicy::Skip) => 0.0,
            (Semantics::AggregateVoting, MissingPolicy::Min) => members.len() as f64 * r_min,
            (Semantics::AggregateVoting, MissingPolicy::UserMean) => {
                members.iter().map(|&u| self.matrix.user_mean(u)).sum()
            }
            // All members at r_min: mean = r_min, disagreement = 0. Zero
            // raters under Skip take the same pessimistic convention.
            (Semantics::Consensus { .. }, MissingPolicy::Min | MissingPolicy::Skip) => r_min,
            (Semantics::Consensus { lambda }, MissingPolicy::UserMean) => {
                if members.is_empty() {
                    return r_min;
                }
                let mut sum = 0.0;
                let mut sum_sq = 0.0;
                for &u in members {
                    let mean = self.matrix.user_mean(u);
                    sum += mean;
                    sum_sq += mean * mean;
                }
                consensus_score(lambda, members.len() as f64, sum, sum_sq)
            }
            // A weighted average of scores all at r_min is r_min.
            (Semantics::LeaderWeighted, MissingPolicy::Min | MissingPolicy::Skip) => r_min,
            (Semantics::LeaderWeighted, MissingPolicy::UserMean) => {
                let Some(leader_id) = members.iter().copied().min() else {
                    return r_min;
                };
                let sum: f64 = members.iter().map(|&u| self.matrix.user_mean(u)).sum();
                (sum + self.matrix.user_mean(leader_id)) / (members.len() as f64 + 1.0)
            }
        }
    }

    /// Smallest mean among members who did *not* rate `item`. `mean_order`
    /// is sorted by ascending mean, so the first non-rater wins; most users
    /// miss most items, so this usually terminates on the first probe.
    fn first_missing_mean(&self, mean_order: &[u32], item: u32) -> f64 {
        for &u in mean_order {
            if self.matrix.get(u, item).is_none() {
                return self.matrix.user_mean(u);
            }
        }
        f64::INFINITY // unreachable when count < g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RatingScale;

    fn dense(rows: &[&[f64]]) -> RatingMatrix {
        RatingMatrix::from_dense(rows, RatingScale::one_to_five()).unwrap()
    }

    #[test]
    fn example3_lm_top2() {
        // Example 3: u1 = (5,4,1), u2 = (1,4,5). Under LM the group scores
        // are i1 -> 1, i2 -> 4, i3 -> 1, so the top-2 list is (i2; i1) with
        // the tie at 1 broken by item id, and the bottom score is 1.
        let m = dense(&[&[5.0, 4.0, 1.0], &[1.0, 4.0, 5.0]]);
        let rec = GroupRecommender::new(&m, Semantics::LeastMisery);
        let top = rec.top_k(&[0, 1], 2);
        assert_eq!(top, vec![(1, 4.0), (0, 1.0)]);
        assert_eq!(rec.satisfaction(&[0, 1], 2, Aggregation::Min), 1.0);
    }

    #[test]
    fn example4_av_group_scores() {
        // Example 4: u1 = (5,4), u2 = u3 = (4,5), u4 = (3,2), k = 2.
        let m = dense(&[&[5.0, 4.0], &[4.0, 5.0], &[4.0, 5.0], &[3.0, 2.0]]);
        let rec = GroupRecommender::new(&m, Semantics::AggregateVoting);
        // Group {u1,u2,u3}: i1 -> 13, i2 -> 14, so top-2 = (i2; i1).
        let top = rec.top_k(&[0, 1, 2], 2);
        assert_eq!(top, vec![(1, 14.0), (0, 13.0)]);
        // Min aggregation scores the bottom item: 13; singleton {u4}: 2.
        assert_eq!(rec.satisfaction(&[0, 1, 2], 2, Aggregation::Min), 13.0);
        assert_eq!(rec.satisfaction(&[3], 2, Aggregation::Min), 2.0);
    }

    #[test]
    fn item_score_oracle_matches_top_k() {
        let m = dense(&[&[1.0, 4.0, 3.0], &[2.0, 3.0, 5.0], &[2.0, 5.0, 1.0]]);
        for sem in Semantics::all() {
            let rec = GroupRecommender::new(&m, sem);
            let top = rec.top_k(&[0, 1, 2], 3);
            for (item, score) in top {
                assert_eq!(rec.item_score(&[0, 1, 2], item), score, "{sem} {item}");
            }
        }
    }

    #[test]
    fn empty_group_or_zero_k() {
        let m = dense(&[&[1.0, 2.0]]);
        let rec = GroupRecommender::new(&m, Semantics::LeastMisery);
        assert!(rec.top_k(&[], 2).is_empty());
        assert!(rec.top_k(&[0], 0).is_empty());
        assert_eq!(rec.satisfaction(&[], 2, Aggregation::Sum), 0.0);
    }

    fn sparse() -> RatingMatrix {
        // u0 rates i0=5, i1=3; u1 rates i1=4, i2=2; m = 4 items.
        RatingMatrix::from_triples(
            2,
            4,
            vec![(0, 0, 5.0), (0, 1, 3.0), (1, 1, 4.0), (1, 2, 2.0)],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn missing_policy_min_lm() {
        let m = sparse();
        let rec = GroupRecommender::new(&m, Semantics::LeastMisery);
        // Only i1 is rated by both: LM score min(3,4) = 3. Everything else
        // floors at r_min = 1 (ties broken by item id).
        let top = rec.top_k(&[0, 1], 3);
        assert_eq!(top, vec![(1, 3.0), (0, 1.0), (2, 1.0)]);
    }

    #[test]
    fn missing_policy_min_av() {
        let m = sparse();
        let rec = GroupRecommender::new(&m, Semantics::AggregateVoting);
        // i0: 5 + r_min = 6; i1: 3+4 = 7; i2: 2 + 1 = 3; i3 unrated: 2.
        let top = rec.top_k(&[0, 1], 4);
        assert_eq!(top, vec![(1, 7.0), (0, 6.0), (2, 3.0), (3, 2.0)]);
    }

    #[test]
    fn missing_policy_skip() {
        let m = sparse();
        let lm = GroupRecommender::new(&m, Semantics::LeastMisery).with_policy(MissingPolicy::Skip);
        // Under Skip, i0 keeps u0's 5 even though u1 never rated it.
        let top = lm.top_k(&[0, 1], 2);
        assert_eq!(top, vec![(0, 5.0), (1, 3.0)]);
        let av =
            GroupRecommender::new(&m, Semantics::AggregateVoting).with_policy(MissingPolicy::Skip);
        let top = av.top_k(&[0, 1], 4);
        assert_eq!(top, vec![(1, 7.0), (0, 5.0), (2, 2.0), (3, 0.0)]);
    }

    #[test]
    fn missing_policy_user_mean() {
        let m = sparse();
        // Means: u0 = 4.0, u1 = 3.0.
        let av = GroupRecommender::new(&m, Semantics::AggregateVoting)
            .with_policy(MissingPolicy::UserMean);
        // i0: 5 + mean(u1)=3 -> 8; i1: 7; i2: mean(u0)=4 + 2 -> 6; i3: 7.
        let top = av.top_k(&[0, 1], 4);
        assert_eq!(top, vec![(0, 8.0), (1, 7.0), (3, 7.0), (2, 6.0)]);
        let lm =
            GroupRecommender::new(&m, Semantics::LeastMisery).with_policy(MissingPolicy::UserMean);
        // i0: min(5, mean(u1)=3) = 3; i1: 3; i2: min(mean(u0)=4, 2) = 2;
        // i3: min(4, 3) = 3.
        let top = lm.top_k(&[0, 1], 4);
        assert_eq!(top, vec![(0, 3.0), (1, 3.0), (3, 3.0), (2, 2.0)]);
    }

    #[test]
    fn user_mean_oracle_agreement_on_random_small() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(2..5u32);
            let m = rng.gen_range(2..6u32);
            let mut triples = Vec::new();
            for u in 0..n {
                for i in 0..m {
                    if rng.gen_bool(0.6) {
                        triples.push((u, i, rng.gen_range(1..=5) as f64));
                    }
                }
            }
            if triples.is_empty() {
                continue;
            }
            let mat =
                RatingMatrix::from_triples(n, m, triples, RatingScale::one_to_five()).unwrap();
            let members: Vec<u32> = (0..n).collect();
            for sem in Semantics::extended(0.7) {
                for policy in [
                    MissingPolicy::Min,
                    MissingPolicy::UserMean,
                    MissingPolicy::Skip,
                ] {
                    let rec = GroupRecommender::new(&mat, sem).with_policy(policy);
                    let top = rec.top_k(&members, m as usize);
                    for &(item, score) in &top {
                        let oracle = rec.item_score(&members, item);
                        assert!(
                            (score - oracle).abs() < 1e-9,
                            "{sem:?} {policy:?} item {item}: {score} vs {oracle}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn consensus_discounts_disagreement() {
        // u1 = (5, 4), u2 = (1, 4): i0 has mean 3, std 2; i1 has mean 4,
        // std 0. Under λ = 1 consensus prefers the unanimous item by
        // 4 − 1 = 3 points even though AV ties them at 6 vs 8.
        let m = dense(&[&[5.0, 4.0], &[1.0, 4.0]]);
        let rec = GroupRecommender::new(&m, Semantics::Consensus { lambda: 1.0 });
        let top = rec.top_k(&[0, 1], 2);
        assert_eq!(top[0].0, 1);
        assert!((top[0].1 - 4.0).abs() < 1e-12);
        assert_eq!(top[1].0, 0);
        assert!((top[1].1 - 1.0).abs() < 1e-12);
        // λ = 0 is the plain average: i0 -> 3, i1 -> 4.
        let avg = GroupRecommender::new(&m, Semantics::Consensus { lambda: 0.0 });
        let top = avg.top_k(&[0, 1], 2);
        assert!((top[0].1 - 4.0).abs() < 1e-12);
        assert!((top[1].1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn leader_weighted_counts_the_lowest_id_twice() {
        // Leader u0 = (5, 1), u1 = (1, 5): i0 -> (5+1+5)/3 = 11/3,
        // i1 -> (1+5+1)/3 = 7/3 — the leader's favourite wins.
        let m = dense(&[&[5.0, 1.0], &[1.0, 5.0]]);
        let rec = GroupRecommender::new(&m, Semantics::LeaderWeighted);
        let top = rec.top_k(&[0, 1], 2);
        assert_eq!(top[0].0, 0);
        assert!((top[0].1 - 11.0 / 3.0).abs() < 1e-12);
        assert!((top[1].1 - 7.0 / 3.0).abs() < 1e-12);
        // The leader is the lowest id regardless of slice order.
        let reordered = rec.top_k(&[1, 0], 2);
        assert_eq!(top, reordered);
    }

    #[test]
    fn leader_weighted_skip_only_boosts_a_rating_leader() {
        let m = sparse(); // u0: i0=5, i1=3; u1: i1=4, i2=2
        let rec =
            GroupRecommender::new(&m, Semantics::LeaderWeighted).with_policy(MissingPolicy::Skip);
        // i0: leader u0 rated 5, sole rater -> (5+5)/2 = 5.
        assert_eq!(rec.item_score(&[0, 1], 0), 5.0);
        // i2: leader did not rate -> plain mean over raters = 2.
        assert_eq!(rec.item_score(&[0, 1], 2), 2.0);
        // i1: both rated, leader 3 -> (3+4+3)/3 = 10/3.
        assert!((rec.item_score(&[0, 1], 1) - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn moment_semantics_floor_matches_oracle() {
        let m = sparse(); // i3 has no raters; means: u0 = 4.0, u1 = 3.0
        for policy in [
            MissingPolicy::Min,
            MissingPolicy::UserMean,
            MissingPolicy::Skip,
        ] {
            for sem in [
                Semantics::Consensus { lambda: 0.5 },
                Semantics::LeaderWeighted,
            ] {
                let rec = GroupRecommender::new(&m, sem).with_policy(policy);
                let top = rec.top_k(&[0, 1], 4);
                let in_list = top.iter().find(|&&(i, _)| i == 3);
                let oracle = rec.item_score(&[0, 1], 3);
                if let Some(&(_, s)) = in_list {
                    assert_eq!(s, oracle, "{sem:?} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn fill_is_deterministic_and_ordered() {
        // A single user who rated one item; ask for more than they rated.
        let m = RatingMatrix::from_triples(1, 5, vec![(0, 3, 4.0)], RatingScale::one_to_five())
            .unwrap();
        let rec = GroupRecommender::new(&m, Semantics::LeastMisery);
        let top = rec.top_k(&[0], 4);
        assert_eq!(top, vec![(3, 4.0), (0, 1.0), (1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn k_larger_than_m_returns_all_items() {
        let m = dense(&[&[1.0, 2.0]]);
        let rec = GroupRecommender::new(&m, Semantics::LeastMisery);
        let top = rec.top_k(&[0], 10);
        assert_eq!(top.len(), 2);
    }
}
