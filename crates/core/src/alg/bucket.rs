//! Step 1 of the greedy algorithms: intermediate groups ("buckets").
//!
//! Every user is hashed by a key derived from her personal top-`k`
//! preference list; users with equal keys are *indistinguishable* to the
//! objective and form an intermediate group. What goes into the key is the
//! crux of Sections 4 and 5:
//!
//! | algorithm    | key                                             |
//! |--------------|-------------------------------------------------|
//! | `GRD-LM-MIN` | top-`k` item sequence + score of the `k`-th item |
//! | `GRD-LM-MAX` | top-`k` item sequence + score of the 1st item    |
//! | `GRD-LM-SUM` | top-`k` item sequence + all `k` scores           |
//! | `GRD-AV-*`   | top-`k` item sequence only                       |
//!
//! Each bucket maintains the per-position minimum and sum of its members'
//! scores; those are exactly the group's per-item scores under LM and AV
//! respectively (see the module docs of [`crate::alg`]), so a bucket's
//! satisfaction is read off in O(k) with no further passes over the data.

use crate::aggregate::{Aggregation, Pivot};
use crate::fxhash::FxHashMap;
use crate::grouprec::MissingPolicy;
use crate::matrix::RatingMatrix;
use crate::prefs::PrefIndex;
use crate::semantics::Semantics;
use std::cmp::Ordering;

/// Hash key identifying an intermediate group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BucketKey {
    /// The top-`k` item sequence.
    pub items: Box<[u32]>,
    /// Bit patterns of the scores included in the key (empty for AV;
    /// pivot score for LM Min/Max; all `k` scores for LM Sum).
    pub score_bits: Box<[u64]>,
}

/// An intermediate group: users indistinguishable under the current key.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// The shared top-`k` item sequence.
    pub items: Box<[u32]>,
    /// Member user ids, in insertion (ascending) order.
    pub users: Vec<u32>,
    /// Per-position minimum of member scores — the group's LM score of each
    /// item in the shared sequence.
    pub pos_min: Vec<f64>,
    /// Per-position sum of member scores — the group's AV score of each
    /// item in the shared sequence.
    pub pos_sum: Vec<f64>,
}

impl Bucket {
    /// Folds one member's personal score vector into the per-position
    /// aggregates. This is **the** accumulation every bucket builder
    /// shares — sequential and threaded Step 1, split-aware rebuilds, and
    /// the incremental former's touched-bucket recomputation — so the
    /// "bit-for-bit equal to `build_buckets`" contracts all hang off a
    /// single fold (min is order-independent; sums must run in the same
    /// member order to be bit-identical off-grid).
    pub(crate) fn accumulate_scores(&mut self, scores: &[f64]) {
        for (slot, &s) in scores.iter().enumerate() {
            self.pos_min[slot] = self.pos_min[slot].min(s);
            self.pos_sum[slot] += s;
        }
    }

    /// The group's per-item score vector under `semantics` for the shared
    /// top-`k` sequence (non-increasing by construction).
    ///
    /// For the moment-based semantics (Consensus, LeaderWeighted) the
    /// bucket key carries the full score bits ([`key_for`]), so every
    /// member's personal score at each position is identical and equals
    /// `pos_min`; a consensus over identical values has zero disagreement
    /// and a leader-weighted average of identical values is that value —
    /// both group scores collapse to `pos_min` exactly.
    pub fn score_vector(&self, semantics: Semantics) -> &[f64] {
        match semantics {
            Semantics::LeastMisery => &self.pos_min,
            Semantics::AggregateVoting => &self.pos_sum,
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => &self.pos_min,
        }
    }

    /// The bucket's group satisfaction under `semantics` + `agg`.
    pub fn satisfaction(&self, semantics: Semantics, agg: Aggregation) -> f64 {
        agg.apply(self.score_vector(semantics))
    }
}

/// A user's personal top-`k` list, padded to length `k` when the user rated
/// fewer than `k` items: unrated items are appended in ascending id order at
/// the policy's imputed score (merged so that rated items scoring exactly
/// the imputed value keep the global (score desc, id asc) order).
pub fn personal_top_k(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    policy: MissingPolicy,
    u: u32,
    k: usize,
) -> (Vec<u32>, Vec<f64>) {
    let (items, scores) = prefs.top_k(u, k);
    let m = matrix.n_items() as usize;
    let want = k.min(m);
    if items.len() >= want {
        return (items.to_vec(), scores.to_vec());
    }
    // Sparse user: merge the rated list with a floor stream of unrated ids.
    let imputed = match policy {
        MissingPolicy::Min | MissingPolicy::Skip => matrix.scale().min(),
        MissingPolicy::UserMean => matrix.user_mean(u),
    };
    let rated_all = prefs.ranked_items(u);
    let rated_scores_all = prefs.ranked_scores(u);
    let rated: crate::fxhash::FxHashSet<u32> = rated_all.iter().copied().collect();
    let mut out_items = Vec::with_capacity(want);
    let mut out_scores = Vec::with_capacity(want);
    let mut ri = 0usize;
    let mut next_floor = 0u32;
    while out_items.len() < want {
        while (next_floor as usize) < m && rated.contains(&next_floor) {
            next_floor += 1;
        }
        let take_rated = if ri < rated_all.len() {
            if (next_floor as usize) >= m {
                true
            } else {
                let (it, sc) = (rated_all[ri], rated_scores_all[ri]);
                sc > imputed || (sc == imputed && it < next_floor)
            }
        } else {
            false
        };
        if take_rated {
            out_items.push(rated_all[ri]);
            out_scores.push(rated_scores_all[ri]);
            ri += 1;
        } else if (next_floor as usize) < m {
            out_items.push(next_floor);
            out_scores.push(imputed);
            next_floor += 1;
        } else {
            break;
        }
    }
    (out_items, out_scores)
}

/// Builds the bucket key for one user under the configured semantics and
/// aggregation.
pub fn key_for(
    semantics: Semantics,
    aggregation: Aggregation,
    items: &[u32],
    scores: &[f64],
) -> BucketKey {
    let score_bits: Box<[u64]> = match semantics {
        Semantics::AggregateVoting => Box::default(),
        Semantics::LeastMisery => match aggregation.pivot(items.len().max(1)) {
            Pivot::Position(p) => {
                let p = p.min(scores.len().saturating_sub(1));
                scores
                    .get(p)
                    .map(|s| vec![s.to_bits()].into_boxed_slice())
                    .unwrap_or_default()
            }
            Pivot::All => scores.iter().map(|s| s.to_bits()).collect(),
        },
        // Moment-based semantics: bucket only users whose whole score
        // vector matches, so within a bucket every position is unanimous
        // and the group score collapses to the shared personal score
        // (zero consensus disagreement; leader-weighted mean of equals).
        Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
            scores.iter().map(|s| s.to_bits()).collect()
        }
    };
    BucketKey {
        items: items.into(),
        score_bits,
    }
}

/// Hashes one user into the bucket map.
#[allow(clippy::too_many_arguments)] // private helper mirroring build_buckets' signature plus (map, u)
fn insert_user(
    map: &mut FxHashMap<BucketKey, Bucket>,
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    semantics: Semantics,
    aggregation: Aggregation,
    policy: MissingPolicy,
    k: usize,
    u: u32,
) {
    let (items, scores) = personal_top_k(matrix, prefs, policy, u, k);
    let key = key_for(semantics, aggregation, &items, &scores);
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let b = e.get_mut();
            b.users.push(u);
            b.accumulate_scores(&scores);
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(Bucket {
                items: items.into(),
                users: vec![u],
                pos_min: scores.clone(),
                pos_sum: scores,
            });
        }
    }
}

/// Runs Step 1: hashes every user into buckets. Returns the buckets in
/// arbitrary order (callers sort or heapify with [`bucket_order`]).
pub fn build_buckets(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    semantics: Semantics,
    aggregation: Aggregation,
    policy: MissingPolicy,
    k: usize,
) -> Vec<Bucket> {
    let mut map: FxHashMap<BucketKey, Bucket> = FxHashMap::default();
    for u in 0..matrix.n_users() {
        insert_user(
            &mut map,
            matrix,
            prefs,
            semantics,
            aggregation,
            policy,
            k,
            u,
        );
    }
    map.into_values().collect()
}

/// Runs Step 1 with `n_threads` scoped worker threads (`0` = auto, see
/// [`crate::resolve_threads`]): each worker builds a private bucket map over
/// a contiguous range of user ids, and the per-shard maps are merged in
/// shard order.
///
/// The merge is exact: member lists concatenate back into ascending user
/// order (shards are contiguous and ascending), per-position minima compose
/// associatively, and per-position sums accumulate shard partials in shard
/// order. Sums are therefore bit-for-bit identical to [`build_buckets`]
/// whenever member scores sit on a rating grid (integers or half-stars —
/// any dyadic step, where f64 addition is exact at these magnitudes); the
/// one exception is [`MissingPolicy::UserMean`] padding of sparse users,
/// whose imputed means may be non-dyadic and can perturb `pos_sum` by a
/// final-bit rounding across a shard boundary. `pos_min`, membership and
/// bucket keys are identical unconditionally.
pub fn build_buckets_threaded(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    semantics: Semantics,
    aggregation: Aggregation,
    policy: MissingPolicy,
    k: usize,
    n_threads: usize,
) -> Vec<Bucket> {
    let n = matrix.n_users() as usize;
    let threads = crate::resolve_threads(n_threads, n);
    if threads <= 1 {
        return build_buckets(matrix, prefs, semantics, aggregation, policy, k);
    }
    let shard_maps: Vec<FxHashMap<BucketKey, Bucket>> = std::thread::scope(|scope| {
        let handles: Vec<_> = crate::threads::even_ranges(n, threads)
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut map: FxHashMap<BucketKey, Bucket> = FxHashMap::default();
                    for u in range {
                        insert_user(
                            &mut map,
                            matrix,
                            prefs,
                            semantics,
                            aggregation,
                            policy,
                            k,
                            u as u32,
                        );
                    }
                    map
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bucket worker panicked"))
            .collect()
    });
    merge_shard_maps(shard_maps).into_values().collect()
}

/// Merges per-shard bucket maps in shard order — the one exact merge both
/// threaded Step-1 builders share (see [`build_buckets_threaded`] for the
/// bit-for-bit contract it upholds).
fn merge_shard_maps(shard_maps: Vec<FxHashMap<BucketKey, Bucket>>) -> FxHashMap<BucketKey, Bucket> {
    let mut merged: FxHashMap<BucketKey, Bucket> = FxHashMap::default();
    for map in shard_maps {
        for (key, shard_bucket) in map {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let b = e.get_mut();
                    b.users.extend_from_slice(&shard_bucket.users);
                    for (slot, (&mn, &sm)) in shard_bucket
                        .pos_min
                        .iter()
                        .zip(shard_bucket.pos_sum.iter())
                        .enumerate()
                    {
                        b.pos_min[slot] = b.pos_min[slot].min(mn);
                        b.pos_sum[slot] += sm;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(shard_bucket);
                }
            }
        }
    }
    merged
}

/// Step-1 build that also records every user's bucket key — what a
/// standing [`IncrementalFormer`](super::IncrementalFormer) needs to keep
/// its bucket state patchable. Threaded exactly like
/// [`build_buckets_threaded`] (same sharding, same merge, same bit-for-bit
/// caveats); the sequential path (`threads <= 1`) inserts users in
/// ascending id order, matching [`build_buckets`] unconditionally.
pub fn build_bucket_map_threaded(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    semantics: Semantics,
    aggregation: Aggregation,
    policy: MissingPolicy,
    k: usize,
    n_threads: usize,
) -> (FxHashMap<BucketKey, Bucket>, Vec<BucketKey>) {
    let n = matrix.n_users() as usize;
    let threads = crate::resolve_threads(n_threads, n);
    let build_range = |range: std::ops::Range<usize>| {
        let mut map: FxHashMap<BucketKey, Bucket> = FxHashMap::default();
        let mut keys: Vec<BucketKey> = Vec::with_capacity(range.len());
        for u in range {
            let (items, scores) = personal_top_k(matrix, prefs, policy, u as u32, k);
            let key = key_for(semantics, aggregation, &items, &scores);
            keys.push(key.clone());
            match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let b = e.get_mut();
                    b.users.push(u as u32);
                    b.accumulate_scores(&scores);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Bucket {
                        items: items.into(),
                        users: vec![u as u32],
                        pos_min: scores.clone(),
                        pos_sum: scores,
                    });
                }
            }
        }
        (map, keys)
    };
    if threads <= 1 {
        return build_range(0..n);
    }
    let build_range = &build_range;
    let shards: Vec<(FxHashMap<BucketKey, Bucket>, Vec<BucketKey>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = crate::threads::even_ranges(n, threads)
            .into_iter()
            .map(|range| scope.spawn(move || build_range(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bucket worker panicked"))
            .collect()
    });
    let mut maps = Vec::with_capacity(shards.len());
    let mut user_keys: Vec<BucketKey> = Vec::with_capacity(n);
    for (map, keys) in shards {
        maps.push(map);
        user_keys.extend(keys);
    }
    (merge_shard_maps(maps), user_keys)
}

/// `(items, users, pos_min bits, pos_sum bits)` — one bucket in the
/// projection of [`canonical_buckets`].
#[doc(hidden)]
pub type CanonicalBucket = (Vec<u32>, Vec<u32>, Vec<u64>, Vec<u64>);

/// Test support: a canonical, order-independent view of a bucket set with
/// scores projected to their exact bit patterns, so the unit and property
/// suites can assert threaded == sequential building bit-for-bit without
/// each keeping its own copy of this projection.
#[doc(hidden)]
pub fn canonical_buckets(buckets: Vec<Bucket>) -> Vec<CanonicalBucket> {
    let mut out: Vec<_> = buckets
        .into_iter()
        .map(|b| {
            (
                b.items.to_vec(),
                b.users,
                b.pos_min.iter().map(|s| s.to_bits()).collect::<Vec<u64>>(),
                b.pos_sum.iter().map(|s| s.to_bits()).collect::<Vec<u64>>(),
            )
        })
        .collect();
    out.sort();
    out
}

/// The deterministic ordering used to pick buckets in Step 2: higher
/// satisfaction first; ties broken by the group score vector
/// (lexicographically descending), then larger bucket, then ascending item
/// sequence, then smallest member id. This ordering reproduces every worked
/// example in the paper (Examples 1, 2, 5 and Appendix B).
pub fn bucket_order(a: &Bucket, b: &Bucket, semantics: Semantics, agg: Aggregation) -> Ordering {
    let sa = a.satisfaction(semantics, agg);
    let sb = b.satisfaction(semantics, agg);
    sb.total_cmp(&sa)
        .then_with(|| {
            let va = a.score_vector(semantics);
            let vb = b.score_vector(semantics);
            for (x, y) in va.iter().zip(vb.iter()) {
                match y.total_cmp(x) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            vb.len().cmp(&va.len())
        })
        .then_with(|| b.users.len().cmp(&a.users.len()))
        .then_with(|| a.items.cmp(&b.items))
        .then_with(|| a.users.first().cmp(&b.users.first()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RatingScale;

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    fn bucket_users(mut buckets: Vec<Bucket>) -> Vec<Vec<u32>> {
        for b in &mut buckets {
            b.users.sort_unstable();
        }
        let mut users: Vec<Vec<u32>> = buckets.into_iter().map(|b| b.users).collect();
        users.sort();
        users
    }

    #[test]
    fn lm_min_k1_buckets_match_paper() {
        // Paper: {u2,u6} on i3, {u3,u4} on i2, singletons {u1}, {u5}.
        let (m, p) = example1();
        let buckets = build_buckets(
            &m,
            &p,
            Semantics::LeastMisery,
            Aggregation::Min,
            MissingPolicy::Min,
            1,
        );
        assert_eq!(
            bucket_users(buckets),
            vec![vec![0], vec![1, 5], vec![2, 3], vec![4]]
        );
    }

    #[test]
    fn lm_min_k2_buckets_match_paper() {
        // Paper: only {u3,u4} bundle for k = 2 (u2 and u6 share the top-2
        // sequence (i3; i2) but have different bottom scores 3 vs 2).
        let (m, p) = example1();
        let buckets = build_buckets(
            &m,
            &p,
            Semantics::LeastMisery,
            Aggregation::Min,
            MissingPolicy::Min,
            2,
        );
        assert_eq!(
            bucket_users(buckets),
            vec![vec![0], vec![1], vec![2, 3], vec![4], vec![5]]
        );
    }

    #[test]
    fn av_buckets_ignore_scores() {
        // Under AV, u2 and u6 share the sequence (i3; i2) and bundle even
        // though their scores differ.
        let (m, p) = example1();
        let buckets = build_buckets(
            &m,
            &p,
            Semantics::AggregateVoting,
            Aggregation::Min,
            MissingPolicy::Min,
            2,
        );
        let users = bucket_users(buckets);
        assert!(users.contains(&vec![1, 5]));
        assert!(users.contains(&vec![2, 3]));
    }

    #[test]
    fn av_produces_no_more_buckets_than_lm() {
        // Section 5 observation (1): AV keys are coarser than LM keys.
        let (m, p) = example1();
        for k in 1..=3 {
            let lm = build_buckets(
                &m,
                &p,
                Semantics::LeastMisery,
                Aggregation::Sum,
                MissingPolicy::Min,
                k,
            );
            let av = build_buckets(
                &m,
                &p,
                Semantics::AggregateVoting,
                Aggregation::Sum,
                MissingPolicy::Min,
                k,
            );
            assert!(av.len() <= lm.len(), "k={k}: {} > {}", av.len(), lm.len());
        }
    }

    #[test]
    fn bucket_vectors_track_min_and_sum() {
        let (m, p) = example1();
        let buckets = build_buckets(
            &m,
            &p,
            Semantics::AggregateVoting,
            Aggregation::Min,
            MissingPolicy::Min,
            2,
        );
        let b = buckets
            .iter()
            .find(|b| {
                let mut u = b.users.clone();
                u.sort_unstable();
                u == vec![2, 3]
            })
            .unwrap();
        // u3 = u4 = (i2: 5, i1: 2).
        assert_eq!(b.items.as_ref(), &[1, 0]);
        assert_eq!(b.pos_min, vec![5.0, 2.0]);
        assert_eq!(b.pos_sum, vec![10.0, 4.0]);
        assert_eq!(
            b.satisfaction(Semantics::AggregateVoting, Aggregation::Min),
            4.0
        );
        assert_eq!(
            b.satisfaction(Semantics::AggregateVoting, Aggregation::Sum),
            14.0
        );
    }

    #[test]
    fn personal_top_k_pads_sparse_users() {
        let m = RatingMatrix::from_triples(
            1,
            5,
            vec![(0, 2, 4.0), (0, 4, 1.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        let (items, scores) = personal_top_k(&m, &p, MissingPolicy::Min, 0, 4);
        // Rated: i2 (4.0), i4 (1.0). Floor items i0, i1 at r_min = 1 tie
        // with the rated i4 at 1.0; ids 0 and 1 come before 4.
        assert_eq!(items, vec![2, 0, 1, 3]);
        assert_eq!(scores, vec![4.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn personal_top_k_with_user_mean_padding() {
        let m = RatingMatrix::from_triples(
            1,
            4,
            vec![(0, 1, 5.0), (0, 3, 1.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        // Mean = 3.0: imputed items (i0, i2) outrank the rated i3 = 1.0.
        let (items, scores) = personal_top_k(&m, &p, MissingPolicy::UserMean, 0, 4);
        assert_eq!(items, vec![1, 0, 2, 3]);
        assert_eq!(scores, vec![5.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn personal_top_k_caps_at_m() {
        let m = RatingMatrix::from_dense(&[&[3.0, 2.0]], RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        let (items, _) = personal_top_k(&m, &p, MissingPolicy::Min, 0, 10);
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn key_for_pivots() {
        let items = [7u32, 3, 9];
        let scores = [5.0, 4.0, 2.0];
        let k_min = key_for(Semantics::LeastMisery, Aggregation::Min, &items, &scores);
        assert_eq!(k_min.score_bits.as_ref(), &[2.0f64.to_bits()]);
        let k_max = key_for(Semantics::LeastMisery, Aggregation::Max, &items, &scores);
        assert_eq!(k_max.score_bits.as_ref(), &[5.0f64.to_bits()]);
        let k_sum = key_for(Semantics::LeastMisery, Aggregation::Sum, &items, &scores);
        assert_eq!(k_sum.score_bits.len(), 3);
        let k_av = key_for(
            Semantics::AggregateVoting,
            Aggregation::Min,
            &items,
            &scores,
        );
        assert!(k_av.score_bits.is_empty());
    }

    use super::canonical_buckets as canonical;

    #[test]
    fn threaded_matches_sequential_bit_for_bit() {
        // n = 0 is unconstructible (MatrixBuilder rejects empty matrices),
        // so the edge grid starts at a single user.
        use crate::scale::RatingScale;
        for n in [1u32, 2, 17] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|u| {
                    (0..5)
                        .map(|i| 1.0 + ((u as usize * 7 + i * 3) % 5) as f64)
                        .collect()
                })
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
            let p = PrefIndex::build(&m);
            for sem in Semantics::all() {
                for agg in Aggregation::paper_set() {
                    for k in [1usize, 3] {
                        let seq = build_buckets(&m, &p, sem, agg, MissingPolicy::Min, k);
                        for threads in [1usize, 2, 7] {
                            let par = build_buckets_threaded(
                                &m,
                                &p,
                                sem,
                                agg,
                                MissingPolicy::Min,
                                k,
                                threads,
                            );
                            assert_eq!(
                                canonical(seq.clone()),
                                canonical(par),
                                "n={n} {sem} {agg} k={k} threads={threads}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_handles_sparse_users_and_all_policies() {
        let m = RatingMatrix::from_triples(
            17,
            6,
            (0..17u32)
                .filter(|&u| u % 3 != 2)
                .map(|u| (u, u % 6, 1.0 + (u % 5) as f64)),
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        for policy in [
            MissingPolicy::Min,
            MissingPolicy::Skip,
            MissingPolicy::UserMean,
        ] {
            let seq = build_buckets(&m, &p, Semantics::LeastMisery, Aggregation::Sum, policy, 2);
            for threads in [2usize, 7] {
                let par = build_buckets_threaded(
                    &m,
                    &p,
                    Semantics::LeastMisery,
                    Aggregation::Sum,
                    policy,
                    2,
                    threads,
                );
                // Membership, keys and minima are identical for every
                // policy; with integer ratings the imputed scores here are
                // dyadic too, so sums are bit-for-bit as well.
                assert_eq!(
                    canonical(seq.clone()),
                    canonical(par),
                    "{policy:?} x{threads}"
                );
            }
        }
    }

    #[test]
    fn order_prefers_higher_satisfaction_then_vector() {
        let mk = |users: Vec<u32>, scores: Vec<f64>| Bucket {
            items: vec![0, 1].into(),
            users,
            pos_min: scores.clone(),
            pos_sum: scores,
        };
        let a = mk(vec![0, 1], vec![5.0, 2.0]); // sum 7, vector (5,2)
        let b = mk(vec![2], vec![4.0, 3.0]); // sum 7, vector (4,3)
        let c = mk(vec![3], vec![5.0, 3.0]); // sum 8
        let sem = Semantics::LeastMisery;
        let agg = Aggregation::Sum;
        assert_eq!(bucket_order(&c, &a, sem, agg), Ordering::Less); // c first
        assert_eq!(bucket_order(&a, &b, sem, agg), Ordering::Less); // (5,2) > (4,3) lexicographically
                                                                    // Equal vector: larger bucket first.
        let d = mk(vec![4], vec![5.0, 2.0]);
        assert_eq!(bucket_order(&a, &d, sem, agg), Ordering::Less);
    }
}
