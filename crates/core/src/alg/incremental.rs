//! Dirty-bucket incremental re-formation.
//!
//! The greedy algorithms decompose into Step 1 (hash users into buckets by
//! preference signature), Step 2 (pick the `ell - 1` best buckets) and
//! Step 3 (merge the rest into a tail group). A small batch of rating
//! updates only perturbs the buckets of the touched users, so a standing
//! formation can be *patched* instead of recomputed: [`IncrementalFormer`]
//! keeps the exact Step-1 bucket state alive between refreshes, moves only
//! the dirty users between buckets, re-runs the (cheap) Step-2 selection
//! over cached bucket satisfactions, and maintains the tail group's
//! per-item score aggregates under member churn. Refresh cost is
//! proportional to the update batch (plus an `O(B + m)` selection/tail
//! scan with tiny constants), not to a full `O(nnz log nnz)` rebuild.
//!
//! ## Equivalence to a cold rebuild
//!
//! The bucket state is maintained *exactly*: after any sequence of
//! refreshes, the bucket multiset equals what [`bucket::build_buckets`]
//! produces on the current matrix, bit for bit (touched buckets recompute
//! their score vectors over members in ascending id order — the same
//! accumulation order as a cold build). With the default unbounded repair
//! pass, the emitted grouping is the cold [`GreedyFormer`](super::GreedyFormer) grouping,
//! exactly, whenever ratings sit on a dyadic grid (whole or half stars —
//! every built-in [`crate::RatingScale`]) under [`MissingPolicy::Min`] or
//! [`MissingPolicy::Skip`]/[`MissingPolicy::UserMean`] (the latter two
//! rescore the tail with the full engine and are exact on any input; the
//! `Min` fast path maintains tail sums incrementally, which off-grid can
//! drift by one ulp per update). `tests/prop_incremental.rs` enforces both
//! properties across random rating streams and dirty-set partitions.
//!
//! ## Bounded repair pass and error bound
//!
//! [`IncrementalFormer::with_max_swaps`] caps how many buckets the repair
//! pass may admit into the selected set per refresh; admissions beyond the
//! cap are deferred — the incoming bucket stays spliced into the tail and
//! the standing group keeps its slot — and picked up by later refreshes,
//! so the grouping *converges* to the cold grouping once updates quiesce.
//! While deferrals are outstanding, on a non-negative rating scale:
//!
//! ```text
//! Obj(cold GRD) - Obj(incremental) <= selection_lag() + tail_bound
//! ```
//!
//! where [`IncrementalFormer::selection_lag`] is the computable
//! satisfaction gap between the ideal and the actual selected buckets, and
//! `tail_bound` bounds any tail group's satisfaction: `r_max` (Min/Max
//! aggregation) or `k * r_max` (Sum) under least misery, with an extra
//! factor `n` under aggregate voting (sums over members). The bound is
//! exposed as [`IncrementalFormer::quality_bound`]; the proof is two
//! lines: ideal-vs-actual selection loses exactly `selection_lag`, and
//! swapping tail memberships moves its satisfaction within
//! `[0, tail_bound]`. Eviction and tail splicing reuse the
//! [`ShardedFormer`](super::ShardedFormer) repair machinery's group
//! rescoring ([`super::shard`]) on the non-`Min` policies.
//!
//! ## Costs per refresh
//!
//! * bucket maintenance: `O(Σ |touched bucket| · k)` — proportional to the
//!   dirty batch for typical (small) buckets;
//! * selection: `O(B + ell log ell)` over `B` standing buckets (a flat
//!   scan of cached satisfactions);
//! * tail scoring: `O(m)` under `MissingPolicy::Min` (maintained per-item
//!   aggregates), `O(nnz_tail)` otherwise (full rescore);
//! * tail membership churn: `O(Σ d_u)` over users that enter/leave the
//!   tail;
//! * emission: `O(n)` to materialize the tail member list (plus cloning
//!   the selected buckets into groups) — every refresh pays this flat
//!   scan because [`FormationResult`] owns its member vectors, so the
//!   per-refresh floor is `O(n + m + B)` with memcpy-grade constants
//!   (~3 ms at 50k users), not strictly `O(batch)`.

use super::bucket::{self, Bucket, BucketKey};
use super::greedy::bucket_to_group;
use super::shard::rescore_group;
use super::{FormationConfig, FormationResult};
use crate::error::{GfError, Result};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::grouping::{Group, Grouping};
use crate::grouprec::MissingPolicy;
use crate::matrix::RatingMatrix;
use crate::prefs::PrefIndex;
use crate::semantics::Semantics;
use std::cmp::Ordering;

/// One rating update that was already applied to the matrix, with the
/// score it replaced — what [`IncrementalFormer::refresh`] needs to patch
/// the tail aggregates without re-reading the pre-update matrix.
///
/// Build it from [`RatingMatrix::upsert`]/
/// [`RatingMatrix::upsert_batch`] outcomes (see
/// [`RatingDelta::from_upsert`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingDelta {
    /// The user whose rating changed.
    pub user: u32,
    /// The rated item.
    pub item: u32,
    /// The new score (already in the matrix).
    pub score: f64,
    /// The score it replaced, `None` for a fresh rating.
    pub previous: Option<f64>,
}

impl RatingDelta {
    /// Pairs an applied update with its [`crate::matrix::Upsert`] outcome.
    pub fn from_upsert(user: u32, item: u32, score: f64, outcome: crate::matrix::Upsert) -> Self {
        RatingDelta {
            user,
            item,
            score,
            previous: match outcome {
                crate::matrix::Upsert::Updated { previous } => Some(previous),
                crate::matrix::Upsert::Inserted => None,
            },
        }
    }
}

/// Incrementally-maintained per-item aggregates of the tail (merged
/// remainder) group under [`MissingPolicy::Min`]: rater count, score sum
/// (AV scoring) and rater minimum with lazy recomputation (LM scoring).
#[derive(Debug, Clone)]
struct TailAgg {
    r_min: f64,
    count: Vec<u32>,
    sum: Vec<f64>,
    min: Vec<f64>,
    /// How many raters sit at `min`; when removals drain it the minimum is
    /// marked stale and lazily recomputed at scoring time (only ever
    /// needed for items every tail member rated).
    min_count: Vec<u32>,
    stale: Vec<bool>,
}

impl TailAgg {
    fn new(n_items: usize, r_min: f64) -> Self {
        TailAgg {
            r_min,
            count: vec![0; n_items],
            sum: vec![0.0; n_items],
            min: vec![f64::INFINITY; n_items],
            min_count: vec![0; n_items],
            stale: vec![false; n_items],
        }
    }

    /// Extends the per-item aggregates for newly admitted items (which no
    /// tail member has rated yet, so every new slot starts empty).
    fn grow_items(&mut self, n_items: usize) {
        self.count.resize(n_items, 0);
        self.sum.resize(n_items, 0.0);
        self.min.resize(n_items, f64::INFINITY);
        self.min_count.resize(n_items, 0);
        self.stale.resize(n_items, false);
    }

    fn add(&mut self, item: u32, score: f64) {
        let i = item as usize;
        self.count[i] += 1;
        self.sum[i] += score;
        if self.stale[i] {
            return;
        }
        if self.count[i] == 1 || score < self.min[i] {
            self.min[i] = score;
            self.min_count[i] = 1;
        } else if score == self.min[i] {
            self.min_count[i] += 1;
        }
    }

    fn remove(&mut self, item: u32, score: f64) {
        let i = item as usize;
        debug_assert!(self.count[i] > 0, "removing unseen rating");
        self.count[i] -= 1;
        self.sum[i] -= score;
        if self.count[i] == 0 {
            // Empty items reset exactly, killing any off-grid sum drift.
            self.sum[i] = 0.0;
            self.min[i] = f64::INFINITY;
            self.min_count[i] = 0;
            self.stale[i] = false;
            return;
        }
        if self.stale[i] {
            return;
        }
        if score == self.min[i] {
            self.min_count[i] -= 1;
            if self.min_count[i] == 0 {
                self.stale[i] = true;
            }
        }
    }

    fn recompute_min(&mut self, matrix: &RatingMatrix, in_tail: &[bool], item: u32) {
        let i = item as usize;
        let mut mn = f64::INFINITY;
        let mut cnt = 0u32;
        for (u, &tail) in in_tail.iter().enumerate() {
            if !tail {
                continue;
            }
            if let Some(s) = matrix.get(u as u32, item) {
                match s.total_cmp(&mn) {
                    Ordering::Less => {
                        mn = s;
                        cnt = 1;
                    }
                    Ordering::Equal => cnt += 1,
                    Ordering::Greater => {}
                }
            }
        }
        self.min[i] = mn;
        self.min_count[i] = cnt;
        self.stale[i] = false;
    }

    /// The tail's top-`k` list, exactly as
    /// [`crate::GroupRecommender::top_k`] computes it under
    /// `MissingPolicy::Min` for the current tail membership.
    fn top_k(
        &mut self,
        matrix: &RatingMatrix,
        in_tail: &[bool],
        tail_len: usize,
        semantics: Semantics,
        k: usize,
    ) -> Vec<(u32, f64)> {
        let m = self.count.len();
        let mut scored: Vec<(u32, f64)> = Vec::with_capacity(m);
        for i in 0..m {
            let score = match semantics {
                Semantics::LeastMisery => {
                    if self.count[i] as usize == tail_len {
                        if self.stale[i] {
                            self.recompute_min(matrix, in_tail, i as u32);
                        }
                        self.min[i]
                    } else {
                        self.r_min
                    }
                }
                Semantics::AggregateVoting => {
                    self.sum[i] + (tail_len - self.count[i] as usize) as f64 * self.r_min
                }
                Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                    unreachable!("agg_tail is only maintained for decomposable semantics")
                }
            };
            scored.push((i as u32, score));
        }
        let cmp = |a: &(u32, f64), b: &(u32, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
        if scored.len() > k {
            scored.select_nth_unstable_by(k - 1, cmp);
            scored.truncate(k);
        }
        scored.sort_unstable_by(cmp);
        scored
    }
}

/// A serializable projection of one Step-1 bucket, with scores carried as
/// exact `f64` bit patterns so a checkpoint round trip is lossless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormerBucket {
    /// The shared top-`k` item sequence of the bucket's members.
    pub items: Vec<u32>,
    /// The bucket key's score bit patterns (the members' shared
    /// per-position scores, per the grouping semantics).
    pub key_score_bits: Vec<u64>,
    /// Member user ids, strictly ascending.
    pub users: Vec<u32>,
    /// Per-position minimum score bits across members.
    pub pos_min_bits: Vec<u64>,
    /// Per-position score-sum bits across members.
    pub pos_sum_bits: Vec<u64>,
}

/// A serializable snapshot of an [`IncrementalFormer`]'s standing state:
/// the exact Step-1 bucket multiset (canonically ordered) plus the Step-2
/// selection in emission order. Produced by
/// [`IncrementalFormer::export_state`], consumed by
/// [`IncrementalFormer::import_state`]; the `gf-persist` crate gives it a
/// byte-level encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormerState {
    /// All standing buckets, sorted by (items, key score bits).
    pub buckets: Vec<FormerBucket>,
    /// Indices into `buckets` of the selected (own-group) buckets, in
    /// emission order.
    pub selected: Vec<u32>,
}

/// A standing greedy formation that absorbs rating updates by patching
/// only the dirty users' buckets and splicing the result back into the
/// grouping with a bounded repair pass. See the [module docs](self) for
/// the equivalence guarantee and the error bound.
#[derive(Debug, Clone)]
pub struct IncrementalFormer {
    cfg: FormationConfig,
    n_items: u32,
    /// Exact Step-1 state: equals `build_buckets` on the current matrix.
    buckets: FxHashMap<BucketKey, Bucket>,
    /// Each user's current bucket key.
    user_keys: Vec<BucketKey>,
    /// Keys of the buckets currently holding their own group, in emission
    /// (pop) order.
    selected: Vec<BucketKey>,
    in_tail: Vec<bool>,
    tail_len: usize,
    /// `Some` under `MissingPolicy::Min` (the maintained fast path);
    /// `None` falls back to full tail rescoring via the shared repair
    /// machinery.
    agg_tail: Option<TailAgg>,
    result: FormationResult,
    max_swaps: usize,
    selection_lag: f64,
}

impl IncrementalFormer {
    /// Builds the standing formation with one cold pass (equivalent to
    /// [`GreedyFormer::new`](super::GreedyFormer::new) under `cfg`) and the incremental state that
    /// keeps it patchable.
    ///
    /// Step 1 runs on `cfg.n_threads` workers via
    /// [`bucket::build_bucket_map_threaded`] — the sharded bucket build
    /// plus a merge that also records per-user bucket keys — cutting the
    /// lineage-break (re-initialization) penalty on multi-core hosts. The
    /// default `n_threads = 1` keeps the sequential path.
    pub fn new(matrix: &RatingMatrix, prefs: &PrefIndex, cfg: FormationConfig) -> Result<Self> {
        cfg.validate(matrix)?;
        let n = matrix.n_users() as usize;
        let (buckets, user_keys) = bucket::build_bucket_map_threaded(
            matrix,
            prefs,
            cfg.semantics,
            cfg.aggregation,
            cfg.policy,
            cfg.k,
            cfg.n_threads,
        );
        // The maintained fast path only models the decomposable paper
        // semantics; Consensus/LeaderWeighted fall back to exact tail
        // rescoring through the shared repair machinery.
        let agg_tail = (matches!(cfg.policy, MissingPolicy::Min)
            && cfg.semantics.is_decomposable())
        .then(|| TailAgg::new(matrix.n_items() as usize, matrix.scale().min()));
        let mut former = IncrementalFormer {
            cfg,
            n_items: matrix.n_items(),
            buckets,
            user_keys,
            selected: Vec::new(),
            in_tail: vec![false; n],
            tail_len: 0,
            agg_tail,
            result: FormationResult {
                grouping: Grouping::default(),
                objective: 0.0,
                n_buckets: 0,
            },
            max_swaps: usize::MAX,
            selection_lag: 0.0,
        };
        let (ideal, _) = former.ideal_selection();
        let chosen: FxHashSet<BucketKey> = ideal.iter().cloned().collect();
        for u in 0..n {
            if !chosen.contains(&former.user_keys[u]) {
                former.in_tail[u] = true;
                former.tail_len += 1;
                if let Some(agg) = &mut former.agg_tail {
                    for (i, s) in matrix.user_ratings(u as u32) {
                        agg.add(i, s);
                    }
                }
            }
        }
        former.selected = ideal;
        former.emit(matrix);
        Ok(former)
    }

    /// Caps how many buckets one refresh may admit into the selected set
    /// (the repair-pass budget). Default: unbounded, which keeps the
    /// grouping exactly equal to a cold rebuild. With a finite cap the
    /// grouping lags by at most [`IncrementalFormer::quality_bound`] and
    /// converges once updates quiesce.
    pub fn with_max_swaps(mut self, max_swaps: usize) -> Self {
        self.max_swaps = max_swaps;
        self
    }

    /// The configuration this former was built under.
    pub fn config(&self) -> &FormationConfig {
        &self.cfg
    }

    /// The standing formation.
    pub fn result(&self) -> &FormationResult {
        &self.result
    }

    /// Satisfaction gap between the ideal Step-2 selection and the one
    /// currently emitted (0 whenever the repair pass is not lagging —
    /// always, with unbounded swaps).
    pub fn selection_lag(&self) -> f64 {
        self.selection_lag
    }

    /// The documented bound on `Obj(cold GRD) - Obj(self)` for the current
    /// state on a non-negative rating scale: [`selection_lag`] plus the
    /// worst-case tail-group satisfaction (see the [module docs](self)).
    ///
    /// [`selection_lag`]: IncrementalFormer::selection_lag
    pub fn quality_bound(&self, matrix: &RatingMatrix) -> f64 {
        let r_max = matrix.scale().max();
        let k_eff = self.cfg.k.min(matrix.n_items() as usize).max(1);
        let per_item = match self.cfg.semantics {
            Semantics::LeastMisery => r_max,
            Semantics::AggregateVoting => matrix.n_users() as f64 * r_max,
            // Both are (weighted) means bounded above by r_max; Consensus
            // only subtracts from the mean (λ ≥ 0). See `semantics` docs.
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => r_max,
        };
        self.selection_lag + self.cfg.aggregation.apply(&vec![per_item; k_eff])
    }

    /// Test support: a canonical view of the maintained Step-1 state, for
    /// comparison against [`bucket::canonical_buckets`] of a cold build.
    #[doc(hidden)]
    pub fn canonical_buckets(&self) -> Vec<bucket::CanonicalBucket> {
        bucket::canonical_buckets(self.buckets.values().cloned().collect())
    }

    /// Projects the standing Step-1/2 state into a serializable
    /// [`FormerState`] — buckets in canonical (key-sorted) order, the
    /// Step-2 selection as indices into that order — for the `gf-persist`
    /// checkpoint writer. [`IncrementalFormer::import_state`] is the
    /// inverse; the round trip preserves the emitted grouping bit for
    /// bit.
    pub fn export_state(&self) -> FormerState {
        let mut order: Vec<&BucketKey> = self.buckets.keys().collect();
        order.sort_unstable_by(|a, b| {
            a.items
                .cmp(&b.items)
                .then_with(|| a.score_bits.cmp(&b.score_bits))
        });
        let index_of: FxHashMap<&BucketKey, u32> = order
            .iter()
            .enumerate()
            .map(|(idx, key)| (*key, idx as u32))
            .collect();
        let buckets = order
            .iter()
            .map(|key| {
                let b = &self.buckets[*key];
                FormerBucket {
                    items: key.items.to_vec(),
                    key_score_bits: key.score_bits.to_vec(),
                    users: b.users.clone(),
                    pos_min_bits: b.pos_min.iter().map(|s| s.to_bits()).collect(),
                    pos_sum_bits: b.pos_sum.iter().map(|s| s.to_bits()).collect(),
                }
            })
            .collect();
        let selected = self.selected.iter().map(|key| index_of[key]).collect();
        FormerState { buckets, selected }
    }

    /// Reconstructs a standing former from an exported [`FormerState`]
    /// against the matrix/prefs pair it was exported under.
    ///
    /// Derived state (per-user bucket keys, tail membership, tail
    /// aggregates, the emitted grouping, the selection lag) is rebuilt
    /// from the matrix rather than trusted — the tail aggregates
    /// re-accumulate in ascending user order, the exact order
    /// [`IncrementalFormer::new`] uses, so on a dyadic rating grid the
    /// restored former continues bit-for-bit from where the exported one
    /// stopped. Structural invariants (sorted unique membership, full
    /// user coverage, well-formed selection) are validated; a state that
    /// fails them yields [`GfError::Persist`].
    pub fn import_state(
        matrix: &RatingMatrix,
        cfg: FormationConfig,
        state: &FormerState,
    ) -> Result<Self> {
        cfg.validate(matrix)?;
        let corrupt = |msg: String| GfError::Persist(format!("invalid former state: {msg}"));
        let n = matrix.n_users() as usize;
        let mut buckets: FxHashMap<BucketKey, Bucket> = FxHashMap::default();
        let mut keys: Vec<BucketKey> = Vec::with_capacity(state.buckets.len());
        let mut user_keys: Vec<Option<BucketKey>> = vec![None; n];
        for (idx, fb) in state.buckets.iter().enumerate() {
            if fb.pos_min_bits.len() != fb.items.len() || fb.pos_sum_bits.len() != fb.items.len() {
                return Err(corrupt(format!(
                    "bucket {idx} score vectors mismatch items"
                )));
            }
            if fb.users.is_empty() {
                return Err(corrupt(format!("bucket {idx} has no members")));
            }
            let key = BucketKey {
                items: fb.items.clone().into_boxed_slice(),
                score_bits: fb.key_score_bits.clone().into_boxed_slice(),
            };
            for (pos, &u) in fb.users.iter().enumerate() {
                if u as usize >= n {
                    return Err(corrupt(format!("bucket {idx} member {u} out of range")));
                }
                if pos > 0 && fb.users[pos - 1] >= u {
                    return Err(corrupt(format!("bucket {idx} members not sorted unique")));
                }
                let slot = &mut user_keys[u as usize];
                if slot.is_some() {
                    return Err(corrupt(format!("user {u} appears in two buckets")));
                }
                *slot = Some(key.clone());
            }
            let bucket = Bucket {
                items: fb.items.clone().into_boxed_slice(),
                users: fb.users.clone(),
                pos_min: fb.pos_min_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                pos_sum: fb.pos_sum_bits.iter().map(|&b| f64::from_bits(b)).collect(),
            };
            if buckets.insert(key.clone(), bucket).is_some() {
                return Err(corrupt(format!("bucket {idx} repeats an earlier key")));
            }
            keys.push(key);
        }
        let user_keys: Vec<BucketKey> = user_keys
            .into_iter()
            .enumerate()
            .map(|(u, key)| key.ok_or_else(|| corrupt(format!("user {u} not in any bucket"))))
            .collect::<Result<_>>()?;
        let mut selected: Vec<BucketKey> = Vec::with_capacity(state.selected.len());
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for &idx in &state.selected {
            if idx as usize >= keys.len() || !seen.insert(idx) {
                return Err(corrupt(format!("bad selection index {idx}")));
            }
            selected.push(keys[idx as usize].clone());
        }
        let selected_set: FxHashSet<&BucketKey> = selected.iter().collect();
        let mut former = IncrementalFormer {
            cfg,
            n_items: matrix.n_items(),
            buckets,
            user_keys,
            selected: Vec::new(),
            in_tail: vec![false; n],
            tail_len: 0,
            agg_tail: (matches!(cfg.policy, MissingPolicy::Min) && cfg.semantics.is_decomposable())
                .then(|| TailAgg::new(matrix.n_items() as usize, matrix.scale().min())),
            result: FormationResult {
                grouping: Grouping::default(),
                objective: 0.0,
                n_buckets: 0,
            },
            max_swaps: usize::MAX,
            selection_lag: 0.0,
        };
        for u in 0..n {
            if !selected_set.contains(&former.user_keys[u]) {
                former.in_tail[u] = true;
                former.tail_len += 1;
                if let Some(agg) = &mut former.agg_tail {
                    for (i, s) in matrix.user_ratings(u as u32) {
                        agg.add(i, s);
                    }
                }
            }
        }
        drop(selected_set);
        former.selected = selected;
        let (_, ideal_sum) = former.ideal_selection();
        let actual_sum: f64 = former
            .selected
            .iter()
            .map(|key| {
                former.buckets[key].satisfaction(former.cfg.semantics, former.cfg.aggregation)
            })
            .sum();
        former.selection_lag = (ideal_sum - actual_sum).max(0.0);
        former.emit(matrix);
        Ok(former)
    }

    /// Patches the standing formation after a batch of rating updates.
    ///
    /// `matrix` and `prefs` must already reflect the updates (apply them
    /// with [`RatingMatrix::upsert_batch`] and [`PrefIndex::patch_users`]),
    /// and `updates` must cover **every** rating that changed since the
    /// last refresh — a user mutated behind the former's back corrupts the
    /// bucket state. An empty batch is valid and lets a capped repair pass
    /// catch up on deferred swaps.
    ///
    /// The matrix may have **grown** since the last refresh (see
    /// [`crate::GrowthPolicy`]): every never-seen user is admitted as a
    /// dirty user with no old bucket — including the empty gap rows a
    /// sparse admission creates — and a brand-new item becomes a fresh
    /// column of the tail aggregates (it only enters touched buckets'
    /// top-`k` sequences through the dirty users that rated it). The one
    /// case where item growth can silently change *untouched* users'
    /// preference prefixes is `k > old_m` (their padded top-`k` gets
    /// longer); the refresh detects it and rebuilds the bucket state from
    /// scratch, which is still exactly the cold state. Shrinking is an
    /// error.
    pub fn refresh(
        &mut self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        updates: &[RatingDelta],
    ) -> Result<&FormationResult> {
        if (matrix.n_users() as usize) < self.user_keys.len() || matrix.n_items() < self.n_items {
            return Err(GfError::StaleIncrementalState(format!(
                "former built for {}x{} but matrix shrank to {}x{}",
                self.user_keys.len(),
                self.n_items,
                matrix.n_users(),
                matrix.n_items()
            )));
        }
        for d in updates {
            if d.user >= matrix.n_users() {
                return Err(GfError::UserOutOfRange {
                    user: d.user,
                    n_users: matrix.n_users(),
                });
            }
            if d.item >= matrix.n_items() {
                return Err(GfError::ItemOutOfRange {
                    item: d.item,
                    n_items: matrix.n_items(),
                });
            }
        }

        // 0. Population growth. New items first: if the truncation length
        //    `k.min(m)` changed, every sparse user's padded top-k just got
        //    longer — no untouched bucket survives that, so rebuild the
        //    Step-1 state cold (exact by construction) and keep going with
        //    the usual selection machinery below via a fresh former.
        let old_n = self.user_keys.len() as u32;
        if matrix.n_items() != self.n_items {
            if self.cfg.k.min(self.n_items as usize) != self.cfg.k.min(matrix.n_items() as usize) {
                let max_swaps = self.max_swaps;
                *self = IncrementalFormer::new(matrix, prefs, self.cfg)?.with_max_swaps(max_swaps);
                return Ok(&self.result);
            }
            if let Some(agg) = &mut self.agg_tail {
                agg.grow_items(matrix.n_items() as usize);
            }
            self.n_items = matrix.n_items();
        }
        //    New users: a never-seen user is a dirty user with no old
        //    bucket. Hash it into its bucket now (scores recomputed with
        //    the other touched buckets below) and start it outside the
        //    tail; the selection step splices it wherever it belongs.
        let mut admitted_keys: Vec<BucketKey> = Vec::new();
        for u in old_n..matrix.n_users() {
            let (items, scores) =
                bucket::personal_top_k(matrix, prefs, self.cfg.policy, u, self.cfg.k);
            let key = bucket::key_for(self.cfg.semantics, self.cfg.aggregation, &items, &scores);
            match self.buckets.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let b = e.get_mut();
                    let pos = b
                        .users
                        .binary_search(&u)
                        .expect_err("admitted user cannot already be bucketed");
                    b.users.insert(pos, u);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Bucket {
                        items: items.into(),
                        users: vec![u],
                        pos_min: Vec::new(),
                        pos_sum: Vec::new(),
                    });
                }
            }
            admitted_keys.push(key.clone());
            self.user_keys.push(key);
            self.in_tail.push(false);
        }

        // 1. Migrate the per-item tail aggregates of users already in the
        //    tail; users outside contribute nothing yet.
        if let Some(agg) = &mut self.agg_tail {
            for d in updates {
                if self.in_tail[d.user as usize] {
                    if let Some(previous) = d.previous {
                        agg.remove(d.item, previous);
                    }
                    agg.add(d.item, d.score);
                }
            }
        }

        // 2. Move every dirty user from its old bucket to its new one.
        //    Admitted users ride along in `dirty` so the selection step
        //    accounts for them, but step 0 already placed them (and their
        //    matrix rows are final), so the move loop skips them — a
        //    sparse admission can create thousands of gap rows, and
        //    re-removing/re-inserting each from the shared empty-signature
        //    bucket would be quadratic busywork.
        let mut dirty: Vec<u32> = updates.iter().map(|d| d.user).collect();
        dirty.extend(old_n..matrix.n_users());
        dirty.sort_unstable();
        dirty.dedup();
        let mut touched: FxHashSet<BucketKey> = FxHashSet::default();
        touched.extend(admitted_keys);
        for &u in &dirty {
            if u >= old_n {
                continue; // admitted in step 0, already in its bucket
            }
            let old_key = self.user_keys[u as usize].clone();
            let emptied = {
                let b = self
                    .buckets
                    .get_mut(&old_key)
                    .expect("dirty user's standing bucket exists");
                let pos = b
                    .users
                    .binary_search(&u)
                    .expect("dirty user sits in its own bucket");
                b.users.remove(pos);
                b.users.is_empty()
            };
            if emptied {
                self.buckets.remove(&old_key);
            }
            touched.insert(old_key);
            let (items, scores) =
                bucket::personal_top_k(matrix, prefs, self.cfg.policy, u, self.cfg.k);
            let new_key =
                bucket::key_for(self.cfg.semantics, self.cfg.aggregation, &items, &scores);
            match self.buckets.entry(new_key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let b = e.get_mut();
                    let pos = b
                        .users
                        .binary_search(&u)
                        .expect_err("user cannot already be in the target bucket");
                    b.users.insert(pos, u);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Bucket {
                        items: items.into(),
                        users: vec![u],
                        pos_min: Vec::new(),
                        pos_sum: Vec::new(),
                    });
                }
            }
            touched.insert(new_key.clone());
            self.user_keys[u as usize] = new_key;
        }

        // 3. Recompute touched buckets' score vectors over members in
        //    ascending id order — the cold build's accumulation order, so
        //    the vectors are bit-for-bit what build_buckets produces.
        for key in &touched {
            if let Some(b) = self.buckets.get_mut(key) {
                recompute_bucket_scores(matrix, prefs, &self.cfg, b);
            }
        }

        // 4. Repair pass: re-run Step-2 selection, capped at max_swaps
        //    admissions.
        let (ideal, ideal_sum) = self.ideal_selection();
        let actual = self.cap_selection(ideal);
        let actual_sum: f64 = actual
            .iter()
            .map(|key| self.buckets[key].satisfaction(self.cfg.semantics, self.cfg.aggregation))
            .sum();
        self.selection_lag = (ideal_sum - actual_sum).max(0.0);

        // 5. Splice users whose tail membership changed (bucket admissions,
        //    evictions, and dirty users that hopped across the boundary).
        self.apply_selection(matrix, actual, &dirty);

        // 6. Emit the patched grouping.
        self.emit(matrix);
        Ok(&self.result)
    }

    /// The ideal Step-2 selection over the current buckets — the exact pop
    /// sequence of a cold [`GreedyFormer`](super::GreedyFormer) — plus its satisfaction sum.
    fn ideal_selection(&self) -> (Vec<BucketKey>, f64) {
        let slots = self.cfg.ell.saturating_sub(1).min(self.buckets.len());
        if slots == 0 {
            return (Vec::new(), 0.0);
        }
        let (sem, agg) = (self.cfg.semantics, self.cfg.aggregation);
        let mut entries: Vec<(f64, &BucketKey, &Bucket)> = self
            .buckets
            .iter()
            .map(|(key, b)| (b.satisfaction(sem, agg), key, b))
            .collect();
        let cmp = |x: &(f64, &BucketKey, &Bucket), y: &(f64, &BucketKey, &Bucket)| {
            y.0.total_cmp(&x.0)
                .then_with(|| bucket::bucket_order(x.2, y.2, sem, agg))
        };
        if entries.len() > slots {
            entries.select_nth_unstable_by(slots - 1, cmp);
            entries.truncate(slots);
        }
        entries.sort_unstable_by(cmp);
        let sum = entries.iter().map(|e| e.0).sum();
        (entries.iter().map(|e| e.1.clone()).collect(), sum)
    }

    /// Limits the selection churn to `max_swaps` admissions: deferred
    /// incoming buckets stay in the tail and the best standing groups keep
    /// their slots. Returns the final selection in emission order.
    fn cap_selection(&self, ideal: Vec<BucketKey>) -> Vec<BucketKey> {
        if self.max_swaps == usize::MAX {
            return ideal;
        }
        let slots = ideal.len();
        let old_set: FxHashSet<&BucketKey> = self.selected.iter().collect();
        let mut admitted = 0usize;
        let mut chosen: Vec<BucketKey> = Vec::with_capacity(slots);
        let mut chosen_set: FxHashSet<BucketKey> = FxHashSet::default();
        for key in ideal {
            if old_set.contains(&key) {
                chosen_set.insert(key.clone());
                chosen.push(key);
            } else if admitted < self.max_swaps {
                admitted += 1;
                chosen_set.insert(key.clone());
                chosen.push(key);
            }
        }
        // Freed slots (deferred admissions) fall back to the best standing
        // groups that were about to be evicted.
        if chosen.len() < slots {
            let (sem, agg) = (self.cfg.semantics, self.cfg.aggregation);
            let mut survivors: Vec<&BucketKey> = self
                .selected
                .iter()
                .filter(|key| self.buckets.contains_key(*key) && !chosen_set.contains(*key))
                .collect();
            survivors.sort_unstable_by(|a, b| {
                bucket::bucket_order(&self.buckets[*a], &self.buckets[*b], sem, agg)
            });
            for key in survivors.into_iter().take(slots - chosen.len()) {
                chosen.push(key.clone());
            }
            chosen.sort_unstable_by(|a, b| {
                bucket::bucket_order(&self.buckets[a], &self.buckets[b], sem, agg)
            });
        }
        chosen
    }

    /// Installs `new_selected` and splices every user whose tail
    /// membership changed into/out of the tail aggregates.
    fn apply_selection(
        &mut self,
        matrix: &RatingMatrix,
        new_selected: Vec<BucketKey>,
        dirty: &[u32],
    ) {
        let new_set: FxHashSet<&BucketKey> = new_selected.iter().collect();
        let mut affected: Vec<u32> = dirty.to_vec();
        for key in &self.selected {
            if !new_set.contains(key) {
                if let Some(b) = self.buckets.get(key) {
                    affected.extend_from_slice(&b.users);
                }
            }
        }
        {
            let old_set: FxHashSet<&BucketKey> = self.selected.iter().collect();
            for key in &new_selected {
                if !old_set.contains(key) {
                    affected.extend_from_slice(&self.buckets[key].users);
                }
            }
        }
        for u in affected {
            let want_tail = !new_set.contains(&self.user_keys[u as usize]);
            let is_tail = self.in_tail[u as usize];
            if want_tail == is_tail {
                continue;
            }
            self.in_tail[u as usize] = want_tail;
            if want_tail {
                self.tail_len += 1;
            } else {
                self.tail_len -= 1;
            }
            if let Some(agg) = &mut self.agg_tail {
                for (i, s) in matrix.user_ratings(u) {
                    if want_tail {
                        agg.add(i, s);
                    } else {
                        agg.remove(i, s);
                    }
                }
            }
        }
        drop(new_set);
        self.selected = new_selected;
    }

    /// Rebuilds `self.result` from the selected buckets plus the tail.
    fn emit(&mut self, matrix: &RatingMatrix) {
        let mut groups: Vec<Group> = Vec::with_capacity(self.selected.len() + 1);
        for key in &self.selected {
            let b = self.buckets[key].clone();
            groups.push(bucket_to_group(b, &self.cfg));
        }
        if self.tail_len > 0 {
            let members: Vec<u32> = self
                .in_tail
                .iter()
                .enumerate()
                .filter_map(|(u, &t)| t.then_some(u as u32))
                .collect();
            let mut tail = Group {
                members,
                top_k: Vec::new(),
                satisfaction: 0.0,
            };
            match &mut self.agg_tail {
                Some(agg) => {
                    let top_k = agg.top_k(
                        matrix,
                        &self.in_tail,
                        self.tail_len,
                        self.cfg.semantics,
                        self.cfg.k,
                    );
                    let scores: Vec<f64> = top_k.iter().map(|&(_, s)| s).collect();
                    tail.satisfaction = self.cfg.aggregation.apply(&scores);
                    tail.top_k = top_k;
                }
                None => rescore_group(matrix, &self.cfg, &mut tail),
            }
            groups.push(tail);
        }
        let grouping = Grouping::new(groups);
        debug_assert!(grouping
            .validate(self.user_keys.len() as u32, self.cfg.ell)
            .is_ok());
        let objective = grouping.objective();
        self.result = FormationResult {
            grouping,
            objective,
            n_buckets: self.buckets.len(),
        };
    }
}

/// Recomputes a touched bucket's per-position score vectors from its
/// members in ascending id order — the same accumulation order as the cold
/// build, so the result is bit-for-bit identical to `build_buckets`.
fn recompute_bucket_scores(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    cfg: &FormationConfig,
    b: &mut Bucket,
) {
    for idx in 0..b.users.len() {
        let u = b.users[idx];
        let (items, scores) = bucket::personal_top_k(matrix, prefs, cfg.policy, u, cfg.k);
        debug_assert_eq!(
            items.as_slice(),
            b.items.as_ref(),
            "member {u} no longer matches its bucket's item sequence"
        );
        if idx == 0 {
            b.pos_min.clear();
            b.pos_min.extend_from_slice(&scores);
            b.pos_sum.clear();
            b.pos_sum.extend_from_slice(&scores);
        } else {
            b.accumulate_scores(&scores);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregation;
    use crate::alg::{GreedyFormer, GroupFormer};
    use crate::scale::RatingScale;

    fn dense(rows: &[&[f64]]) -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(rows, RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    /// Table 1 of the paper.
    fn example1() -> (RatingMatrix, PrefIndex) {
        dense(&[
            &[1.0, 4.0, 3.0],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[3.0, 1.0, 1.0],
            &[1.0, 2.0, 5.0],
        ])
    }

    fn apply(
        matrix: &mut RatingMatrix,
        prefs: &mut PrefIndex,
        updates: &[(u32, u32, f64)],
    ) -> Vec<RatingDelta> {
        let outcomes = matrix.upsert_batch(updates).unwrap();
        let users: Vec<u32> = updates.iter().map(|&(u, _, _)| u).collect();
        prefs.patch_users(matrix, &users);
        updates
            .iter()
            .zip(outcomes)
            .map(|(&(u, i, s), o)| RatingDelta::from_upsert(u, i, s, o))
            .collect()
    }

    fn assert_matches_cold(
        former: &IncrementalFormer,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) {
        let cold = GreedyFormer::new().form(matrix, prefs, cfg).unwrap();
        assert_eq!(former.result(), &cold);
        let cold_buckets = bucket::canonical_buckets(bucket::build_buckets(
            matrix,
            prefs,
            cfg.semantics,
            cfg.aggregation,
            cfg.policy,
            cfg.k,
        ));
        assert_eq!(former.canonical_buckets(), cold_buckets);
    }

    #[test]
    fn init_equals_cold_greedy_on_paper_example() {
        let (m, p) = example1();
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                for k in 1..=3 {
                    for ell in 1..=6 {
                        let cfg = FormationConfig::new(sem, agg, k, ell);
                        let former = IncrementalFormer::new(&m, &p, cfg).unwrap();
                        assert_matches_cold(&former, &m, &p, &cfg);
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_tracks_cold_rebuild_exactly() {
        let (mut m, mut p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        let mut former = IncrementalFormer::new(&m, &p, cfg).unwrap();
        let batches: Vec<Vec<(u32, u32, f64)>> = vec![
            vec![(0, 0, 5.0)],
            vec![(2, 2, 4.0), (3, 2, 4.0)],
            vec![(5, 1, 5.0), (5, 0, 3.0), (1, 1, 1.0)],
            vec![(4, 2, 5.0)],
        ];
        for batch in batches {
            let deltas = apply(&mut m, &mut p, &batch);
            former.refresh(&m, &p, &deltas).unwrap();
            assert_matches_cold(&former, &m, &p, &cfg);
            assert_eq!(former.selection_lag(), 0.0);
        }
    }

    #[test]
    fn moment_semantics_init_and_refresh_track_cold_rebuild() {
        // Consensus and LeaderWeighted have no TailAgg fast path; the
        // exact rescoring fallback must still equal a cold build after
        // every batch, for each missing policy.
        for sem in [
            Semantics::Consensus { lambda: 0.6 },
            Semantics::LeaderWeighted,
        ] {
            for policy in [
                MissingPolicy::Min,
                MissingPolicy::UserMean,
                MissingPolicy::Skip,
            ] {
                let (mut m, mut p) = example1();
                let cfg = FormationConfig::new(sem, Aggregation::Min, 2, 3).with_policy(policy);
                let mut former = IncrementalFormer::new(&m, &p, cfg).unwrap();
                assert_matches_cold(&former, &m, &p, &cfg);
                for batch in [
                    vec![(0u32, 0u32, 5.0)],
                    vec![(2, 2, 4.0), (3, 2, 4.0)],
                    vec![(5, 1, 5.0), (5, 0, 3.0), (1, 1, 1.0)],
                ] {
                    let deltas = apply(&mut m, &mut p, &batch);
                    former.refresh(&m, &p, &deltas).unwrap();
                    assert_matches_cold(&former, &m, &p, &cfg);
                    assert_eq!(former.selection_lag(), 0.0, "{sem} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn refresh_handles_sparse_inserts_and_av() {
        let mut m = RatingMatrix::from_triples(
            5,
            6,
            vec![(0, 0, 5.0), (1, 2, 3.0), (2, 2, 3.0), (4, 5, 1.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let mut p = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 3);
        let mut former = IncrementalFormer::new(&m, &p, cfg).unwrap();
        for batch in [
            vec![(3u32, 1u32, 4.0)], // first rating of a previously empty user
            vec![(0, 0, 1.0), (1, 2, 5.0)],
            vec![(4, 5, 5.0), (4, 0, 2.0)],
        ] {
            let deltas = apply(&mut m, &mut p, &batch);
            former.refresh(&m, &p, &deltas).unwrap();
            assert_matches_cold(&former, &m, &p, &cfg);
        }
    }

    #[test]
    fn skip_and_user_mean_policies_fall_back_to_exact_rescoring() {
        for policy in [MissingPolicy::Skip, MissingPolicy::UserMean] {
            let mut m = RatingMatrix::from_triples(
                6,
                5,
                (0..6u32).flat_map(|u| {
                    (0..3u32)
                        .filter(move |i| (u + i) % 3 != 2)
                        .map(move |i| (u, i, 1.0 + ((u * 2 + i) % 5) as f64))
                }),
                RatingScale::one_to_five(),
            )
            .unwrap();
            let mut p = PrefIndex::build(&m);
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 3)
                .with_policy(policy);
            let mut former = IncrementalFormer::new(&m, &p, cfg).unwrap();
            assert_matches_cold(&former, &m, &p, &cfg);
            let deltas = apply(&mut m, &mut p, &[(0, 4, 5.0), (5, 0, 2.0)]);
            former.refresh(&m, &p, &deltas).unwrap();
            assert_matches_cold(&former, &m, &p, &cfg);
        }
    }

    #[test]
    fn capped_swaps_defer_but_stay_within_bound_and_converge() {
        let (mut m, mut p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 4);
        let mut former = IncrementalFormer::new(&m, &p, cfg)
            .unwrap()
            .with_max_swaps(0);
        // Pull u5 onto a brand-new best bucket; with zero admissions the
        // repair pass must defer it to the tail.
        let deltas = apply(&mut m, &mut p, &[(4, 0, 5.0), (4, 1, 5.0), (4, 2, 5.0)]);
        former.refresh(&m, &p, &deltas).unwrap();
        let cold = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let loss = cold.objective - former.result().objective;
        assert!(loss <= former.quality_bound(&m) + 1e-9, "loss {loss}");
        // Buckets are exact even while the grouping lags.
        let cold_buckets = bucket::canonical_buckets(bucket::build_buckets(
            &m,
            &p,
            cfg.semantics,
            cfg.aggregation,
            cfg.policy,
            cfg.k,
        ));
        assert_eq!(former.canonical_buckets(), cold_buckets);
        // Raise the budget: an empty refresh catches up and converges.
        let mut former = former.with_max_swaps(1);
        for _ in 0..former.result().grouping.len() + 2 {
            former.refresh(&m, &p, &[]).unwrap();
        }
        assert_eq!(former.selection_lag(), 0.0);
        assert_eq!(former.result(), &cold);
    }

    fn apply_grown(
        matrix: &mut RatingMatrix,
        prefs: &mut PrefIndex,
        updates: &[(u32, u32, f64)],
        growth: crate::matrix::GrowthPolicy,
    ) -> Vec<RatingDelta> {
        let outcomes = matrix.upsert_batch_under(updates, growth).unwrap();
        let users: Vec<u32> = updates.iter().map(|&(u, _, _)| u).collect();
        prefs.patch_users(matrix, &users);
        updates
            .iter()
            .zip(outcomes)
            .map(|(&(u, i, s), o)| RatingDelta::from_upsert(u, i, s, o))
            .collect()
    }

    #[test]
    fn refresh_admits_new_users_and_items_exactly() {
        let (mut m, mut p) = example1();
        let growth = crate::matrix::GrowthPolicy::unbounded();
        for sem in Semantics::all() {
            let cfg = FormationConfig::new(sem, Aggregation::Min, 2, 3);
            let (mut m2, mut p2) = (m.clone(), p.clone());
            let mut former = IncrementalFormer::new(&m2, &p2, cfg).unwrap();
            // Batch 1: a brand-new user rating an existing item.
            let deltas = apply_grown(&mut m2, &mut p2, &[(6, 1, 5.0)], growth);
            former.refresh(&m2, &p2, &deltas).unwrap();
            assert_matches_cold(&former, &m2, &p2, &cfg);
            // Batch 2: a never-seen user on a never-seen item, plus a gap
            // row (user 8 skips 7 -> 7 is admitted with no ratings), mixed
            // with an old user's update.
            let deltas = apply_grown(&mut m2, &mut p2, &[(8, 4, 4.0), (0, 0, 2.0)], growth);
            former.refresh(&m2, &p2, &deltas).unwrap();
            assert_eq!(m2.n_users(), 9);
            assert_eq!(m2.n_items(), 5);
            assert_matches_cold(&former, &m2, &p2, &cfg);
            // Batch 3: the gap user starts rating.
            let deltas = apply_grown(&mut m2, &mut p2, &[(7, 2, 3.0), (7, 4, 1.0)], growth);
            former.refresh(&m2, &p2, &deltas).unwrap();
            assert_matches_cold(&former, &m2, &p2, &cfg);
        }
        // Keep the outer fixtures untouched warnings away.
        let _ = apply(&mut m, &mut p, &[]);
    }

    #[test]
    fn item_growth_past_k_rebuilds_and_stays_exact() {
        // k = 4 > m = 2: admitting item 2 lengthens every user's padded
        // top-k, which must trigger the cold re-bucket path.
        let (mut m, mut p) = dense(&[&[1.0, 4.0], &[2.0, 3.0], &[2.0, 5.0]]);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 4, 2);
        let mut former = IncrementalFormer::new(&m, &p, cfg).unwrap();
        let growth = crate::matrix::GrowthPolicy::unbounded();
        let deltas = apply_grown(&mut m, &mut p, &[(1, 2, 5.0)], growth);
        former.refresh(&m, &p, &deltas).unwrap();
        assert_eq!(m.n_items(), 3);
        assert_matches_cold(&former, &m, &p, &cfg);
        // And a follow-up ordinary refresh keeps working on the rebuilt state.
        let deltas = apply_grown(&mut m, &mut p, &[(0, 2, 1.0), (3, 0, 4.0)], growth);
        former.refresh(&m, &p, &deltas).unwrap();
        assert_matches_cold(&former, &m, &p, &cfg);
    }

    #[test]
    fn threaded_init_matches_sequential_bit_for_bit() {
        // Integer grid: the sharded Step-1 sums are exact, so the standing
        // state (buckets, keys, emitted result) is identical across thread
        // counts.
        let rows: Vec<Vec<f64>> = (0..17)
            .map(|u: u32| {
                (0..5)
                    .map(|i: u32| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        for sem in Semantics::all() {
            let base = FormationConfig::new(sem, Aggregation::Min, 2, 4);
            let seq = IncrementalFormer::new(&m, &p, base).unwrap();
            for threads in [2usize, 7] {
                let cfg = base.with_threads(threads);
                let par = IncrementalFormer::new(&m, &p, cfg).unwrap();
                assert_eq!(par.canonical_buckets(), seq.canonical_buckets());
                assert_eq!(par.result(), seq.result());
                // And both keep refreshing exactly.
                let (mut m2, mut p2) = (m.clone(), p.clone());
                let mut par = par;
                let deltas = apply(&mut m2, &mut p2, &[(3, 1, 5.0), (12, 0, 1.0)]);
                par.refresh(&m2, &p2, &deltas).unwrap();
                assert_matches_cold(&par, &m2, &p2, &cfg);
            }
        }
    }

    #[test]
    fn export_import_round_trip_is_exact_and_keeps_refreshing() {
        let (mut m, mut p) = example1();
        for sem in Semantics::all() {
            let cfg = FormationConfig::new(sem, Aggregation::Min, 2, 3);
            let mut former = IncrementalFormer::new(&m, &p, cfg).unwrap();
            let deltas = apply(&mut m, &mut p, &[(0, 0, 5.0), (4, 1, 4.0)]);
            former.refresh(&m, &p, &deltas).unwrap();
            let state = former.export_state();
            let mut restored = IncrementalFormer::import_state(&m, cfg, &state).unwrap();
            assert_eq!(restored.canonical_buckets(), former.canonical_buckets());
            assert_eq!(restored.result(), former.result());
            assert_eq!(restored.selection_lag(), former.selection_lag());
            // The restored former keeps tracking cold exactly.
            let deltas = apply(&mut m, &mut p, &[(2, 2, 4.0), (5, 0, 1.0)]);
            restored.refresh(&m, &p, &deltas).unwrap();
            former.refresh(&m, &p, &deltas).unwrap();
            assert_matches_cold(&restored, &m, &p, &cfg);
            assert_eq!(restored.result(), former.result());
        }
    }

    #[test]
    fn import_rejects_corrupt_states() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        let former = IncrementalFormer::new(&m, &p, cfg).unwrap();
        let good = former.export_state();
        // A user claimed by two buckets.
        let mut bad = good.clone();
        let u = bad.buckets[0].users[0];
        if let Some(other) = bad.buckets.get_mut(1) {
            other.users.insert(0, u);
        }
        assert!(matches!(
            IncrementalFormer::import_state(&m, cfg, &bad),
            Err(GfError::Persist(_))
        ));
        // A selection index out of range.
        let mut bad = good.clone();
        bad.selected.push(bad.buckets.len() as u32 + 7);
        assert!(matches!(
            IncrementalFormer::import_state(&m, cfg, &bad),
            Err(GfError::Persist(_))
        ));
        // A missing user (drop one bucket entirely).
        let mut bad = good.clone();
        bad.selected.clear();
        bad.buckets.pop();
        assert!(matches!(
            IncrementalFormer::import_state(&m, cfg, &bad),
            Err(GfError::Persist(_))
        ));
    }

    #[test]
    fn refresh_rejects_mismatched_matrix() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 2);
        let mut former = IncrementalFormer::new(&m, &p, cfg).unwrap();
        let (small, small_p) = dense(&[&[1.0, 2.0, 3.0]]);
        assert!(matches!(
            former.refresh(&small, &small_p, &[]),
            Err(GfError::StaleIncrementalState(_))
        ));
        assert!(matches!(
            former.refresh(
                &m,
                &p,
                &[RatingDelta {
                    user: 99,
                    item: 0,
                    score: 3.0,
                    previous: None
                }]
            ),
            Err(GfError::UserOutOfRange { .. })
        ));
    }
}
