//! Overlapping group formation — one of the paper's explicit future-work
//! directions ("groups that are possibly overlapping are also worthy of
//! study", Section 9).
//!
//! A user may belong to up to `max_memberships` groups: a music service can
//! put a listener in both a "jazz" and a "classical" segment. We keep the
//! paper's machinery and semantics and extend greedily:
//!
//! 1. run the disjoint greedy former ([`GreedyFormer`]) to get base groups;
//! 2. for every user and every *other* group, admit the user as an extra
//!    member when (a) their affinity to the group's recommended list is at
//!    least `min_affinity` (an NDCG-style score in `[0, 1]`), and (b) the
//!    admission does not lower the group's satisfaction (it never can under
//!    AV, where members add; under LM this is the natural guard).
//!
//! The objective of an overlapping grouping is still the sum of group
//! satisfactions over each group's recommended list.

use super::{FormationConfig, GroupFormer};
use crate::error::Result;
use crate::grouping::Group;
use crate::grouprec::GroupRecommender;
use crate::matrix::RatingMatrix;
use crate::ndcg::user_satisfaction;
use crate::prefs::PrefIndex;
use crate::GreedyFormer;

/// Configuration of the overlapping extension.
#[derive(Debug, Clone, Copy)]
pub struct OverlapConfig {
    /// Maximum number of groups a user may belong to (>= 1).
    pub max_memberships: usize,
    /// Minimum NDCG-style affinity of a user to a group's recommended list
    /// for an extra membership (in `[0, 1]`).
    pub min_affinity: f64,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            max_memberships: 2,
            min_affinity: 0.9,
        }
    }
}

/// An overlapping grouping: groups may share members; every user belongs to
/// at least one and at most `max_memberships` groups.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlappingGrouping {
    /// The groups with their recommended lists and satisfactions.
    pub groups: Vec<Group>,
    /// `memberships[u]` = indices of the groups user `u` belongs to.
    pub memberships: Vec<Vec<usize>>,
}

impl OverlappingGrouping {
    /// Sum of group satisfactions.
    pub fn objective(&self) -> f64 {
        self.groups.iter().map(|g| g.satisfaction).sum()
    }

    /// Number of users holding more than one membership.
    pub fn n_overlapping_users(&self) -> usize {
        self.memberships.iter().filter(|m| m.len() > 1).count()
    }

    /// Validates cover and the membership cap.
    pub fn validate(&self, n_users: u32, max_memberships: usize) -> Result<()> {
        for (u, m) in self.memberships.iter().enumerate() {
            if m.is_empty() {
                return Err(crate::GfError::InvalidGrouping(format!(
                    "user {u} has no group"
                )));
            }
            if m.len() > max_memberships {
                return Err(crate::GfError::InvalidGrouping(format!(
                    "user {u} holds {} memberships (cap {max_memberships})",
                    m.len()
                )));
            }
        }
        if self.memberships.len() != n_users as usize {
            return Err(crate::GfError::InvalidGrouping(format!(
                "memberships cover {} of {n_users} users",
                self.memberships.len()
            )));
        }
        // Group member lists must be consistent with the membership index.
        for (gi, g) in self.groups.iter().enumerate() {
            for &u in &g.members {
                if !self.memberships[u as usize].contains(&gi) {
                    return Err(crate::GfError::InvalidGrouping(format!(
                        "group {gi} lists user {u} but the index does not"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Greedy overlapping group formation (extension beyond the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlappingFormer {
    /// Overlap knobs.
    pub overlap: OverlapConfig,
}

impl OverlappingFormer {
    /// A former with the default overlap configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the overlap configuration.
    pub fn with_overlap(mut self, overlap: OverlapConfig) -> Self {
        self.overlap = overlap;
        self
    }

    /// Forms base groups with [`GreedyFormer`], then admits extra
    /// memberships as described in the module docs.
    pub fn form(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<OverlappingGrouping> {
        let base = GreedyFormer::new().form(matrix, prefs, cfg)?;
        let rec = GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy);
        let mut groups = base.grouping.groups;
        let mut memberships: Vec<Vec<usize>> = vec![Vec::new(); matrix.n_users() as usize];
        for (gi, g) in groups.iter().enumerate() {
            for &u in &g.members {
                memberships[u as usize].push(gi);
            }
        }

        // Candidate admissions, processed in (user, group) order for
        // determinism. Affinity is measured against the group's *current*
        // list; satisfaction is re-checked so LM groups never degrade.
        for u in 0..matrix.n_users() {
            #[allow(clippy::needless_range_loop)] // `groups` is mutated in the body
            for gi in 0..groups.len() {
                if memberships[u as usize].len() >= self.overlap.max_memberships.max(1) {
                    break;
                }
                if memberships[u as usize].contains(&gi) {
                    continue;
                }
                let items: Vec<u32> = groups[gi].items().collect();
                let affinity = user_satisfaction(matrix, prefs, u, &items, cfg.k);
                if affinity < self.overlap.min_affinity {
                    continue;
                }
                let mut extended = groups[gi].members.clone();
                let pos = extended.partition_point(|&x| x < u);
                extended.insert(pos, u);
                let new_sat = rec.satisfaction(&extended, cfg.k, cfg.aggregation);
                if new_sat + 1e-9 < groups[gi].satisfaction {
                    continue; // admission would hurt the group
                }
                groups[gi] = Group {
                    top_k: rec.top_k(&extended, cfg.k),
                    members: extended,
                    satisfaction: new_sat,
                };
                memberships[u as usize].push(gi);
            }
        }

        let result = OverlappingGrouping {
            groups,
            memberships,
        };
        debug_assert!(result
            .validate(matrix.n_users(), self.overlap.max_memberships.max(1))
            .is_ok());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregation;
    use crate::scale::RatingScale;
    use crate::semantics::Semantics;

    /// Two taste blocks plus one user who genuinely likes both.
    fn bridged() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[5.0, 4.0, 1.0, 1.0][..], // block A
                &[5.0, 4.0, 1.0, 1.0],
                &[1.0, 1.0, 5.0, 4.0], // block B
                &[1.0, 1.0, 5.0, 4.0],
                &[5.0, 4.0, 5.0, 4.0], // the bridge
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn bridge_user_joins_both_blocks() {
        let (m, p) = bridged();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 3);
        let result = OverlappingFormer::new()
            .with_overlap(OverlapConfig {
                max_memberships: 2,
                min_affinity: 0.85,
            })
            .form(&m, &p, &cfg)
            .unwrap();
        result.validate(5, 2).unwrap();
        assert!(
            result.n_overlapping_users() >= 1,
            "the bridge user should hold two memberships: {:?}",
            result.memberships
        );
    }

    #[test]
    fn overlap_never_reduces_objective() {
        let (m, p) = bridged();
        for sem in Semantics::all() {
            let cfg = FormationConfig::new(sem, Aggregation::Min, 2, 3);
            let base = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
            let over = OverlappingFormer::new().form(&m, &p, &cfg).unwrap();
            assert!(
                over.objective() >= base.objective - 1e-9,
                "{sem}: {} < {}",
                over.objective(),
                base.objective
            );
        }
    }

    #[test]
    fn membership_cap_one_reduces_to_disjoint() {
        let (m, p) = bridged();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 3);
        let result = OverlappingFormer::new()
            .with_overlap(OverlapConfig {
                max_memberships: 1,
                min_affinity: 0.0,
            })
            .form(&m, &p, &cfg)
            .unwrap();
        assert_eq!(result.n_overlapping_users(), 0);
        result.validate(5, 1).unwrap();
    }

    #[test]
    fn strict_affinity_blocks_admissions() {
        let (m, p) = bridged();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 3);
        let strict = OverlappingFormer::new()
            .with_overlap(OverlapConfig {
                max_memberships: 3,
                min_affinity: 1.1, // impossible
            })
            .form(&m, &p, &cfg)
            .unwrap();
        assert_eq!(strict.n_overlapping_users(), 0);
    }

    #[test]
    fn lm_groups_never_degrade() {
        let (m, p) = bridged();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        let base = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let over = OverlappingFormer::new()
            .with_overlap(OverlapConfig {
                max_memberships: 3,
                min_affinity: 0.0,
            })
            .form(&m, &p, &cfg)
            .unwrap();
        // Pair up by base order: satisfaction must be >= the base group's.
        for (b, o) in base.grouping.groups.iter().zip(&over.groups) {
            assert!(o.satisfaction >= b.satisfaction - 1e-9);
        }
    }
}
