//! Sharded group formation for paper-scale populations.
//!
//! The paper's scalability experiments (Figures 4 and 6) run greedy
//! formation over 100k–200k users. [`ShardedFormer`] makes those sweeps
//! parallel: it partitions the population into `s` contiguous user shards,
//! runs a full [`GreedyFormer`] per shard (each shard gets a proportional
//! slice of the group budget `ell`), translates the per-shard groupings
//! back to global user ids, and finishes with a **bounded repair pass**
//! that merges the lowest-satisfaction groups whenever the allocation
//! overshot the budget (only possible when `ell < s`, where every shard
//! still needs at least one group).
//!
//! The shard count is an algorithmic knob — it shapes the partition and
//! the budget split — while concurrency is bounded separately by
//! `FormationConfig::n_threads` worker threads (`0` = auto), so a large
//! shard count never translates into a large OS thread count.
//!
//! ## What sharding changes
//!
//! Groups never span shards, so the result can differ from the unsharded
//! greedy: users with identical preference keys that land in different
//! shards are not bundled. Everything else is preserved — the output is a
//! valid partition into at most `ell` groups, and each shard's run carries
//! the paper's guarantees on its own sub-instance.
//!
//! ## Error bound
//!
//! Under least misery, each shard's greedy trails the optimal formation of
//! *that shard* under its allocated budget by at most `r_max` (Min
//! aggregation, Theorem 2 with split-aware selection) or `k·r_max` (Sum,
//! Theorem 3). Summing over shards: the sharded objective trails the best
//! **shard-respecting** partition under the same per-shard budgets by at
//! most `s·r_max` (respectively `s·k·r_max`). Each repair merge can
//! additionally lose at most the satisfaction of the two groups it merges
//! (satisfactions are non-negative on non-negative rating scales), and at
//! most `max(0, s - ell)` merges ever run.
//!
//! ## Determinism
//!
//! Shard boundaries are a pure function of `(n_users, shard count)`; each
//! shard's greedy is deterministic; shards are merged in ascending shard
//! order and repair breaks ties by group index. Two runs with the same
//! configuration produce identical groupings.

use super::{FormationConfig, FormationResult, GreedyFormer, GroupFormer};
use crate::error::Result;
use crate::grouping::{Group, Grouping};
use crate::grouprec::GroupRecommender;
use crate::matrix::RatingMatrix;
use crate::prefs::PrefIndex;
use crate::threads::{even_ranges, resolve_threads};

/// Runs a [`GreedyFormer`] per user-shard in parallel and merges the
/// per-shard groupings. See the [module docs](self) for semantics, error
/// bound and determinism.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardedFormer {
    inner: GreedyFormer,
    /// Number of shards; `0` = auto (one per worker thread resolved from
    /// `FormationConfig::n_threads`).
    n_shards: usize,
}

impl ShardedFormer {
    /// A sharded former with auto shard count and a paper-faithful
    /// [`GreedyFormer`] per shard.
    pub fn new() -> Self {
        ShardedFormer {
            inner: GreedyFormer::new(),
            n_shards: 0,
        }
    }

    /// Overrides the shard count (`0` = auto: one shard per worker thread,
    /// resolved from `FormationConfig::n_threads` via
    /// [`crate::resolve_threads`]). Always clamped to the population size.
    pub fn with_shards(mut self, n_shards: usize) -> Self {
        self.n_shards = n_shards;
        self
    }

    /// Overrides the per-shard greedy (e.g. to enable split-aware
    /// selection, which restores the per-shard Theorem-2/3 bounds).
    pub fn with_inner(mut self, inner: GreedyFormer) -> Self {
        self.inner = inner;
        self
    }

    /// The shard count used for a population of `n` users.
    fn shards_for(&self, cfg: &FormationConfig, n: usize) -> usize {
        let requested = if self.n_shards == 0 {
            resolve_threads(cfg.n_threads, n)
        } else {
            self.n_shards
        };
        requested.clamp(1, n.max(1))
    }
}

/// Splits the group budget proportionally to shard sizes: every shard gets
/// at least one group (a shard's users must go somewhere) and at most
/// `len` (a shard cannot host more non-empty groups than users); leftover
/// budget goes to the largest shards first. The total can exceed `ell`
/// only when `ell < s` — the repair pass trims that case.
fn allocate_budgets(ell: usize, sizes: &[usize], n: usize) -> Vec<usize> {
    let mut budgets: Vec<usize> = sizes
        .iter()
        .map(|&len| ((ell * len) / n.max(1)).clamp(1, len.max(1)))
        .collect();
    let mut total: usize = budgets.iter().sum();
    if total < ell {
        // Largest shards first, ties by shard index for determinism.
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by_key(|&s| (usize::MAX - sizes[s], s));
        'outer: loop {
            let mut gave = false;
            for &s in &order {
                if total == ell {
                    break 'outer;
                }
                if budgets[s] < sizes[s] {
                    budgets[s] += 1;
                    total += 1;
                    gave = true;
                }
            }
            if !gave {
                break; // every shard saturated: Σ sizes < ell, fine
            }
        }
    }
    budgets
}

/// Rescores `group` from its member list with the full recommendation
/// engine under `cfg`: recomputes the top-`k` list and satisfaction. This
/// is the repair-pass scoring primitive shared by [`repair_to_budget`],
/// the greedy's final merged group and the incremental former's tail
/// splice ([`super::incremental`]).
pub(crate) fn rescore_group(matrix: &RatingMatrix, cfg: &FormationConfig, group: &mut Group) {
    let rec = GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy);
    let top_k = rec.top_k(&group.members, cfg.k);
    let scores: Vec<f64> = top_k.iter().map(|&(_, s)| s).collect();
    group.satisfaction = cfg.aggregation.apply(&scores);
    group.top_k = top_k;
}

/// Merges groups down to `ell` by repeatedly combining the two
/// lowest-satisfaction groups and rescoring the union with the full
/// recommendation engine. At most `groups.len() - ell` merges run.
fn repair_to_budget(matrix: &RatingMatrix, cfg: &FormationConfig, groups: &mut Vec<Group>) {
    while groups.len() > cfg.ell.max(1) {
        // Two lowest satisfactions; ties broken by group index.
        let (mut lo, mut second) = (0usize, 1usize);
        if groups[second].satisfaction < groups[lo].satisfaction {
            std::mem::swap(&mut lo, &mut second);
        }
        for gi in 2..groups.len() {
            let s = groups[gi].satisfaction;
            if s < groups[lo].satisfaction {
                second = lo;
                lo = gi;
            } else if s < groups[second].satisfaction {
                second = gi;
            }
        }
        let (a, b) = (lo.min(second), lo.max(second));
        let absorbed = groups.swap_remove(b);
        let target = &mut groups[a];
        target.members.extend_from_slice(&absorbed.members);
        target.members.sort_unstable();
        rescore_group(matrix, cfg, target);
    }
}

impl GroupFormer for ShardedFormer {
    fn name(&self, cfg: &FormationConfig) -> String {
        format!("SHARD-{}", cfg.grd_name())
    }

    fn form(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult> {
        cfg.validate(matrix)?;
        let n = matrix.n_users() as usize;
        let shards = self.shards_for(cfg, n);
        if shards <= 1 {
            return self.inner.form(matrix, prefs, cfg);
        }

        let ranges = even_ranges(n, shards);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let budgets = allocate_budgets(cfg.ell, &sizes, n);
        let all_items: Vec<u32> = (0..matrix.n_items()).collect();

        // Shard jobs run on a bounded worker pool — the shard count is an
        // *algorithmic* knob (budget granularity, partition shape), the
        // worker count an *execution* one (`cfg.n_threads`, `0` = auto),
        // so `with_shards(5000)` never spawns 5000 OS threads. Worker `w`
        // takes shards w, w + workers, … round-robin. Each job slices the
        // matrix to the shard's users (all items kept, so item ids are
        // global), rebuilds the preference index on the slice and runs the
        // inner greedy with the shard's budget. Shard-local user id `lu`
        // maps back to global id `range.start + lu` because `submatrix`
        // re-indexes densely in the order given.
        let workers = resolve_threads(cfg.n_threads, shards);
        let mut shard_results: Vec<Option<Result<FormationResult>>> =
            (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let ranges = &ranges;
                    let budgets = &budgets;
                    let all_items = &all_items;
                    let inner = self.inner;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut s = w;
                        while s < shards {
                            let users: Vec<u32> = ranges[s].clone().map(|u| u as u32).collect();
                            let result = matrix.submatrix(&users, all_items).and_then(|sub| {
                                let sub_prefs = PrefIndex::build(&sub);
                                let mut sub_cfg = *cfg;
                                sub_cfg.ell = budgets[s];
                                sub_cfg.n_threads = 1; // shards are the parallelism
                                inner.form(&sub, &sub_prefs, &sub_cfg)
                            });
                            out.push((s, result));
                            s += workers;
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (s, r) in h.join().expect("shard worker panicked") {
                    shard_results[s] = Some(r);
                }
            }
        });

        let mut groups: Vec<Group> = Vec::new();
        let mut n_buckets = 0usize;
        for (range, result) in ranges.iter().zip(shard_results) {
            let shard = result.expect("every shard processed exactly once")?;
            n_buckets += shard.n_buckets;
            let base = range.start as u32;
            for mut g in shard.grouping.groups {
                for u in &mut g.members {
                    *u += base;
                }
                groups.push(g);
            }
        }
        repair_to_budget(matrix, cfg, &mut groups);

        let grouping = Grouping::new(groups);
        debug_assert!(grouping.validate(matrix.n_users(), cfg.ell).is_ok());
        let objective = grouping.objective();
        let _ = prefs; // global index unused: shards rebuild on their slice
        Ok(FormationResult {
            grouping,
            objective,
            n_buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregation;
    use crate::metrics::recompute_objective;
    use crate::scale::RatingScale;
    use crate::semantics::Semantics;

    fn synthetic(n: u32, m: u32) -> (RatingMatrix, PrefIndex) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|u| {
                (0..m)
                    .map(|i| {
                        1.0 + ((u as usize * 13 + i as usize * 5 + u as usize * i as usize) % 5)
                            as f64
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let matrix = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
        let prefs = PrefIndex::build(&matrix);
        (matrix, prefs)
    }

    #[test]
    fn one_shard_is_exactly_the_greedy() {
        let (m, p) = synthetic(17, 6);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 4);
        let plain = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let sharded = ShardedFormer::new()
            .with_shards(1)
            .form(&m, &p, &cfg)
            .unwrap();
        assert_eq!(plain.grouping, sharded.grouping);
        assert_eq!(plain.n_buckets, sharded.n_buckets);
    }

    #[test]
    fn sharded_output_is_a_valid_partition() {
        let (m, p) = synthetic(23, 7);
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                for shards in [2usize, 3, 7] {
                    for ell in [1usize, 4, 9] {
                        let cfg = FormationConfig::new(sem, agg, 2, ell);
                        let r = ShardedFormer::new()
                            .with_shards(shards)
                            .form(&m, &p, &cfg)
                            .unwrap();
                        r.grouping.validate(m.n_users(), ell).unwrap();
                        let recomputed =
                            recompute_objective(&m, &r.grouping, sem, agg, cfg.policy, cfg.k);
                        assert!(
                            (recomputed - r.objective).abs() < 1e-9,
                            "{sem} {agg} s={shards} ell={ell}: {} vs {recomputed}",
                            r.objective
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn repair_pass_trims_when_budget_below_shards() {
        // 6 shards but only ell = 2 groups allowed: every shard forms at
        // least one group, so repair must merge at least 4 away.
        let (m, p) = synthetic(18, 5);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 2);
        let r = ShardedFormer::new()
            .with_shards(6)
            .form(&m, &p, &cfg)
            .unwrap();
        assert!(r.grouping.len() <= 2);
        r.grouping.validate(18, 2).unwrap();
    }

    #[test]
    fn deterministic_for_fixed_configuration() {
        let (m, p) = synthetic(29, 6);
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 3, 5);
        let former = ShardedFormer::new().with_shards(4);
        let a = former.form(&m, &p, &cfg).unwrap();
        let b = former.form(&m, &p, &cfg).unwrap();
        assert_eq!(a.grouping, b.grouping);
    }

    #[test]
    fn auto_mode_resolves_from_config_threads() {
        let (m, p) = synthetic(12, 4);
        // n_threads = 1 (default): auto sharding degrades to plain greedy.
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let plain = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let sharded = ShardedFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(plain.grouping, sharded.grouping);
        // Explicit multi-threaded config: still a valid partition.
        let cfg = cfg.with_threads(3);
        let r = ShardedFormer::new().form(&m, &p, &cfg).unwrap();
        r.grouping.validate(12, 3).unwrap();
    }

    #[test]
    fn more_shards_than_users_is_clamped() {
        let (m, p) = synthetic(3, 4);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = ShardedFormer::new()
            .with_shards(64)
            .form(&m, &p, &cfg)
            .unwrap();
        r.grouping.validate(3, 3).unwrap();
    }

    #[test]
    fn budget_allocation_is_proportional_and_covering() {
        assert_eq!(allocate_budgets(10, &[50, 50], 100), vec![5, 5]);
        assert_eq!(allocate_budgets(10, &[80, 20], 100), vec![8, 2]);
        // Every shard gets at least one group even when ell < shards.
        assert_eq!(allocate_budgets(2, &[5, 5, 5, 5], 20), vec![1, 1, 1, 1]);
        // Leftover goes to the largest shard first.
        assert_eq!(allocate_budgets(4, &[7, 5, 5], 17), vec![2, 1, 1]);
        // Budgets never exceed shard sizes; undistributable budget is dropped.
        assert_eq!(allocate_budgets(9, &[2, 2], 4), vec![2, 2]);
    }

    #[test]
    fn sharded_name() {
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10);
        assert_eq!(ShardedFormer::new().name(&cfg), "SHARD-GRD-LM-MIN");
    }
}
