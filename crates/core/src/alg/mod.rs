//! Group formation algorithms.
//!
//! The paper's six greedy algorithms — `GRD-LM-MIN`, `GRD-LM-MAX`,
//! `GRD-LM-SUM` (Section 4) and `GRD-AV-MIN`, `GRD-AV-MAX`, `GRD-AV-SUM`
//! (Section 5) — share one three-step skeleton:
//!
//! 1. **Intermediate groups**: hash every user by a key derived from her
//!    personal top-`k` preference list (the key depends on semantics and
//!    aggregation, see [`bucket`]), bundling indistinguishable users.
//! 2. **Greedy selection**: pop the `ell - 1` intermediate groups with the
//!    highest group satisfaction from a max-heap.
//! 3. **Last group**: merge all remaining users into the `ell`-th group and
//!    score it with the full group recommendation engine.
//!
//! All six variants are provided by a single [`GreedyFormer`] parameterised
//! by the [`FormationConfig`]. Under least misery, `GRD-LM-MIN` and
//! `GRD-LM-SUM` carry the paper's absolute-error guarantees (Theorems 2–3):
//! at most `r_max` and `k * r_max` below the optimum respectively.
//!
//! ## Parallelism
//!
//! Two independent knobs, both following the workspace-wide convention of
//! [`crate::resolve_threads`] (`0` = auto via `available_parallelism`,
//! anything else literal, always clamped to the amount of work):
//!
//! * [`FormationConfig::with_threads`] threads Step 1 (bucket building)
//!   inside [`GreedyFormer`]: scoped workers build per-shard bucket maps
//!   over contiguous user ranges and merge them in shard order. Results
//!   are **identical to the single-threaded path** — membership, keys and
//!   per-position minima unconditionally; per-position sums bit-for-bit
//!   whenever scores sit on a rating grid (see
//!   [`bucket::build_buckets_threaded`] for the one `UserMean` caveat).
//! * [`ShardedFormer`] partitions the *population* into contiguous user
//!   shards, runs a full [`GreedyFormer`] per shard in parallel and merges
//!   the per-shard groupings with a bounded repair pass. This changes the
//!   algorithm (groups never span shards), trading a bounded amount of
//!   objective for near-linear scaling; see [`shard`] for the error bound.
//!
//! Everything is deterministic for a fixed configuration: shard boundaries
//! are a pure function of `(n_users, thread count)` and every merge runs in
//! shard order.

pub mod bucket;
mod greedy;
pub mod incremental;
pub mod overlap;
pub mod shard;

pub use greedy::GreedyFormer;
pub use incremental::{FormerBucket, FormerState, IncrementalFormer, RatingDelta};
pub use overlap::{OverlapConfig, OverlappingFormer, OverlappingGrouping};
pub use shard::ShardedFormer;

use crate::aggregate::Aggregation;
use crate::error::{GfError, Result};
use crate::grouping::Grouping;
use crate::grouprec::MissingPolicy;
use crate::matrix::{GrowthPolicy, RatingMatrix};
use crate::prefs::PrefIndex;
use crate::semantics::Semantics;

/// How a serving layer refreshes its standing formation when rating
/// updates arrive. Threaded through [`FormationConfig`] so benches and the
/// `gf-serve` binary can sweep the refresh strategies against each other;
/// pure formation runs ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RefreshMode {
    /// Patch incrementally ([`IncrementalFormer`]) while the dirty set
    /// stays small — at most `max(64, n/8)` users — and rebuild cold
    /// beyond that, where re-bucketing everything is no longer slower.
    #[default]
    Auto,
    /// Always rebuild the formation from scratch.
    Cold,
    /// Always patch incrementally, whatever the dirty-set size.
    Incremental,
}

impl RefreshMode {
    /// Whether a refresh touching `dirty_users` out of `n_users` should
    /// take the incremental path under this mode.
    pub fn use_incremental(self, dirty_users: usize, n_users: usize) -> bool {
        match self {
            RefreshMode::Cold => false,
            RefreshMode::Incremental => true,
            RefreshMode::Auto => dirty_users <= (n_users / 8).max(64),
        }
    }

    /// Lower-case tag used in `/stats` bodies and CLI flags.
    pub fn tag(self) -> &'static str {
        match self {
            RefreshMode::Auto => "auto",
            RefreshMode::Cold => "cold",
            RefreshMode::Incremental => "incremental",
        }
    }
}

/// Everything that parameterises a group formation run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FormationConfig {
    /// Group recommendation semantics (LM or AV).
    pub semantics: Semantics,
    /// Aggregation over the recommended top-`k` list.
    pub aggregation: Aggregation,
    /// Length of the recommended item list.
    pub k: usize,
    /// Maximum number of groups `ell`.
    pub ell: usize,
    /// Score for unrated `(member, item)` pairs.
    pub policy: MissingPolicy,
    /// Worker threads for the parallel hot paths (Step-1 bucket building;
    /// the shard count of [`ShardedFormer`] in auto mode). `0` = auto
    /// (`available_parallelism`); the default is `1` (single-threaded).
    /// See [`crate::resolve_threads`].
    pub n_threads: usize,
    /// How serving layers refresh the formation on rating updates
    /// (ignored by one-shot formation runs). Default [`RefreshMode::Auto`].
    pub refresh: RefreshMode,
    /// Whether the user/item universe may grow at serve time (ignored by
    /// one-shot formation runs over a fixed matrix). Default
    /// [`GrowthPolicy::Fixed`].
    pub growth: GrowthPolicy,
}

impl FormationConfig {
    /// A configuration with the default [`MissingPolicy::Min`] and
    /// single-threaded execution.
    pub fn new(semantics: Semantics, aggregation: Aggregation, k: usize, ell: usize) -> Self {
        FormationConfig {
            semantics,
            aggregation,
            k,
            ell,
            policy: MissingPolicy::Min,
            n_threads: 1,
            refresh: RefreshMode::Auto,
            growth: GrowthPolicy::Fixed,
        }
    }

    /// Overrides the missing-rating policy.
    pub fn with_policy(mut self, policy: MissingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the worker-thread knob: `0` = auto
    /// (`available_parallelism`), any other value literal, always clamped
    /// to the available work at the point of use.
    pub fn with_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    /// Overrides the serving-layer refresh strategy.
    pub fn with_refresh(mut self, refresh: RefreshMode) -> Self {
        self.refresh = refresh;
        self
    }

    /// Overrides the serving-layer population-growth policy.
    pub fn with_growth(mut self, growth: GrowthPolicy) -> Self {
        self.growth = growth;
        self
    }

    /// Validates `k >= 1`, `ell >= 1` and a non-trivial matrix.
    pub fn validate(&self, matrix: &RatingMatrix) -> Result<()> {
        if self.k == 0 {
            return Err(GfError::InvalidK { k: self.k });
        }
        if self.ell == 0 {
            return Err(GfError::InvalidEll { ell: self.ell });
        }
        if matrix.n_users() == 0 || matrix.n_items() == 0 {
            return Err(GfError::EmptyMatrix);
        }
        Ok(())
    }

    /// The paper's name for the greedy algorithm under this configuration,
    /// e.g. `GRD-LM-MIN`.
    pub fn grd_name(&self) -> String {
        format!("GRD-{}-{}", self.semantics.tag(), self.aggregation.tag())
    }

    /// The absolute-error guarantee of the greedy algorithm under this
    /// configuration, when one is proven in the paper:
    /// `r_max` for LM + Min (Theorem 2), `k * r_max` for LM + Sum
    /// (Theorem 3), `None` otherwise.
    pub fn error_bound(&self, matrix: &RatingMatrix) -> Option<f64> {
        match (self.semantics, self.aggregation) {
            (Semantics::LeastMisery, Aggregation::Min) => Some(matrix.scale().lm_min_error_bound()),
            (Semantics::LeastMisery, Aggregation::Sum) => {
                Some(matrix.scale().lm_sum_error_bound(self.k))
            }
            _ => None,
        }
    }
}

/// The outcome of a formation run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FormationResult {
    /// The formed groups with their recommended lists and satisfactions.
    pub grouping: Grouping,
    /// The objective `Obj = Σ_j gs_j(I_gj^k)` of Section 2.4.
    pub objective: f64,
    /// How many intermediate groups (unique hash keys) Step 1 produced.
    /// Section 5 observes AV produces fewer keys than LM; this exposes it.
    pub n_buckets: usize,
}

/// A group formation algorithm.
pub trait GroupFormer {
    /// Human-readable algorithm name for the given configuration.
    fn name(&self, cfg: &FormationConfig) -> String;

    /// Forms at most `cfg.ell` groups over all users of `matrix`.
    ///
    /// `prefs` must be built from the same matrix (callers typically build
    /// it once and reuse it across runs).
    fn form(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::RatingScale;

    #[test]
    fn grd_names() {
        let c = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10);
        assert_eq!(c.grd_name(), "GRD-LM-MIN");
        let c = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 5, 10);
        assert_eq!(c.grd_name(), "GRD-AV-SUM");
    }

    #[test]
    fn validation() {
        let m = RatingMatrix::from_dense(&[&[3.0]], RatingScale::one_to_five()).unwrap();
        assert!(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 1)
                .validate(&m)
                .is_ok()
        );
        assert!(matches!(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 0, 1).validate(&m),
            Err(GfError::InvalidK { .. })
        ));
        assert!(matches!(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 0).validate(&m),
            Err(GfError::InvalidEll { .. })
        ));
    }

    #[test]
    fn error_bounds_only_for_lm_min_and_sum() {
        let m = RatingMatrix::from_dense(&[&[3.0]], RatingScale::one_to_five()).unwrap();
        let bound = |sem, agg, k| FormationConfig::new(sem, agg, k, 2).error_bound(&m);
        assert_eq!(
            bound(Semantics::LeastMisery, Aggregation::Min, 3),
            Some(5.0)
        );
        assert_eq!(
            bound(Semantics::LeastMisery, Aggregation::Sum, 3),
            Some(15.0)
        );
        assert_eq!(bound(Semantics::LeastMisery, Aggregation::Max, 3), None);
        assert_eq!(bound(Semantics::AggregateVoting, Aggregation::Min, 3), None);
    }
}
