//! Steps 2–3 of the greedy algorithms (Algorithm 1 of the paper) and the
//! [`GreedyFormer`] front-end covering all six `GRD-*` variants.

use super::bucket::{self, Bucket};
use super::{FormationConfig, FormationResult, GroupFormer};
use crate::aggregate::Aggregation;
use crate::error::Result;
use crate::grouping::{Group, Grouping};
use crate::grouprec::GroupRecommender;
use crate::matrix::RatingMatrix;
use crate::prefs::PrefIndex;
use crate::semantics::Semantics;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The paper's greedy group formation algorithm, parameterised by a
/// [`FormationConfig`] into `GRD-LM-MIN`, `GRD-LM-MAX`, `GRD-LM-SUM`,
/// `GRD-AV-MIN`, `GRD-AV-MAX` or `GRD-AV-SUM`.
///
/// Runs in `O(n k + ℓ log n)` after the `O(Σ d_u log d_u)` preference index
/// build, plus the cost of scoring the final merged group (Sections 4.3 and
/// 5.1 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyFormer {
    split_surplus: bool,
    split_aware: bool,
}

impl GreedyFormer {
    /// A paper-faithful greedy former.
    pub fn new() -> Self {
        GreedyFormer {
            split_surplus: false,
            split_aware: false,
        }
    }

    /// Enables *split-aware selection* under least misery, a one-line fix
    /// we found necessary for the paper's Theorems 2–3 to hold
    /// unconditionally.
    ///
    /// The paper's Step 2 pops a whole intermediate group per iteration.
    /// When several users share a hash key and the budget `ell` is
    /// generous, the optimum splits such users into multiple groups (each
    /// keeps the same LM score), and the greedy's absolute error grows with
    /// the duplicate multiplicity — e.g. three identical users with
    /// personal score `s` and `ell = 4` give `OPT - GRD = 2s > r_max`.
    /// Split-aware selection instead emits *one* user per pop and re-inserts
    /// the bucket remainder at its (unchanged) LM score, which restores the
    /// `<= r_max` (Min) / `<= k·r_max` (Sum) bounds for any input with a
    /// non-negative rating scale. No effect under AV semantics, where
    /// satisfaction is additive and splitting cannot gain.
    pub fn with_split_aware_selection(mut self, enabled: bool) -> Self {
        self.split_aware = enabled;
        self
    }

    /// Enables *surplus splitting*, a small extension beyond the paper:
    /// when Step 1 produces fewer intermediate groups than the budget
    /// `ell`, the spare budget is spent splitting users out of the
    /// highest-value groups whenever that strictly increases the objective
    /// (it never does under AV, where satisfaction is additive in members;
    /// under LM each split adds the singleton's personal satisfaction).
    pub fn with_surplus_splitting(mut self, enabled: bool) -> Self {
        self.split_surplus = enabled;
        self
    }
}

/// Max-heap entry wrapping a bucket with the ordering of
/// [`bucket::bucket_order`]. The satisfaction is cached at construction:
/// for Sum aggregation it costs O(k) to compute, and heap maintenance
/// performs O(B log B) comparisons — recomputing per comparison made large
/// top-k runs (k = 625 in Figure 5) an order of magnitude slower.
struct HeapEntry {
    sat: f64,
    bucket: Bucket,
    semantics: Semantics,
    aggregation: Aggregation,
}

impl HeapEntry {
    fn new(bucket: Bucket, semantics: Semantics, aggregation: Aggregation) -> Self {
        let sat = bucket.satisfaction(semantics, aggregation);
        HeapEntry {
            sat,
            bucket,
            semantics,
            aggregation,
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher satisfaction pops first (cached fast path); full
        // bucket_order only breaks exact ties. bucket_order returns Less
        // for the bucket that should be picked first; BinaryHeap pops the
        // greatest, so reverse it.
        self.sat.total_cmp(&other.sat).then_with(|| {
            bucket::bucket_order(
                &self.bucket,
                &other.bucket,
                self.semantics,
                self.aggregation,
            )
            .reverse()
        })
    }
}

impl GroupFormer for GreedyFormer {
    fn name(&self, cfg: &FormationConfig) -> String {
        cfg.grd_name()
    }

    fn form(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult> {
        cfg.validate(matrix)?;
        // Step 1: intermediate groups (threaded when cfg.n_threads asks
        // for it; resolves to the sequential path at one worker).
        let buckets = bucket::build_buckets_threaded(
            matrix,
            prefs,
            cfg.semantics,
            cfg.aggregation,
            cfg.policy,
            cfg.k,
            cfg.n_threads,
        );
        let n_buckets = buckets.len();
        let mut heap: BinaryHeap<HeapEntry> = buckets
            .into_iter()
            .map(|bucket| HeapEntry::new(bucket, cfg.semantics, cfg.aggregation))
            .collect();

        // Step 2: greedily emit the ell - 1 best intermediate groups.
        let split_buckets = self.split_aware && cfg.semantics == Semantics::LeastMisery;
        let mut groups: Vec<Group> = Vec::with_capacity(cfg.ell.min(n_buckets));
        while groups.len() + 1 < cfg.ell {
            let Some(entry) = heap.pop() else { break };
            if split_buckets && entry.bucket.users.len() > 1 {
                // Emit one user; the remainder keeps the same LM score and
                // competes again (it may be split further).
                let (single, remainder) = split_bucket(matrix, prefs, cfg, entry.bucket);
                groups.push(bucket_to_group(single, cfg));
                heap.push(HeapEntry::new(remainder, cfg.semantics, cfg.aggregation));
            } else {
                groups.push(bucket_to_group(entry.bucket, cfg));
            }
        }

        // Step 3: merge everything left into the final group and score it
        // with the full recommendation engine (the shared repair-pass
        // rescoring used by ShardedFormer and IncrementalFormer too).
        let mut remaining: Vec<u32> = heap
            .into_iter()
            .flat_map(|e| e.bucket.users.into_iter())
            .collect();
        remaining.sort_unstable();
        if !remaining.is_empty() {
            let mut tail = Group {
                members: remaining,
                top_k: Vec::new(),
                satisfaction: 0.0,
            };
            super::shard::rescore_group(matrix, cfg, &mut tail);
            groups.push(tail);
        }

        if self.split_surplus && groups.len() < cfg.ell {
            split_surplus(matrix, cfg, &mut groups);
        }

        let grouping = Grouping::new(groups);
        debug_assert!(grouping.validate(matrix.n_users(), cfg.ell).is_ok());
        let objective = grouping.objective();
        Ok(FormationResult {
            grouping,
            objective,
            n_buckets,
        })
    }
}

/// Splits the lowest-id user out of a multi-user bucket, rebuilding the
/// remainder's per-position score vectors from the members' personal lists.
fn split_bucket(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    cfg: &FormationConfig,
    mut b: Bucket,
) -> (Bucket, Bucket) {
    debug_assert!(b.users.len() > 1);
    let lowest_pos = b
        .users
        .iter()
        .enumerate()
        .min_by_key(|&(_, &u)| u)
        .map(|(pos, _)| pos)
        .expect("non-empty bucket");
    let user = b.users.swap_remove(lowest_pos);
    let (_, single_scores) = bucket::personal_top_k(matrix, prefs, cfg.policy, user, cfg.k);
    let single = Bucket {
        items: b.items.clone(),
        users: vec![user],
        pos_min: single_scores.clone(),
        pos_sum: single_scores,
    };
    // Rebuild the remainder's vectors exactly.
    let len = b.pos_min.len();
    b.pos_min = vec![f64::INFINITY; len];
    b.pos_sum = vec![0.0; len];
    for idx in 0..b.users.len() {
        let u = b.users[idx];
        let (_, scores) = bucket::personal_top_k(matrix, prefs, cfg.policy, u, cfg.k);
        b.accumulate_scores(&scores);
    }
    (single, b)
}

/// Converts a popped bucket into an output group. The bucket's shared item
/// sequence *is* the group's recommended top-`k` list, with per-item group
/// scores given by the bucket's score vector (see [`bucket`] docs). Shared
/// with [`super::incremental`], which emits spliced buckets the same way.
pub(crate) fn bucket_to_group(bucket: Bucket, cfg: &FormationConfig) -> Group {
    let satisfaction = bucket.satisfaction(cfg.semantics, cfg.aggregation);
    let vector = bucket.score_vector(cfg.semantics).to_vec();
    let mut members = bucket.users;
    members.sort_unstable();
    Group {
        members,
        top_k: bucket.items.iter().copied().zip(vector).collect(),
        satisfaction,
    }
}

/// Spends leftover group budget splitting singletons out of existing groups
/// while doing so strictly improves the objective.
fn split_surplus(matrix: &RatingMatrix, cfg: &FormationConfig, groups: &mut Vec<Group>) {
    let rec = GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy);
    let score = |members: &[u32]| -> f64 { rec.satisfaction(members, cfg.k, cfg.aggregation) };
    while groups.len() < cfg.ell {
        // Find the split with the largest strict gain.
        let mut best: Option<(usize, usize, f64)> = None; // (group, member pos, gain)
        for (gi, g) in groups.iter().enumerate() {
            if g.len() < 2 {
                continue;
            }
            for (pos, &u) in g.members.iter().enumerate() {
                let rest: Vec<u32> = g.members.iter().copied().filter(|&v| v != u).collect();
                let gain = score(&[u]) + score(&rest) - g.satisfaction;
                if gain > 1e-9 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((gi, pos, gain));
                }
            }
        }
        let Some((gi, pos, _)) = best else { break };
        let u = groups[gi].members.remove(pos);
        let rest_members = groups[gi].members.clone();
        let rest_top = rec.top_k(&rest_members, cfg.k);
        groups[gi] = Group {
            satisfaction: score(&rest_members),
            top_k: rest_top,
            members: rest_members,
        };
        let singleton_top = rec.top_k(&[u], cfg.k);
        groups.push(Group {
            satisfaction: score(&[u]),
            top_k: singleton_top,
            members: vec![u],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouprec::MissingPolicy;
    use crate::scale::RatingScale;

    fn dense(rows: &[&[f64]]) -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(rows, RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    /// Table 1 of the paper.
    fn example1() -> (RatingMatrix, PrefIndex) {
        dense(&[
            &[1.0, 4.0, 3.0],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[3.0, 1.0, 1.0],
            &[1.0, 2.0, 5.0],
        ])
    }

    /// Table 2 of the paper.
    fn example2() -> (RatingMatrix, PrefIndex) {
        dense(&[
            &[3.0, 1.0, 4.0],
            &[1.0, 4.0, 3.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[1.0, 2.0, 3.0],
            &[3.0, 2.0, 1.0],
        ])
    }

    /// Table 5 of the paper (Appendix B).
    fn example5() -> (RatingMatrix, PrefIndex) {
        dense(&[
            &[1.0, 4.0, 3.0],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 4.0, 3.0],
            &[1.0, 2.0, 5.0],
        ])
    }

    fn sorted_groups(r: &FormationResult) -> Vec<Vec<u32>> {
        let mut gs: Vec<Vec<u32>> = r
            .grouping
            .groups
            .iter()
            .map(|g| g.members.clone())
            .collect();
        gs.sort();
        gs
    }

    #[test]
    fn grd_lm_min_k1_example1() {
        // Paper Section 4.1: groups {u3,u4}, {u2,u6}, {u1,u5}; Obj = 11.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 11.0);
        assert_eq!(sorted_groups(&r), vec![vec![0, 4], vec![1, 5], vec![2, 3]]);
        assert_eq!(r.n_buckets, 4);
        // Recommended items: {u3,u4} -> i2 at 5; {u2,u6} -> i3 at 5.
        let g34 = r
            .grouping
            .groups
            .iter()
            .find(|g| g.members == vec![2, 3])
            .unwrap();
        assert_eq!(g34.top_k, vec![(1, 5.0)]);
    }

    #[test]
    fn grd_lm_min_k2_example1() {
        // Paper: {u1}, {u2}, {u3,u4,u5,u6}; Obj = 3 + 3 + 1 = 7.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 7.0);
        assert_eq!(sorted_groups(&r), vec![vec![0], vec![1], vec![2, 3, 4, 5]]);
        assert_eq!(r.n_buckets, 5);
    }

    #[test]
    fn grd_lm_sum_k2_example1() {
        // Paper Section 4.2: {u3,u4}, {u1,u5,u6}, {u2}; Obj = 17.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 3);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 17.0);
        assert_eq!(sorted_groups(&r), vec![vec![0, 4, 5], vec![1], vec![2, 3]]);
    }

    #[test]
    fn grd_lm_sum_k2_example5_suboptimal_trace() {
        // Appendix B: GRD-LM-SUM forms {u2}, {u3,u4}, {u1,u5,u6} with
        // Obj = (5+3) + (5+2) + (3+2) = 20 (the optimum is 21).
        let (m, p) = example5();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 3);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 20.0);
        assert_eq!(sorted_groups(&r), vec![vec![0, 4, 5], vec![1], vec![2, 3]]);
    }

    #[test]
    fn grd_av_min_k2_example2() {
        // Paper Section 5: {u3,u4} (AV score 4 on bottom item i1) and
        // {u1,u2,u5,u6} (AV score 9 on bottom item i2); Obj = 13.
        let (m, p) = example2();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, 2, 2);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 13.0);
        assert_eq!(sorted_groups(&r), vec![vec![0, 1, 4, 5], vec![2, 3]]);
        // The merged group is recommended (i3, i2).
        let last = r
            .grouping
            .groups
            .iter()
            .find(|g| g.members.len() == 4)
            .unwrap();
        assert_eq!(last.top_k, vec![(2, 11.0), (1, 9.0)]);
    }

    #[test]
    fn grd_av_sum_k2_example2() {
        // Paper Section 5: same groups, Obj = 14 + 20 = 34.
        let (m, p) = example2();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 2);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 34.0);
        assert_eq!(sorted_groups(&r), vec![vec![0, 1, 4, 5], vec![2, 3]]);
    }

    #[test]
    fn objective_matches_sum_of_satisfactions() {
        let (m, p) = example1();
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                for k in 1..=3 {
                    for ell in 1..=6 {
                        let cfg = FormationConfig::new(sem, agg, k, ell);
                        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
                        let total: f64 = r.grouping.groups.iter().map(|g| g.satisfaction).sum();
                        assert!((total - r.objective).abs() < 1e-9);
                        r.grouping.validate(m.n_users(), ell).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn ell_one_merges_everyone() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 1);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.grouping.len(), 1);
        assert_eq!(r.grouping.groups[0].members, vec![0, 1, 2, 3, 4, 5]);
        // LM over everyone: every item bottoms out at 1.
        assert_eq!(r.objective, 1.0);
    }

    #[test]
    fn ell_larger_than_buckets_keeps_buckets() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 10);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        // 4 buckets for k = 1; the paper-faithful algorithm never splits.
        assert_eq!(r.grouping.len(), 4);
        assert_eq!(r.objective, 5.0 + 5.0 + 4.0 + 3.0);
    }

    #[test]
    fn surplus_splitting_improves_lm() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 6);
        let plain = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let split = GreedyFormer::new()
            .with_surplus_splitting(true)
            .form(&m, &p, &cfg)
            .unwrap();
        // Splitting {u2,u6} and {u3,u4} into singletons adds 5 + 5.
        assert_eq!(plain.objective, 17.0);
        assert_eq!(split.objective, 27.0);
        assert_eq!(split.grouping.len(), 6);
        split.grouping.validate(m.n_users(), 6).unwrap();
    }

    #[test]
    fn surplus_splitting_is_noop_under_av_sum() {
        // AV satisfaction is additive in members, so no split can gain.
        let (m, p) = example2();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 6);
        let plain = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let split = GreedyFormer::new()
            .with_surplus_splitting(true)
            .form(&m, &p, &cfg)
            .unwrap();
        assert!((plain.objective - split.objective).abs() < 1e-9);
    }

    #[test]
    fn theorem2_bound_holds_on_example1() {
        // GRD = 11, OPT = 12 (paper): |11 - 12| <= r_max = 5.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let bound = cfg.error_bound(&m).unwrap();
        assert!((12.0 - r.objective) <= bound);
    }

    #[test]
    fn works_on_sparse_input() {
        let m = RatingMatrix::from_triples(
            4,
            6,
            vec![
                (0, 0, 5.0),
                (0, 1, 3.0),
                (1, 0, 5.0),
                (1, 1, 3.0),
                (2, 2, 4.0),
                (3, 5, 2.0),
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                let cfg = FormationConfig::new(sem, agg, 2, 2);
                let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
                r.grouping.validate(4, 2).unwrap();
                // u0 and u1 are identical and should stay together.
                let assign = r.grouping.assignment(4);
                assert_eq!(assign[0], assign[1], "{sem} {agg}");
            }
        }
    }

    #[test]
    fn single_user_single_item() {
        let m = RatingMatrix::from_dense(&[&[4.0]], RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 1);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 4.0);
    }

    #[test]
    fn k_exceeding_m_is_capped() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 10, 3);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        r.grouping.validate(6, 3).unwrap();
        for g in &r.grouping.groups {
            assert!(g.top_k.len() <= 3);
        }
    }

    #[test]
    fn policy_variants_run() {
        let (m, p) = example1();
        for policy in [
            MissingPolicy::Min,
            MissingPolicy::UserMean,
            MissingPolicy::Skip,
        ] {
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3)
                .with_policy(policy);
            let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
            r.grouping.validate(6, 3).unwrap();
        }
    }

    #[test]
    fn theorem2_counterexample_and_split_aware_fix() {
        // Three identical users and a generous budget: the paper-faithful
        // greedy bundles them into one group (objective 4) while the
        // optimum forms three singletons (objective 12) — violating the
        // r_max = 5 bound of Theorem 2 as stated. Split-aware selection
        // recovers the optimum here.
        let (m, p) = dense(&[
            &[1.0, 1.0, 4.0, 1.0],
            &[1.0, 1.0, 4.0, 1.0],
            &[1.0, 1.0, 4.0, 1.0],
        ]);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 4);
        let paper = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(paper.objective, 4.0);
        let fixed = GreedyFormer::new()
            .with_split_aware_selection(true)
            .form(&m, &p, &cfg)
            .unwrap();
        assert_eq!(fixed.objective, 12.0);
        fixed.grouping.validate(3, 4).unwrap();
    }

    #[test]
    fn split_aware_reproduces_paper_objectives_on_worked_examples() {
        // On the paper's own examples (diverse keys, tight budgets) the
        // split-aware variant matches the published objective values.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = GreedyFormer::new()
            .with_split_aware_selection(true)
            .form(&m, &p, &cfg)
            .unwrap();
        assert_eq!(r.objective, 11.0);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 3);
        let r = GreedyFormer::new()
            .with_split_aware_selection(true)
            .form(&m, &p, &cfg)
            .unwrap();
        assert_eq!(r.objective, 17.0);
    }

    #[test]
    fn split_aware_is_identity_under_av() {
        let (m, p) = example2();
        for agg in Aggregation::paper_set() {
            let cfg = FormationConfig::new(Semantics::AggregateVoting, agg, 2, 4);
            let a = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
            let b = GreedyFormer::new()
                .with_split_aware_selection(true)
                .form(&m, &p, &cfg)
                .unwrap();
            assert_eq!(a.grouping, b.grouping, "{agg}");
        }
    }

    #[test]
    fn split_aware_output_is_valid_and_deterministic() {
        // Note: split-aware selection is *not* pointwise better than paper
        // mode (a split-off duplicate can later drag the merged group); its
        // value is the unconditional Theorem-2/3 error bound, verified
        // against exact optima in gf-exact's property suite.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..60 {
            let n = rng.gen_range(2..9u32);
            let m = rng.gen_range(2..5u32);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(1..=3) as f64).collect())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let mat = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
            let prefs = PrefIndex::build(&mat);
            let agg = Aggregation::paper_set()[trial % 3];
            let cfg =
                FormationConfig::new(Semantics::LeastMisery, agg, 1 + trial % 2, 1 + trial % 5);
            let former = GreedyFormer::new().with_split_aware_selection(true);
            let a = former.form(&mat, &prefs, &cfg).unwrap();
            let b = former.form(&mat, &prefs, &cfg).unwrap();
            assert_eq!(a.grouping, b.grouping, "trial {trial}");
            a.grouping.validate(n, cfg.ell).unwrap();
            let recomputed = crate::metrics::recompute_objective(
                &mat,
                &a.grouping,
                cfg.semantics,
                agg,
                cfg.policy,
                cfg.k,
            );
            assert!((recomputed - a.objective).abs() < 1e-9, "trial {trial}");
        }
    }

    #[test]
    fn group_top_k_agrees_with_engine_satisfaction() {
        // Every emitted group's stored satisfaction must equal what the
        // recommendation engine computes for its members from scratch.
        let (m, p) = example1();
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                for k in 1..=3usize {
                    let cfg = FormationConfig::new(sem, agg, k, 3);
                    let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
                    let rec = GroupRecommender::new(&m, sem);
                    for g in &r.grouping.groups {
                        let want = rec.satisfaction(&g.members, k, agg);
                        assert!(
                            (want - g.satisfaction).abs() < 1e-9,
                            "{sem} {agg} k={k}: {} vs {want} for {:?}",
                            g.satisfaction,
                            g.members
                        );
                    }
                }
            }
        }
    }
}
