//! Quality metrics from Section 7 ("Experimental Analysis Setup").
//!
//! * the **objective function value** — the total satisfaction of a
//!   grouping under the configured semantics and aggregation;
//! * the **average group satisfaction** over the recommended top-`k`
//!   lists, `(Σ_x Σ_j sc(g_x, i^j)) / ℓ`;
//! * recomputation helpers that re-derive both from scratch through the
//!   recommendation engine (used to cross-check algorithm outputs).

use crate::aggregate::Aggregation;
use crate::grouping::Grouping;
use crate::grouprec::{GroupRecommender, MissingPolicy};
use crate::matrix::RatingMatrix;
use crate::semantics::Semantics;

/// The objective `Obj = Σ_j gs_j(I_gj^k)` as reported by the grouping
/// itself (sum of stored group satisfactions).
pub fn objective_value(grouping: &Grouping) -> f64 {
    grouping.objective()
}

/// Recomputes the objective from scratch: re-derives every group's top-`k`
/// list and satisfaction through the [`GroupRecommender`]. Algorithms must
/// agree with this within floating-point tolerance.
pub fn recompute_objective(
    matrix: &RatingMatrix,
    grouping: &Grouping,
    semantics: Semantics,
    aggregation: Aggregation,
    policy: MissingPolicy,
    k: usize,
) -> f64 {
    let rec = GroupRecommender::new(matrix, semantics).with_policy(policy);
    grouping
        .groups
        .iter()
        .map(|g| rec.satisfaction(&g.members, k, aggregation))
        .sum()
}

/// The paper's *average group satisfaction over the top-k itemset*
/// (Section 7.1.2): `(Σ_x Σ_j sc(g_x, i^j)) / ℓ`, where `sc(g_x, i^j)` is
/// the **average** (per-member) group score of the `j`-th recommended item.
///
/// Under LM the group score is already member-count free; under AV the
/// summed score is divided by the group size — which is why the paper's
/// Figure 3 values are bounded by `k · r_max` (= 25 for k = 5 on a 1–5
/// scale) regardless of group sizes.
pub fn avg_group_satisfaction(
    matrix: &RatingMatrix,
    grouping: &Grouping,
    semantics: Semantics,
    policy: MissingPolicy,
    k: usize,
) -> f64 {
    if grouping.is_empty() {
        return 0.0;
    }
    let rec = GroupRecommender::new(matrix, semantics).with_policy(policy);
    let total: f64 = grouping
        .groups
        .iter()
        .map(|g| {
            let norm = match semantics {
                Semantics::LeastMisery => 1.0,
                Semantics::AggregateVoting => g.len().max(1) as f64,
                // Already per-member normalized (mean-based scores).
                Semantics::Consensus { .. } | Semantics::LeaderWeighted => 1.0,
            };
            rec.top_k(&g.members, k)
                .iter()
                .map(|&(_, s)| s)
                .sum::<f64>()
                / norm
        })
        .sum();
    total / grouping.len() as f64
}

/// Per-user satisfaction of each member with their group's recommended
/// list, as the fraction of the user's ideal top-`k` value achieved
/// (an NDCG-style measure in `[0, 1]`; see [`mod@crate::ndcg`]).
///
/// Returns `(user, satisfaction)` pairs for every assigned user.
pub fn per_user_satisfaction(
    matrix: &RatingMatrix,
    prefs: &crate::prefs::PrefIndex,
    grouping: &Grouping,
    k: usize,
) -> Vec<(u32, f64)> {
    let mut out = Vec::with_capacity(matrix.n_users() as usize);
    for g in &grouping.groups {
        let rec_items: Vec<u32> = g.items().collect();
        for &u in &g.members {
            out.push((
                u,
                crate::ndcg::user_satisfaction(matrix, prefs, u, &rec_items, k),
            ));
        }
    }
    out.sort_unstable_by_key(|&(u, _)| u);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{FormationConfig, GreedyFormer, GroupFormer};
    use crate::prefs::PrefIndex;
    use crate::scale::RatingScale;

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn recompute_matches_algorithm_output() {
        let (m, p) = example1();
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                let cfg = FormationConfig::new(sem, agg, 2, 3);
                let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
                let re = recompute_objective(&m, &r.grouping, sem, agg, cfg.policy, 2);
                assert!(
                    (re - r.objective).abs() < 1e-9,
                    "{sem} {agg}: {re} vs {}",
                    r.objective
                );
            }
        }
    }

    #[test]
    fn avg_group_satisfaction_bounds() {
        // With ratings in 1..5 and k = 2, a group's summed top-2 score under
        // LM lies in [2, 10]; the average over groups must too.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        let r = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let avg = avg_group_satisfaction(
            &m,
            &r.grouping,
            Semantics::LeastMisery,
            MissingPolicy::Min,
            2,
        );
        assert!((2.0..=10.0).contains(&avg), "avg = {avg}");
    }

    #[test]
    fn avg_group_satisfaction_singletons_is_personal_sum() {
        let (m, _) = example1();
        // One singleton group per user: group scores = personal scores.
        let groups = (0..6u32)
            .map(|u| crate::grouping::Group {
                members: vec![u],
                top_k: vec![],
                satisfaction: 0.0,
            })
            .collect();
        let grouping = Grouping::new(groups);
        let avg =
            avg_group_satisfaction(&m, &grouping, Semantics::LeastMisery, MissingPolicy::Min, 1);
        // Personal best scores: 4, 5, 5, 5, 3, 5 -> mean = 27/6.
        assert!((avg - 27.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn per_user_satisfaction_is_one_for_perfect_groups() {
        let (m, p) = example1();
        // Singletons: everyone gets their own ideal list.
        let groups = (0..6u32)
            .map(|u| {
                let rec = GroupRecommender::new(&m, Semantics::LeastMisery);
                crate::grouping::Group {
                    members: vec![u],
                    top_k: rec.top_k(&[u], 2),
                    satisfaction: 0.0,
                }
            })
            .collect();
        let grouping = Grouping::new(groups);
        for (u, s) in per_user_satisfaction(&m, &p, &grouping, 2) {
            assert!((s - 1.0).abs() < 1e-9, "user {u}: {s}");
        }
    }

    #[test]
    fn empty_grouping_metrics() {
        let (m, _) = example1();
        let g = Grouping::default();
        assert_eq!(objective_value(&g), 0.0);
        assert_eq!(
            avg_group_satisfaction(&m, &g, Semantics::LeastMisery, MissingPolicy::Min, 2),
            0.0
        );
    }
}
