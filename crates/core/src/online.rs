//! Online quality: a sliding window of observed consumptions and the
//! per-group precision / recall / NDCG it induces.
//!
//! The offline harness (`gf-eval`) judges a formation against a held-out
//! split; a *serving* instance has no holdout, only feedback — "user `u`
//! consumed item `i`" events streaming in while the formation itself
//! shifts under rating churn. [`OnlineEval`] is the serving-side
//! accumulator:
//!
//! * it keeps the newest `capacity` [`FeedbackEvent`]s (plus a cumulative
//!   counter of everything ever observed), as an **immutable** value —
//!   [`OnlineEval::observe`] returns a successor, so a snapshot-swapping
//!   server can share the window by `Arc` exactly like its matrix;
//! * [`OnlineEval::evaluate`] grades one grouping on demand: events are
//!   attributed to the consuming user's *current* group, each group's
//!   consumed set is compared against the top-`k` list it was actually
//!   served, and per-group precision@k / recall@k / binary-relevance
//!   NDCG@k are macro-averaged over the groups with any evidence.
//!
//! An event may carry a *scope* (a grouping name): scoped events count
//! only toward that grouping's metrics, unscoped events toward every
//! grouping's.

use crate::ndcg;

/// One observed consumption: `user` consumed `item`. `scope` limits the
/// event to a single named grouping's metrics; `None` means the event
/// counts for every grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackEvent {
    /// The consuming user (dense index).
    pub user: u32,
    /// The consumed item (dense index).
    pub item: u32,
    /// Grouping name the event is scoped to, if any.
    pub scope: Option<String>,
}

/// Quality of one group under the current window.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupQuality {
    /// Group index within the grouping's formation.
    pub group: usize,
    /// Distinct items members of this group consumed (window, in scope).
    pub consumed: usize,
    /// Fraction of the served list (truncated to `k`) that was consumed.
    pub precision: f64,
    /// Fraction of the consumed set that the served list covered.
    pub recall: f64,
    /// Binary-relevance NDCG@k of the served list against the consumed
    /// set (ideal: all hits ranked first).
    pub ndcg: f64,
}

/// Macro-averaged quality of a grouping under the current window.
#[derive(Debug, Clone, PartialEq)]
pub struct QualitySummary {
    /// The `k` the lists were truncated to.
    pub k: usize,
    /// Window events attributed to some group of this grouping.
    pub window_events: usize,
    /// Groups with at least one consumed item (the macro-average base).
    pub groups_evaluated: usize,
    /// Macro-averaged precision@k (0 when no group has evidence).
    pub precision: f64,
    /// Macro-averaged recall@k.
    pub recall: f64,
    /// Macro-averaged NDCG@k.
    pub ndcg: f64,
    /// Per-group detail, ascending group index, evidence-bearing groups
    /// only.
    pub per_group: Vec<GroupQuality>,
}

/// An immutable sliding window of the newest `capacity` consumption
/// events, plus a cumulative count of everything ever observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineEval {
    capacity: usize,
    /// Oldest first.
    events: Vec<FeedbackEvent>,
    observed_total: u64,
}

impl OnlineEval {
    /// An empty window holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        OnlineEval {
            capacity,
            events: Vec::new(),
            observed_total: 0,
        }
    }

    /// Rebuilds a window from persisted parts (restore path). Only the
    /// newest `capacity` of `events` are kept; `observed_total` is
    /// carried verbatim.
    pub fn from_parts(
        capacity: usize,
        mut events: Vec<FeedbackEvent>,
        observed_total: u64,
    ) -> Self {
        if events.len() > capacity {
            events.drain(..events.len() - capacity);
        }
        OnlineEval {
            capacity,
            events,
            observed_total,
        }
    }

    /// The window size limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently in the window, oldest first.
    pub fn events(&self) -> &[FeedbackEvent] {
        &self.events
    }

    /// Number of events currently in the window.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cumulative events ever observed (survives window eviction — and,
    /// persisted, restarts).
    pub fn observed_total(&self) -> u64 {
        self.observed_total
    }

    /// Returns the successor window with `event` appended (and the oldest
    /// event evicted if the window is full). The receiver is unchanged —
    /// readers of the old snapshot keep a consistent view.
    pub fn observe(&self, event: FeedbackEvent) -> OnlineEval {
        let mut events = Vec::with_capacity((self.events.len() + 1).min(self.capacity.max(1)));
        let start = if self.capacity == 0 {
            self.events.len()
        } else {
            (self.events.len() + 1).saturating_sub(self.capacity)
        };
        events.extend_from_slice(&self.events[start..]);
        if self.capacity > 0 {
            events.push(event);
        }
        OnlineEval {
            capacity: self.capacity,
            events,
            observed_total: self.observed_total + 1,
        }
    }

    /// Grades the grouping named `scope`: `assignment[u]` maps each user
    /// to its group, `group_items[g]` is the item list group `g` is being
    /// served (best first), `k` the truncation depth. Events scoped to a
    /// different grouping, from unassigned users, or from users outside
    /// `assignment` are ignored.
    pub fn evaluate(
        &self,
        scope: &str,
        assignment: &[Option<usize>],
        group_items: &[Vec<u32>],
        k: usize,
    ) -> QualitySummary {
        let mut consumed: Vec<Vec<u32>> = vec![Vec::new(); group_items.len()];
        let mut window_events = 0usize;
        for ev in &self.events {
            if ev.scope.as_deref().is_some_and(|s| s != scope) {
                continue;
            }
            let Some(Some(gi)) = assignment.get(ev.user as usize).copied() else {
                continue;
            };
            if gi >= consumed.len() {
                continue;
            }
            window_events += 1;
            consumed[gi].push(ev.item);
        }
        let mut per_group = Vec::new();
        let (mut p_sum, mut r_sum, mut n_sum) = (0.0, 0.0, 0.0);
        for (gi, cons) in consumed.iter_mut().enumerate() {
            cons.sort_unstable();
            cons.dedup();
            if cons.is_empty() {
                continue;
            }
            let items = &group_items[gi];
            let depth = items.len().min(k);
            let rels: Vec<f64> = items[..depth]
                .iter()
                .map(|i| {
                    if cons.binary_search(i).is_ok() {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let hits: f64 = rels.iter().sum();
            let precision = if depth == 0 { 0.0 } else { hits / depth as f64 };
            let recall = hits / cons.len() as f64;
            let ideal = vec![1.0; depth.min(cons.len())];
            let ndcg = ndcg::ndcg(&rels, &ideal);
            p_sum += precision;
            r_sum += recall;
            n_sum += ndcg;
            per_group.push(GroupQuality {
                group: gi,
                consumed: cons.len(),
                precision,
                recall,
                ndcg,
            });
        }
        let n = per_group.len();
        let avg = |s: f64| if n == 0 { 0.0 } else { s / n as f64 };
        QualitySummary {
            k,
            window_events,
            groups_evaluated: n,
            precision: avg(p_sum),
            recall: avg(r_sum),
            ndcg: avg(n_sum),
            per_group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: u32, item: u32) -> FeedbackEvent {
        FeedbackEvent {
            user,
            item,
            scope: None,
        }
    }

    fn scoped(user: u32, item: u32, scope: &str) -> FeedbackEvent {
        FeedbackEvent {
            user,
            item,
            scope: Some(scope.to_string()),
        }
    }

    #[test]
    fn window_evicts_oldest_and_counts_everything() {
        let mut w = OnlineEval::new(2);
        for i in 0..4 {
            w = w.observe(ev(0, i));
        }
        assert_eq!(w.len(), 2);
        assert_eq!(w.observed_total(), 4);
        assert_eq!(w.events()[0].item, 2);
        assert_eq!(w.events()[1].item, 3);
    }

    #[test]
    fn zero_capacity_window_still_counts() {
        let w = OnlineEval::new(0).observe(ev(0, 0)).observe(ev(0, 1));
        assert!(w.is_empty());
        assert_eq!(w.observed_total(), 2);
    }

    #[test]
    fn from_parts_truncates_to_the_newest() {
        let w = OnlineEval::from_parts(2, vec![ev(0, 0), ev(0, 1), ev(0, 2)], 9);
        assert_eq!(w.len(), 2);
        assert_eq!(w.events()[0].item, 1);
        assert_eq!(w.observed_total(), 9);
    }

    #[test]
    fn evaluate_grades_hits_and_misses() {
        // Group 0 = users {0,1} served [10, 11]; group 1 = user {2}
        // served [12, 13].
        let assignment = vec![Some(0), Some(0), Some(1)];
        let lists = vec![vec![10, 11], vec![12, 13]];
        let w = OnlineEval::from_parts(
            8,
            vec![ev(0, 10), ev(1, 11), ev(2, 99)], // group 0: 2 hits; group 1: miss
            3,
        );
        let q = w.evaluate("default", &assignment, &lists, 2);
        assert_eq!(q.window_events, 3);
        assert_eq!(q.groups_evaluated, 2);
        let g0 = &q.per_group[0];
        assert_eq!((g0.group, g0.consumed), (0, 2));
        assert_eq!(g0.precision, 1.0);
        assert_eq!(g0.recall, 1.0);
        assert_eq!(g0.ndcg, 1.0);
        let g1 = &q.per_group[1];
        assert_eq!(g1.precision, 0.0);
        assert_eq!(g1.ndcg, 0.0);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.ndcg, 0.5);
    }

    #[test]
    fn scoped_events_only_count_for_their_grouping() {
        let assignment = vec![Some(0)];
        let lists = vec![vec![10]];
        let w = OnlineEval::from_parts(8, vec![scoped(0, 10, "other"), scoped(0, 10, "mine")], 2);
        let mine = w.evaluate("mine", &assignment, &lists, 1);
        assert_eq!(mine.window_events, 1);
        assert_eq!(mine.precision, 1.0);
        let third = w.evaluate("third", &assignment, &lists, 1);
        assert_eq!(third.window_events, 0);
        assert_eq!(third.groups_evaluated, 0);
    }

    #[test]
    fn duplicate_consumptions_dedupe() {
        let assignment = vec![Some(0)];
        let lists = vec![vec![10, 11]];
        let w = OnlineEval::from_parts(8, vec![ev(0, 10), ev(0, 10), ev(0, 10)], 3);
        let q = w.evaluate("default", &assignment, &lists, 2);
        assert_eq!(q.per_group[0].consumed, 1);
        assert_eq!(q.per_group[0].recall, 1.0);
        assert_eq!(q.per_group[0].precision, 0.5);
    }

    #[test]
    fn ndcg_rewards_rank() {
        // One consumed item: at rank 0 NDCG = 1; at rank 1 NDCG =
        // (1/log2(3)) / 1 < 1.
        let assignment = vec![Some(0)];
        let w = OnlineEval::from_parts(8, vec![ev(0, 11)], 1);
        let top = w.evaluate("default", &assignment, &[vec![11, 10]], 2);
        let low = w.evaluate("default", &assignment, &[vec![10, 11]], 2);
        assert_eq!(top.ndcg, 1.0);
        assert!(low.ndcg < 1.0 && low.ndcg > 0.0);
    }

    #[test]
    fn unassigned_and_out_of_range_users_are_ignored() {
        let assignment = vec![Some(0), None];
        let lists = vec![vec![10]];
        let w = OnlineEval::from_parts(8, vec![ev(1, 10), ev(9, 10)], 2);
        let q = w.evaluate("default", &assignment, &lists, 1);
        assert_eq!(q.window_events, 0);
        assert_eq!(q.groups_evaluated, 0);
    }
}
