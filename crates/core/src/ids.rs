//! Strongly-typed user and item identifiers.
//!
//! Internally users and items are dense `u32` indices into the
//! [`RatingMatrix`](crate::RatingMatrix); the newtypes exist so that a user
//! index can never be accidentally used where an item index is expected.

use std::fmt;

/// A dense user index in `0..n_users`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserId(pub u32);

/// A dense item index in `0..n_items`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ItemId(pub u32);

impl UserId {
    /// The raw index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The raw index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for UserId {
    #[inline]
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0 + 1)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based_like_the_paper() {
        // The paper writes u1..u6 and i1..i3; internal indices are 0-based.
        assert_eq!(UserId(0).to_string(), "u1");
        assert_eq!(ItemId(2).to_string(), "i3");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(0) < ItemId(7));
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(UserId::from(5).index(), 5);
        assert_eq!(ItemId::from(9).index(), 9);
    }
}
