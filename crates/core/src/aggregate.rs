//! Group satisfaction aggregation over a top-`k` list (Section 2.3).
//!
//! Once a semantics has produced a score `sc(g, i^j)` for every item in the
//! recommended list `I_g^k`, the *aggregation function* collapses the `k`
//! scores into the group's satisfaction `gs(I_g^k)`:
//!
//! * **Max**: the score of the very top item, `sc(g, i^1)`;
//! * **Min**: the score of the `k`-th (bottom) item, `sc(g, i^k)`;
//! * **Sum**: the sum over all `k` items;
//! * **WeightedSum**: the Section-6 extension with position weights.
//!
//! When `k = 1` all of these coincide.

use crate::weights::WeightScheme;
use std::fmt;

/// Which item position(s) of a top-`k` list determine the hash key used by
/// the greedy algorithms (see [`Aggregation::pivot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pivot {
    /// The single 0-based position whose score the aggregation depends on.
    Position(usize),
    /// The aggregation depends on all `k` scores.
    All,
}

/// How a group's satisfaction with a top-`k` list is computed from the `k`
/// per-item group scores.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Aggregation {
    /// Score of the bottom (`k`-th) item: `gs = sc(g, i^k)`.
    Min,
    /// Score of the top item: `gs = sc(g, i^1)`.
    Max,
    /// Sum over all `k` items.
    Sum,
    /// Weighted sum over all `k` items (Section 6 extension).
    WeightedSum(WeightScheme),
}

impl Aggregation {
    /// Collapses the scores of a top-`k` list (position 1 first) into the
    /// group satisfaction. An empty list yields 0.
    pub fn apply(self, scores: &[f64]) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        match self {
            Aggregation::Min => scores[scores.len() - 1],
            Aggregation::Max => scores[0],
            Aggregation::Sum => scores.iter().sum(),
            Aggregation::WeightedSum(w) => w.weighted_sum(scores),
        }
    }

    /// Which positions of a user's personal top-`k` list must match for two
    /// users to be grouped by `GRD-LM` (Section 4): the position the
    /// aggregation is based on, or all of them for (weighted) Sum.
    pub fn pivot(self, k: usize) -> Pivot {
        match self {
            Aggregation::Min => Pivot::Position(k - 1),
            Aggregation::Max => Pivot::Position(0),
            Aggregation::Sum | Aggregation::WeightedSum(_) => Pivot::All,
        }
    }

    /// Short uppercase tag used in algorithm names (`MIN`/`MAX`/`SUM`/`WSUM`).
    pub fn tag(self) -> &'static str {
        match self {
            Aggregation::Min => "MIN",
            Aggregation::Max => "MAX",
            Aggregation::Sum => "SUM",
            Aggregation::WeightedSum(_) => "WSUM",
        }
    }

    /// The three aggregations evaluated in the paper's experiments.
    pub fn paper_set() -> [Aggregation; 3] {
        [Aggregation::Min, Aggregation::Max, Aggregation::Sum]
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregation::WeightedSum(w) => write!(f, "WSUM({w})"),
            other => f.write_str(other.tag()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f64; 3] = [5.0, 3.0, 2.0];

    #[test]
    fn min_takes_bottom() {
        assert_eq!(Aggregation::Min.apply(&SCORES), 2.0);
    }

    #[test]
    fn max_takes_top() {
        assert_eq!(Aggregation::Max.apply(&SCORES), 5.0);
    }

    #[test]
    fn sum_takes_all() {
        assert_eq!(Aggregation::Sum.apply(&SCORES), 10.0);
    }

    #[test]
    fn weighted_uniform_equals_sum() {
        assert_eq!(
            Aggregation::WeightedSum(WeightScheme::Uniform).apply(&SCORES),
            Aggregation::Sum.apply(&SCORES)
        );
    }

    #[test]
    fn k_equals_one_coincides() {
        // Section 2.3: "when k = 1, Max, Min, and Sum-aggregation coincide".
        let one = [4.0];
        for agg in Aggregation::paper_set() {
            assert_eq!(agg.apply(&one), 4.0);
        }
    }

    #[test]
    fn empty_list_scores_zero() {
        for agg in Aggregation::paper_set() {
            assert_eq!(agg.apply(&[]), 0.0);
        }
    }

    #[test]
    fn pivots() {
        assert_eq!(Aggregation::Min.pivot(5), Pivot::Position(4));
        assert_eq!(Aggregation::Max.pivot(5), Pivot::Position(0));
        assert_eq!(Aggregation::Sum.pivot(5), Pivot::All);
        assert_eq!(
            Aggregation::WeightedSum(WeightScheme::InverseLog2).pivot(3),
            Pivot::All
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Aggregation::Min.to_string(), "MIN");
        assert_eq!(
            Aggregation::WeightedSum(WeightScheme::InversePosition).to_string(),
            "WSUM(1/pos)"
        );
    }
}
