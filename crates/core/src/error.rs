//! Error types for the `gf-core` crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, GfError>;

/// Errors produced while building rating matrices or forming groups.
#[derive(Debug, Clone, PartialEq)]
pub enum GfError {
    /// The rating matrix has no users or no items.
    EmptyMatrix,
    /// `k` (the length of the recommended list) must be at least 1.
    InvalidK {
        /// The offending value.
        k: usize,
    },
    /// `ell` (the maximum number of groups) must be at least 1.
    InvalidEll {
        /// The offending value.
        ell: usize,
    },
    /// A user index was out of range.
    UserOutOfRange {
        /// The offending user index.
        user: u32,
        /// Number of users in the matrix.
        n_users: u32,
    },
    /// An item index was out of range.
    ItemOutOfRange {
        /// The offending item index.
        item: u32,
        /// Number of items in the matrix.
        n_items: u32,
    },
    /// The same (user, item) pair was rated twice.
    DuplicateRating {
        /// The user index.
        user: u32,
        /// The item index.
        item: u32,
    },
    /// A rating was NaN or infinite.
    NonFiniteScore {
        /// The user index.
        user: u32,
        /// The item index.
        item: u32,
    },
    /// A rating fell outside the declared [`RatingScale`](crate::RatingScale).
    ScaleViolation {
        /// The user index.
        user: u32,
        /// The item index.
        item: u32,
        /// The offending score.
        score: f64,
    },
    /// The rating scale itself is malformed (`min >= max` or non-finite).
    InvalidScale {
        /// Declared minimum.
        min: f64,
        /// Declared maximum.
        max: f64,
    },
    /// A grouping failed validation (overlap, missing user, too many groups).
    InvalidGrouping(String),
    /// An incremental former was asked to refresh against a matrix it was
    /// not built for (population mismatch or missing dirty notifications).
    StaleIncrementalState(String),
    /// Durable-state machinery (WAL append, checkpoint write/load,
    /// restored-state validation) failed; the message carries the
    /// operation and cause.
    Persist(String),
    /// Admitting a new user or item would exceed a
    /// [`GrowthPolicy::Grow`](crate::GrowthPolicy) cap.
    GrowthExhausted {
        /// `"user"` or `"item"` — the axis whose cap is exhausted.
        axis: &'static str,
        /// The id whose admission was requested.
        id: u32,
        /// The cap that refused it.
        max: u32,
    },
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::EmptyMatrix => write!(f, "rating matrix has no users or no items"),
            GfError::InvalidK { k } => write!(f, "top-k length must be >= 1, got {k}"),
            GfError::InvalidEll { ell } => {
                write!(f, "maximum number of groups must be >= 1, got {ell}")
            }
            GfError::UserOutOfRange { user, n_users } => {
                write!(f, "user index {user} out of range (n_users = {n_users})")
            }
            GfError::ItemOutOfRange { item, n_items } => {
                write!(f, "item index {item} out of range (n_items = {n_items})")
            }
            GfError::DuplicateRating { user, item } => {
                write!(f, "duplicate rating for user {user}, item {item}")
            }
            GfError::NonFiniteScore { user, item } => {
                write!(f, "non-finite rating for user {user}, item {item}")
            }
            GfError::ScaleViolation { user, item, score } => write!(
                f,
                "rating {score} for user {user}, item {item} violates the rating scale"
            ),
            GfError::InvalidScale { min, max } => {
                write!(f, "invalid rating scale [{min}, {max}]")
            }
            GfError::InvalidGrouping(msg) => write!(f, "invalid grouping: {msg}"),
            GfError::StaleIncrementalState(msg) => {
                write!(f, "stale incremental formation state: {msg}")
            }
            GfError::Persist(msg) => write!(f, "persistence error: {msg}"),
            GfError::GrowthExhausted { axis, id, max } => {
                write!(
                    f,
                    "cannot admit {axis} {id}: growth cap of {max} {axis}s exhausted"
                )
            }
        }
    }
}

impl std::error::Error for GfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let e = GfError::UserOutOfRange {
            user: 9,
            n_users: 3,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3"));
        let e = GfError::ScaleViolation {
            user: 1,
            item: 2,
            score: 7.5,
        };
        assert!(e.to_string().contains("7.5"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GfError::EmptyMatrix);
    }
}
