//! Group recommendation semantics (Definitions 1 and 2 of the paper, plus
//! two post-paper variants grounded in the related literature).
//!
//! A semantics turns the individual preference ratings of a group's members
//! for an item into a single *group satisfaction score* for that item:
//!
//! * **Least misery (LM)**: `sc(g, i) = min_{u in g} sc(u, i)` — the group is
//!   only as happy as its least happy member.
//! * **Aggregate voting (AV)**: `sc(g, i) = sum_{u in g} sc(u, i)` — the
//!   group's happiness is the sum of its members' happiness.
//! * **Consensus (CONS)**: `sc(g, i) = mean_u sc(u, i) - λ · std_u sc(u, i)`
//!   — mean quality discounted by intra-group disagreement (the population
//!   standard deviation), after the consensus objective of Ioannidis,
//!   Muthukrishnan & Yan ("Directions in group recommendation", and the
//!   relevance-vs-disagreement balance of Amer-Yahia et al.). `λ = 0`
//!   degenerates to the plain average.
//! * **Leader weighted (LDR)**: the group's *leader* (by convention its
//!   lowest-id member — deterministic, and in deployment the organizer who
//!   created the group) counts twice:
//!   `sc(g, i) = (Σ_u sc(u, i) + sc(leader, i)) / (|g| + 1)` — a normalized
//!   leadership-weighted aggregation after Yu & Konomi's leader-influence
//!   model.
//!
//! LM and AV are *decomposable*: the group score is a fold over member
//! scores in any order ([`Semantics::fold`] / [`Semantics::identity`]).
//! Consensus needs second moments and LeaderWeighted needs to know which
//! member is the leader, so neither fits a plain fold — callers on the fold
//! fast path must gate on [`Semantics::is_decomposable`] and fall back to
//! [`Semantics::combine`] (or the scoring engines in `grouprec`).
//!
//! ## Theorem-2-style bounds
//!
//! The paper's Theorem 2 bounds the satisfaction loss of the greedy Step-3
//! merge by `r_max` per displaced item, relying on every group score lying
//! on the rating scale `[r_min, r_max]`:
//!
//! * **LeaderWeighted**: the score is a weighted average of member scores
//!   with positive weights summing to 1, so `sc(g, i) ∈ [r_min, r_max]`
//!   whenever member scores do — the Theorem-2 premise *holds* and the
//!   per-item `r_max` bound carries over verbatim
//!   (`tests`::`leader_weighted_is_a_weighted_average_on_the_scale`).
//! * **Consensus**: the premise *fails* for `λ > 0`: two members at the
//!   scale extremes give `mean − λ·std < r_min` once
//!   `λ > (r_max + r_min) / (r_max − r_min)`; e.g. on a 1–5 scale,
//!   members rating (1, 5) under `λ = 2` score `3 − 2·2 = −1 < 1`.
//!   The counterexample is pinned in
//!   `tests`::`consensus_violates_the_scale_lower_bound` and the greedy
//!   former therefore reports no error bound for Consensus
//!   (`FormationConfig::error_bound` returns `None`); the score is still
//!   bounded *above* by `r_max`, which is what the per-item loss bound
//!   uses.

use std::fmt;
use std::hash::{Hash, Hasher};

/// The group recommendation semantics: the paper's two (Definitions 1–2)
/// plus the consensus and leader-weighted variants from the related
/// literature.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Semantics {
    /// Least misery (`F_LM`, Definition 1): the minimum member rating.
    LeastMisery,
    /// Aggregate voting (`F_AV`, Definition 2): the sum of member ratings.
    AggregateVoting,
    /// Consensus: mean member rating minus `lambda` times the population
    /// standard deviation of the member ratings (disagreement penalty).
    Consensus {
        /// Disagreement penalty weight, `λ ≥ 0`. `0` is the plain average.
        lambda: f64,
    },
    /// Leader-weighted average: the lowest-id member's rating counts twice,
    /// normalized — `(Σ ratings + leader rating) / (|g| + 1)`.
    LeaderWeighted,
}

/// Alias used by the serving layer and the multi-grouping registry: the
/// extended semantics family (paper + aggregation variants).
pub type AggSemantics = Semantics;

impl PartialEq for Semantics {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Semantics::LeastMisery, Semantics::LeastMisery) => true,
            (Semantics::AggregateVoting, Semantics::AggregateVoting) => true,
            (Semantics::LeaderWeighted, Semantics::LeaderWeighted) => true,
            // Bit equality so `Eq`/`Hash` stay coherent (NaN never parses).
            (Semantics::Consensus { lambda: a }, Semantics::Consensus { lambda: b }) => {
                a.to_bits() == b.to_bits()
            }
            _ => false,
        }
    }
}

impl Eq for Semantics {}

impl Hash for Semantics {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Semantics::LeastMisery => state.write_u8(0),
            Semantics::AggregateVoting => state.write_u8(1),
            Semantics::Consensus { lambda } => {
                state.write_u8(2);
                state.write_u64(lambda.to_bits());
            }
            Semantics::LeaderWeighted => state.write_u8(3),
        }
    }
}

impl Semantics {
    /// Whether the group score is a plain fold over member scores in any
    /// order ([`Semantics::fold`] / [`Semantics::identity`]). True for the
    /// paper's LM and AV; false for Consensus (needs second moments) and
    /// LeaderWeighted (needs member identity).
    #[inline]
    pub fn is_decomposable(self) -> bool {
        matches!(self, Semantics::LeastMisery | Semantics::AggregateVoting)
    }

    /// Folds one more member score into a running group score.
    ///
    /// `acc` starts at [`Semantics::identity`].
    ///
    /// # Panics
    ///
    /// For the non-decomposable variants (Consensus, LeaderWeighted) — gate
    /// on [`Semantics::is_decomposable`] and use [`Semantics::combine`] or
    /// the `grouprec` engines instead.
    #[inline]
    pub fn fold(self, acc: f64, member_score: f64) -> f64 {
        match self {
            Semantics::LeastMisery => acc.min(member_score),
            Semantics::AggregateVoting => acc + member_score,
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                panic!("{self} is not decomposable; use combine()")
            }
        }
    }

    /// The identity element of [`Semantics::fold`].
    ///
    /// # Panics
    ///
    /// For the non-decomposable variants — see [`Semantics::fold`].
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            Semantics::LeastMisery => f64::INFINITY,
            Semantics::AggregateVoting => 0.0,
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                panic!("{self} is not decomposable; use combine()")
            }
        }
    }

    /// Combines a slice of member scores into the group score for one item.
    ///
    /// For [`Semantics::LeaderWeighted`] the slice is by convention ordered
    /// by ascending member id, so element 0 is the leader's score.
    pub fn combine(self, member_scores: &[f64]) -> f64 {
        match self {
            Semantics::LeastMisery => member_scores.iter().fold(f64::INFINITY, |a, &s| a.min(s)),
            Semantics::AggregateVoting => member_scores.iter().sum(),
            Semantics::Consensus { lambda } => {
                let n = member_scores.len();
                if n == 0 {
                    return 0.0;
                }
                let sum: f64 = member_scores.iter().sum();
                let sum_sq: f64 = member_scores.iter().map(|&s| s * s).sum();
                consensus_score(lambda, n as f64, sum, sum_sq)
            }
            Semantics::LeaderWeighted => {
                let n = member_scores.len();
                if n == 0 {
                    return 0.0;
                }
                let sum: f64 = member_scores.iter().sum();
                (sum + member_scores[0]) / (n as f64 + 1.0)
            }
        }
    }

    /// Short uppercase tag used in algorithm names
    /// (`LM` / `AV` / `CONS` / `LDR`).
    pub fn tag(self) -> &'static str {
        match self {
            Semantics::LeastMisery => "LM",
            Semantics::AggregateVoting => "AV",
            Semantics::Consensus { .. } => "CONS",
            Semantics::LeaderWeighted => "LDR",
        }
    }

    /// The paper's two semantics, for exhaustive sweeps pinned to the
    /// paper's worked examples. (The extended family is
    /// [`Semantics::extended`].)
    pub fn all() -> [Semantics; 2] {
        [Semantics::LeastMisery, Semantics::AggregateVoting]
    }

    /// The full semantics family — the paper's two plus Consensus (at the
    /// given `lambda`) and LeaderWeighted — for sweeps over every variant.
    pub fn extended(lambda: f64) -> [Semantics; 4] {
        [
            Semantics::LeastMisery,
            Semantics::AggregateVoting,
            Semantics::Consensus { lambda },
            Semantics::LeaderWeighted,
        ]
    }
}

/// `mean − λ · population std` from streaming moments: member count `n`,
/// `Σ x` and `Σ x²`. Shared by [`Semantics::combine`] and the scoring
/// engines so every code path computes bit-identical scores.
#[inline]
pub(crate) fn consensus_score(lambda: f64, n: f64, sum: f64, sum_sq: f64) -> f64 {
    let mean = sum / n;
    // Population variance; clamp the catastrophic-cancellation negatives.
    let var = (sum_sq / n - mean * mean).max(0.0);
    mean - lambda * var.sqrt()
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_is_min() {
        let s = Semantics::LeastMisery;
        assert_eq!(s.combine(&[4.0, 2.0, 5.0]), 2.0);
        assert_eq!(s.combine(&[3.0]), 3.0);
    }

    #[test]
    fn av_is_sum() {
        let s = Semantics::AggregateVoting;
        assert_eq!(s.combine(&[4.0, 2.0, 5.0]), 11.0);
        assert_eq!(s.combine(&[]), 0.0);
    }

    #[test]
    fn identity_is_neutral() {
        for sem in Semantics::all() {
            assert_eq!(sem.fold(sem.identity(), 3.5), 3.5);
        }
    }

    #[test]
    fn example3_group_scores() {
        // Example 3: u1 = (5,4,1), u2 = (1,4,5) under LM:
        // i1 -> 1, i2 -> 4, i3 -> 1.
        let lm = Semantics::LeastMisery;
        assert_eq!(lm.combine(&[5.0, 1.0]), 1.0);
        assert_eq!(lm.combine(&[4.0, 4.0]), 4.0);
        assert_eq!(lm.combine(&[1.0, 5.0]), 1.0);
    }

    #[test]
    fn display_tags() {
        assert_eq!(Semantics::LeastMisery.to_string(), "LM");
        assert_eq!(Semantics::AggregateVoting.to_string(), "AV");
        assert_eq!(Semantics::Consensus { lambda: 0.5 }.to_string(), "CONS");
        assert_eq!(Semantics::LeaderWeighted.to_string(), "LDR");
    }

    #[test]
    fn consensus_is_mean_minus_lambda_std() {
        // (1, 5): mean 3, population std 2.
        let c = Semantics::Consensus { lambda: 0.5 };
        assert!((c.combine(&[1.0, 5.0]) - 2.0).abs() < 1e-12);
        // λ = 0 is the plain average.
        let avg = Semantics::Consensus { lambda: 0.0 };
        assert!((avg.combine(&[1.0, 5.0]) - 3.0).abs() < 1e-12);
        // Unanimous groups pay no penalty regardless of λ.
        let hard = Semantics::Consensus { lambda: 10.0 };
        assert_eq!(hard.combine(&[4.0, 4.0, 4.0]), 4.0);
    }

    #[test]
    fn leader_weighted_doubles_the_first_member() {
        // Leader (element 0) at 5, the rest at 1: (5 + 1 + 1 + 5) / 4 = 3.
        let s = Semantics::LeaderWeighted;
        assert!((s.combine(&[5.0, 1.0, 1.0]) - 3.0).abs() < 1e-12);
        // Singleton: the leader is the whole group.
        assert_eq!(s.combine(&[4.0]), 4.0);
    }

    #[test]
    fn leader_weighted_is_a_weighted_average_on_the_scale() {
        // Theorem-2 premise check: with every member score in
        // [r_min, r_max], the LDR score is a convex combination and stays
        // on the scale — the paper's per-item r_max loss bound carries
        // over (see module docs).
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let s = Semantics::LeaderWeighted;
        for _ in 0..200 {
            let n = rng.gen_range(1..8usize);
            let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
            let sc = s.combine(&scores);
            let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                sc >= lo - 1e-12 && sc <= hi + 1e-12,
                "LDR {sc} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn consensus_violates_the_scale_lower_bound() {
        // Documented counterexample (module docs): on a 1–5 scale with
        // λ = 2, members rating (1, 5) score 3 − 2·2 = −1 < r_min, so the
        // Theorem-2 premise fails and no greedy error bound is claimed.
        let c = Semantics::Consensus { lambda: 2.0 };
        let sc = c.combine(&[1.0, 5.0]);
        assert!((sc - -1.0).abs() < 1e-12);
        assert!(sc < 1.0, "consensus score {sc} must fall below r_min = 1");
        // It is still bounded above by the mean (λ ≥ 0), hence by r_max.
        assert!(sc <= 5.0);
    }

    #[test]
    fn decomposability_gates() {
        assert!(Semantics::LeastMisery.is_decomposable());
        assert!(Semantics::AggregateVoting.is_decomposable());
        assert!(!Semantics::Consensus { lambda: 0.0 }.is_decomposable());
        assert!(!Semantics::LeaderWeighted.is_decomposable());
    }

    #[test]
    fn eq_and_hash_distinguish_lambda_by_bits() {
        use crate::fxhash::FxHashMap;
        let a = Semantics::Consensus { lambda: 0.5 };
        let b = Semantics::Consensus { lambda: 0.5 };
        let c = Semantics::Consensus { lambda: 1.0 };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, Semantics::LeaderWeighted);
        let mut map: FxHashMap<Semantics, u32> = FxHashMap::default();
        map.insert(a, 1);
        assert_eq!(map.get(&b), Some(&1));
        assert_eq!(map.get(&c), None);
    }

    #[test]
    fn extended_covers_all_variants() {
        let family = Semantics::extended(0.5);
        assert_eq!(family.len(), 4);
        assert_eq!(family[..2], Semantics::all());
    }
}
