//! Group recommendation semantics (Definitions 1 and 2 of the paper).
//!
//! A semantics turns the individual preference ratings of a group's members
//! for an item into a single *group satisfaction score* for that item:
//!
//! * **Least misery (LM)**: `sc(g, i) = min_{u in g} sc(u, i)` — the group is
//!   only as happy as its least happy member.
//! * **Aggregate voting (AV)**: `sc(g, i) = sum_{u in g} sc(u, i)` — the
//!   group's happiness is the sum of its members' happiness.

use std::fmt;

/// The two group recommendation semantics studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Semantics {
    /// Least misery (`F_LM`, Definition 1): the minimum member rating.
    LeastMisery,
    /// Aggregate voting (`F_AV`, Definition 2): the sum of member ratings.
    AggregateVoting,
}

impl Semantics {
    /// Folds one more member score into a running group score.
    ///
    /// `acc` starts at [`Semantics::identity`].
    #[inline]
    pub fn fold(self, acc: f64, member_score: f64) -> f64 {
        match self {
            Semantics::LeastMisery => acc.min(member_score),
            Semantics::AggregateVoting => acc + member_score,
        }
    }

    /// The identity element of [`Semantics::fold`].
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            Semantics::LeastMisery => f64::INFINITY,
            Semantics::AggregateVoting => 0.0,
        }
    }

    /// Combines a slice of member scores into the group score for one item.
    pub fn combine(self, member_scores: &[f64]) -> f64 {
        let mut acc = self.identity();
        for &s in member_scores {
            acc = self.fold(acc, s);
        }
        acc
    }

    /// Short uppercase tag used in algorithm names (`LM` / `AV`).
    pub fn tag(self) -> &'static str {
        match self {
            Semantics::LeastMisery => "LM",
            Semantics::AggregateVoting => "AV",
        }
    }

    /// Both semantics, for exhaustive sweeps.
    pub fn all() -> [Semantics; 2] {
        [Semantics::LeastMisery, Semantics::AggregateVoting]
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_is_min() {
        let s = Semantics::LeastMisery;
        assert_eq!(s.combine(&[4.0, 2.0, 5.0]), 2.0);
        assert_eq!(s.combine(&[3.0]), 3.0);
    }

    #[test]
    fn av_is_sum() {
        let s = Semantics::AggregateVoting;
        assert_eq!(s.combine(&[4.0, 2.0, 5.0]), 11.0);
        assert_eq!(s.combine(&[]), 0.0);
    }

    #[test]
    fn identity_is_neutral() {
        for sem in Semantics::all() {
            assert_eq!(sem.fold(sem.identity(), 3.5), 3.5);
        }
    }

    #[test]
    fn example3_group_scores() {
        // Example 3: u1 = (5,4,1), u2 = (1,4,5) under LM:
        // i1 -> 1, i2 -> 4, i3 -> 1.
        let lm = Semantics::LeastMisery;
        assert_eq!(lm.combine(&[5.0, 1.0]), 1.0);
        assert_eq!(lm.combine(&[4.0, 4.0]), 4.0);
        assert_eq!(lm.combine(&[1.0, 5.0]), 1.0);
    }

    #[test]
    fn display_tags() {
        assert_eq!(Semantics::LeastMisery.to_string(), "LM");
        assert_eq!(Semantics::AggregateVoting.to_string(), "AV");
    }
}
