//! Candidate items for a group: the items **no member has rated**.
//!
//! Group recommendation literature filters recommendation lists to
//! *candidate items* — re-recommending something a member already
//! consumed wastes the slot (Section 2.2's disjoint-preference model
//! makes every rated item a known quantity). The serving layer asks this
//! question once per `(grouping, group)` pair and caches the answer until
//! the grouping's version moves, so the engine is built for repeated
//! queries over one shared CSR matrix:
//!
//! * [`CandidateEngine`] keeps an epoch-marked scratch array sized to the
//!   catalogue. A query bumps the epoch, stamps every member's rated
//!   items, and emits the unstamped columns — no per-query allocation and
//!   no re-zeroing between queries.
//! * [`brute_force_candidates`] is the obvious set-difference, kept as
//!   the oracle the property tests compare the engine against.

use crate::error::{GfError, Result};
use crate::matrix::RatingMatrix;

/// The set difference computed the obvious way: collect every item any
/// member rated, return the rest in ascending item order. O(n_items)
/// scratch per call — the reference implementation for tests and offline
/// tooling, not the serving path.
pub fn brute_force_candidates(matrix: &RatingMatrix, members: &[u32]) -> Result<Vec<u32>> {
    let n_users = matrix.n_users();
    let n_items = matrix.n_items();
    let mut rated = vec![false; n_items as usize];
    for &u in members {
        if u >= n_users {
            return Err(GfError::UserOutOfRange { user: u, n_users });
        }
        for &i in matrix.user_items(u) {
            rated[i as usize] = true;
        }
    }
    Ok((0..n_items).filter(|&i| !rated[i as usize]).collect())
}

/// Reusable candidate-item scratch for repeated queries against one (or
/// successive) rating matrices.
///
/// `mark[i] == epoch` means item `i` was rated by some member of the
/// *current* query's group. Advancing the epoch invalidates every stamp
/// at once, so the scratch is never cleared; on the (astronomically
/// rare) epoch wrap the array is re-zeroed explicitly to keep stale
/// stamps from a previous era out.
#[derive(Debug, Default)]
pub struct CandidateEngine {
    mark: Vec<u32>,
    epoch: u32,
}

impl CandidateEngine {
    /// An engine with empty scratch; the first query sizes it.
    pub fn new() -> Self {
        CandidateEngine::default()
    }

    /// Writes the candidate items for `members` — ascending item order —
    /// into `out` (cleared first). Allocation-free once `out` and the
    /// scratch have reached the catalogue size.
    pub fn candidates_into(
        &mut self,
        matrix: &RatingMatrix,
        members: &[u32],
        out: &mut Vec<u32>,
    ) -> Result<()> {
        let n_users = matrix.n_users();
        let n_items = matrix.n_items() as usize;
        if self.mark.len() < n_items {
            self.mark.resize(n_items, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.fill(0);
                1
            }
        };
        let epoch = self.epoch;
        for &u in members {
            if u >= n_users {
                return Err(GfError::UserOutOfRange { user: u, n_users });
            }
            for &i in matrix.user_items(u) {
                self.mark[i as usize] = epoch;
            }
        }
        out.clear();
        for (i, &m) in self.mark[..n_items].iter().enumerate() {
            if m != epoch {
                out.push(i as u32);
            }
        }
        Ok(())
    }

    /// [`CandidateEngine::candidates_into`], returning a fresh vector.
    pub fn candidates_for_group(
        &mut self,
        matrix: &RatingMatrix,
        members: &[u32],
    ) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        self.candidates_into(matrix, members, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixBuilder;
    use crate::scale::RatingScale;

    fn matrix(triples: &[(u32, u32, f64)], n: u32, m: u32) -> RatingMatrix {
        let mut b = MatrixBuilder::new(n, m, RatingScale::one_to_five());
        for &(u, i, s) in triples {
            b.push(u, i, s).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn engine_matches_brute_force() {
        let m = matrix(&[(0, 0, 5.0), (0, 2, 3.0), (1, 1, 4.0), (2, 2, 2.0)], 3, 4);
        let mut engine = CandidateEngine::new();
        for members in [&[0u32][..], &[1], &[0, 1], &[0, 1, 2], &[]] {
            assert_eq!(
                engine.candidates_for_group(&m, members).unwrap(),
                brute_force_candidates(&m, members).unwrap(),
                "members {members:?}"
            );
        }
    }

    #[test]
    fn no_member_means_everything_is_candidate() {
        let m = matrix(&[(0, 0, 5.0)], 2, 3);
        let mut engine = CandidateEngine::new();
        assert_eq!(engine.candidates_for_group(&m, &[]).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn epochs_do_not_leak_between_queries() {
        let m = matrix(&[(0, 0, 5.0), (1, 1, 4.0)], 2, 3);
        let mut engine = CandidateEngine::new();
        assert_eq!(engine.candidates_for_group(&m, &[0]).unwrap(), vec![1, 2]);
        // The second query must not see user 0's stamp from the first.
        assert_eq!(engine.candidates_for_group(&m, &[1]).unwrap(), vec![0, 2]);
    }

    #[test]
    fn out_of_range_member_is_an_error() {
        let m = matrix(&[(0, 0, 5.0)], 1, 2);
        let mut engine = CandidateEngine::new();
        assert!(matches!(
            engine.candidates_for_group(&m, &[7]),
            Err(GfError::UserOutOfRange { user: 7, .. })
        ));
        assert!(matches!(
            brute_force_candidates(&m, &[7]),
            Err(GfError::UserOutOfRange { user: 7, .. })
        ));
    }

    #[test]
    fn scratch_grows_with_the_catalogue() {
        let small = matrix(&[(0, 0, 5.0)], 1, 2);
        let big = matrix(&[(0, 3, 5.0)], 1, 6);
        let mut engine = CandidateEngine::new();
        assert_eq!(engine.candidates_for_group(&small, &[0]).unwrap(), vec![1]);
        assert_eq!(
            engine.candidates_for_group(&big, &[0]).unwrap(),
            vec![0, 1, 2, 4, 5]
        );
    }
}
