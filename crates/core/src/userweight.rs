//! Weighted group members — the paper's other future-work direction
//! ("forming groups where the individual members are not treated equally",
//! Section 9).
//!
//! A weight `w_u >= 0` expresses how much member `u` counts:
//!
//! * **Weighted AV**: `sc(g, i) = Σ_u w_u · sc(u, i)` — a straight
//!   importance-weighted vote.
//! * **Weighted LM**: `sc(g, i) = min_u ( r_max - w_u · (r_max - sc(u, i)) )`
//!   — each member's *dissatisfaction* (distance below `r_max`) is scaled
//!   by their weight before taking the misery minimum, so `w_u = 1` is the
//!   classic semantics, `w_u = 0` makes the member invisible, and
//!   `w_u > 1` makes their misery dominate.
//!
//! Both reduce exactly to the unweighted semantics at all-ones weights
//! (tested below). The implementation favors clarity over raw speed
//! (O(|g| log d) per item): weighting is an analysis/extension feature, not
//! part of the paper's scalability claims.

use crate::aggregate::Aggregation;
use crate::grouprec::MissingPolicy;
use crate::matrix::RatingMatrix;
use crate::semantics::Semantics;

/// Group scoring with per-user weights.
#[derive(Debug, Clone)]
pub struct WeightedRecommender<'a> {
    matrix: &'a RatingMatrix,
    semantics: Semantics,
    policy: MissingPolicy,
    /// `weights[u]` = importance of user `u`; users outside the slice
    /// default to weight 1.
    weights: Vec<f64>,
}

impl<'a> WeightedRecommender<'a> {
    /// Creates a weighted recommender. Negative weights are clamped to 0.
    pub fn new(
        matrix: &'a RatingMatrix,
        semantics: Semantics,
        policy: MissingPolicy,
        weights: &[f64],
    ) -> Self {
        WeightedRecommender {
            matrix,
            semantics,
            policy,
            weights: weights.iter().map(|&w| w.max(0.0)).collect(),
        }
    }

    #[inline]
    fn weight(&self, u: u32) -> f64 {
        self.weights.get(u as usize).copied().unwrap_or(1.0)
    }

    fn member_score(&self, u: u32, item: u32) -> f64 {
        self.matrix.get(u, item).unwrap_or(match self.policy {
            MissingPolicy::Min | MissingPolicy::Skip => self.matrix.scale().min(),
            MissingPolicy::UserMean => self.matrix.user_mean(u),
        })
    }

    /// The weighted group score of one item.
    ///
    /// The two post-paper semantics generalize naturally over the same
    /// weight vector:
    ///
    /// * **Weighted Consensus**: weighted mean minus `λ` times the
    ///   weighted population standard deviation — unit weights reduce to
    ///   the classic consensus score.
    /// * **Weighted LeaderWeighted**: the leader (lowest member id) is
    ///   counted once more at their own weight,
    ///   `(Σ w_u·sc(u,i) + w_L·sc(L,i)) / (Σ w_u + w_L)` — unit weights
    ///   reduce to the classic `(Σ sc + sc_L) / (|g| + 1)`.
    pub fn item_score(&self, members: &[u32], item: u32) -> f64 {
        let r_max = self.matrix.scale().max();
        match self.semantics {
            Semantics::AggregateVoting => members
                .iter()
                .map(|&u| self.weight(u) * self.member_score(u, item))
                .sum(),
            Semantics::LeastMisery => members
                .iter()
                .map(|&u| r_max - self.weight(u) * (r_max - self.member_score(u, item)))
                .fold(f64::INFINITY, f64::min),
            Semantics::Consensus { lambda } => {
                let mut w_total = 0.0;
                let mut w_sum = 0.0;
                let mut w_sum_sq = 0.0;
                for &u in members {
                    let w = self.weight(u);
                    let s = self.member_score(u, item);
                    w_total += w;
                    w_sum += w * s;
                    w_sum_sq += w * s * s;
                }
                if w_total <= 0.0 {
                    return 0.0;
                }
                let mean = w_sum / w_total;
                let var = (w_sum_sq / w_total - mean * mean).max(0.0);
                mean - lambda * var.sqrt()
            }
            Semantics::LeaderWeighted => {
                let Some(leader) = members.iter().copied().min() else {
                    return 0.0;
                };
                let mut w_total = 0.0;
                let mut w_sum = 0.0;
                for &u in members {
                    let w = self.weight(u);
                    w_total += w;
                    w_sum += w * self.member_score(u, item);
                }
                let w_l = self.weight(leader);
                w_total += w_l;
                w_sum += w_l * self.member_score(leader, item);
                if w_total <= 0.0 {
                    return 0.0;
                }
                w_sum / w_total
            }
        }
    }

    /// The weighted top-`k` list for a group (full scan over all items;
    /// ties broken by ascending item id).
    pub fn top_k(&self, members: &[u32], k: usize) -> Vec<(u32, f64)> {
        if members.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(u32, f64)> = (0..self.matrix.n_items())
            .map(|i| (i, self.item_score(members, i)))
            .collect();
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// The group's weighted satisfaction with its own top-`k` list.
    pub fn satisfaction(&self, members: &[u32], k: usize, agg: Aggregation) -> f64 {
        let scores: Vec<f64> = self.top_k(members, k).iter().map(|&(_, s)| s).collect();
        agg.apply(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouprec::GroupRecommender;
    use crate::scale::RatingScale;

    fn example() -> RatingMatrix {
        RatingMatrix::from_dense(
            &[&[1.0, 4.0, 3.0][..], &[2.0, 3.0, 5.0], &[2.0, 5.0, 1.0]],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn unit_weights_reduce_to_classic_semantics() {
        let m = example();
        let members = [0u32, 1, 2];
        for sem in Semantics::all() {
            let weighted = WeightedRecommender::new(&m, sem, MissingPolicy::Min, &[1.0, 1.0, 1.0]);
            let classic = GroupRecommender::new(&m, sem);
            for k in 1..=3 {
                let a = weighted.top_k(&members, k);
                let b = classic.top_k(&members, k);
                assert_eq!(a, b, "{sem} k={k}");
            }
        }
    }

    #[test]
    fn zero_weight_member_is_invisible() {
        let m = example();
        for sem in Semantics::all() {
            let weighted = WeightedRecommender::new(&m, sem, MissingPolicy::Min, &[1.0, 1.0, 0.0]);
            let classic = GroupRecommender::new(&m, sem);
            // u3 weighted to zero: the pair {u1, u2} decides everything.
            let a = weighted.top_k(&[0, 1, 2], 3);
            let b = classic.top_k(&[0, 1], 3);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.0, y.0, "{sem}: item order differs");
                assert!((x.1 - y.1).abs() < 1e-9, "{sem}: {x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn unit_weights_reduce_to_classic_moment_semantics() {
        let m = example();
        let members = [0u32, 1, 2];
        for sem in [
            Semantics::Consensus { lambda: 0.8 },
            Semantics::LeaderWeighted,
        ] {
            let weighted = WeightedRecommender::new(&m, sem, MissingPolicy::Min, &[1.0, 1.0, 1.0]);
            let classic = GroupRecommender::new(&m, sem);
            for item in 0..3 {
                let a = weighted.item_score(&members, item);
                let b = classic.item_score(&members, item);
                assert!((a - b).abs() < 1e-9, "{sem} item {item}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn heavier_member_pulls_the_lm_list() {
        let m = example();
        // Weight u3 (who loves i2, hates i3) very heavily under LM: i3's
        // weighted misery explodes, i2's stays mild.
        let w = WeightedRecommender::new(
            &m,
            Semantics::LeastMisery,
            MissingPolicy::Min,
            &[1.0, 1.0, 3.0],
        );
        let top = w.top_k(&[0, 1, 2], 1);
        assert_eq!(top[0].0, 1, "i2 should win when u3 dominates: {top:?}");
        // And the worst item for u3 scores very low.
        let i3 = w.item_score(&[0, 1, 2], 2);
        assert!(i3 < 0.0, "weighted misery of i3 should go below 0: {i3}");
    }

    #[test]
    fn weighted_av_scales_votes() {
        let m = example();
        let w = WeightedRecommender::new(
            &m,
            Semantics::AggregateVoting,
            MissingPolicy::Min,
            &[2.0, 1.0, 1.0],
        );
        // i3: 2*3 + 5 + 1 = 12 vs unweighted 9.
        assert_eq!(w.item_score(&[0, 1, 2], 2), 12.0);
    }

    #[test]
    fn negative_weights_clamp_to_zero() {
        let m = example();
        let w = WeightedRecommender::new(
            &m,
            Semantics::AggregateVoting,
            MissingPolicy::Min,
            &[-5.0, 1.0, 1.0],
        );
        assert_eq!(w.item_score(&[0, 1, 2], 2), 6.0); // 0*3 + 5 + 1
    }

    #[test]
    fn missing_weights_default_to_one() {
        let m = example();
        let w = WeightedRecommender::new(&m, Semantics::AggregateVoting, MissingPolicy::Min, &[]);
        let classic = GroupRecommender::new(&m, Semantics::AggregateVoting);
        assert_eq!(
            w.satisfaction(&[0, 1, 2], 2, Aggregation::Sum),
            classic.satisfaction(&[0, 1, 2], 2, Aggregation::Sum)
        );
    }
}
