//! Property-based tests for the core data model, the group recommendation
//! engine and the greedy formation algorithms.

use gf_core::alg::bucket::{
    build_buckets, build_buckets_threaded, canonical_buckets, personal_top_k,
};
use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, GroupRecommender, MissingPolicy,
    PrefIndex, RatingMatrix, RatingScale, Semantics, ShardedFormer,
};
use proptest::prelude::*;

/// A random sparse rating instance on the 1..5 integer scale.
#[derive(Debug, Clone)]
struct Instance {
    n: u32,
    m: u32,
    triples: Vec<(u32, u32, f64)>,
}

fn instance(max_users: u32, max_items: u32) -> impl Strategy<Value = Instance> {
    (2..=max_users, 2..=max_items)
        .prop_flat_map(|(n, m)| {
            let cell = (0..n, 0..m, 1..=5u8, any::<bool>());
            (
                Just(n),
                Just(m),
                proptest::collection::vec(cell, 1..(n as usize * m as usize).min(64)),
            )
        })
        .prop_map(|(n, m, cells)| {
            let mut seen = std::collections::HashSet::new();
            let mut triples = Vec::new();
            for (u, i, r, keep) in cells {
                if keep && seen.insert((u, i)) {
                    triples.push((u, i, r as f64));
                }
            }
            // Ensure at least one rating so the instance is interesting.
            if triples.is_empty() {
                triples.push((0, 0, 3.0));
            }
            Instance { n, m, triples }
        })
}

fn matrix_of(inst: &Instance) -> RatingMatrix {
    RatingMatrix::from_triples(
        inst.n,
        inst.m,
        inst.triples.iter().copied(),
        RatingScale::one_to_five(),
    )
    .unwrap()
}

fn all_policies() -> [MissingPolicy; 3] {
    [
        MissingPolicy::Min,
        MissingPolicy::UserMean,
        MissingPolicy::Skip,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Greedy output is always a valid partition into at most `ell` groups
    /// whose stored objective matches a from-scratch recomputation.
    #[test]
    fn greedy_output_is_valid_partition(
        inst in instance(10, 8),
        k in 1usize..4,
        ell in 1usize..6,
        sem_lm in any::<bool>(),
        agg_ix in 0usize..3,
    ) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        let sem = if sem_lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let agg = Aggregation::paper_set()[agg_ix];
        let cfg = FormationConfig::new(sem, agg, k, ell);
        let r = GreedyFormer::new().form(&m, &prefs, &cfg).unwrap();
        r.grouping.validate(m.n_users(), ell).unwrap();
        let recomputed = gf_core::recompute_objective(&m, &r.grouping, sem, agg, cfg.policy, k);
        prop_assert!((recomputed - r.objective).abs() < 1e-9,
            "stored {} vs recomputed {recomputed}", r.objective);
    }

    /// The group top-k list is sorted by (score desc, item asc), has the
    /// right length, contains no duplicates, and every reported score
    /// matches the single-item oracle.
    #[test]
    fn group_top_k_is_sound(
        inst in instance(8, 8),
        k in 1usize..6,
        sem_lm in any::<bool>(),
        policy_ix in 0usize..3,
    ) {
        let m = matrix_of(&inst);
        let sem = if sem_lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let rec = GroupRecommender::new(&m, sem).with_policy(all_policies()[policy_ix]);
        let members: Vec<u32> = (0..m.n_users()).collect();
        let top = rec.top_k(&members, k);
        prop_assert_eq!(top.len(), k.min(m.n_items() as usize));
        for w in top.windows(2) {
            prop_assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "not sorted: {:?}", top);
        }
        let mut items: Vec<u32> = top.iter().map(|&(i, _)| i).collect();
        items.sort_unstable();
        items.dedup();
        prop_assert_eq!(items.len(), top.len(), "duplicate items in top-k");
        for &(item, score) in &top {
            let oracle = rec.item_score(&members, item);
            prop_assert!((score - oracle).abs() < 1e-9,
                "item {item}: {score} vs oracle {oracle}");
        }
    }

    /// The top-k list is exactly the k best items by (score desc, id asc)
    /// among *all* items — verified against a full oracle scan.
    #[test]
    fn group_top_k_matches_full_scan(
        inst in instance(6, 7),
        k in 1usize..8,
        sem_lm in any::<bool>(),
        policy_ix in 0usize..3,
    ) {
        let m = matrix_of(&inst);
        let sem = if sem_lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let rec = GroupRecommender::new(&m, sem).with_policy(all_policies()[policy_ix]);
        let members: Vec<u32> = (0..m.n_users()).collect();
        let mut full: Vec<(u32, f64)> = (0..m.n_items())
            .map(|i| (i, rec.item_score(&members, i)))
            .collect();
        full.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        full.truncate(k.min(m.n_items() as usize));
        let fast = rec.top_k(&members, k);
        prop_assert_eq!(fast.len(), full.len());
        for (f, o) in fast.iter().zip(full.iter()) {
            prop_assert_eq!(f.0, o.0, "fast {:?} vs oracle {:?}", fast, full);
            prop_assert!((f.1 - o.1).abs() < 1e-9);
        }
    }

    /// Personal top-k padding: correct length, non-increasing scores under
    /// Min policy, and all k items distinct.
    #[test]
    fn personal_top_k_padding(inst in instance(6, 10), k in 1usize..12) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        for u in 0..m.n_users() {
            let (items, scores) = personal_top_k(&m, &prefs, MissingPolicy::Min, u, k);
            prop_assert_eq!(items.len(), k.min(m.n_items() as usize));
            prop_assert_eq!(items.len(), scores.len());
            for w in scores.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
            let mut sorted = items.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), items.len());
        }
    }

    /// Section 5 observation: AV's coarser keys never produce more
    /// intermediate groups than LM's, for the same aggregation.
    #[test]
    fn av_buckets_never_exceed_lm_buckets(
        inst in instance(10, 6),
        k in 1usize..4,
        agg_ix in 0usize..3,
    ) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        let agg = Aggregation::paper_set()[agg_ix];
        let lm = build_buckets(&m, &prefs, Semantics::LeastMisery, agg, MissingPolicy::Min, k);
        let av = build_buckets(&m, &prefs, Semantics::AggregateVoting, agg, MissingPolicy::Min, k);
        prop_assert!(av.len() <= lm.len());
        // Buckets partition the users in both cases.
        let total_lm: usize = lm.iter().map(|b| b.users.len()).sum();
        let total_av: usize = av.iter().map(|b| b.users.len()).sum();
        prop_assert_eq!(total_lm, m.n_users() as usize);
        prop_assert_eq!(total_av, m.n_users() as usize);
    }

    /// Monotonicity in the group budget: more groups never hurt the greedy
    /// objective on LM (each extra group peels off the current best bucket).
    #[test]
    fn lm_objective_monotone_in_ell(inst in instance(10, 6), k in 1usize..3) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        let mut prev = f64::NEG_INFINITY;
        for ell in 1..=6usize {
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, k, ell);
            let r = GreedyFormer::new().form(&m, &prefs, &cfg).unwrap();
            prop_assert!(r.objective >= prev - 1e-9,
                "ell={ell}: {} < {prev}", r.objective);
            prev = r.objective;
        }
    }

    /// Determinism: two runs over the same input produce identical output.
    #[test]
    fn greedy_is_deterministic(inst in instance(10, 8), k in 1usize..4, ell in 1usize..5) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, k, ell);
        let a = GreedyFormer::new().form(&m, &prefs, &cfg).unwrap();
        let b = GreedyFormer::new().form(&m, &prefs, &cfg).unwrap();
        prop_assert_eq!(a.grouping, b.grouping);
    }

    /// Threaded Step-1 bucket building is bit-for-bit identical to the
    /// sequential path across thread counts, for every semantics and
    /// aggregation (ratings are integers, so shard-merged sums are exact).
    #[test]
    fn threaded_buckets_match_sequential(
        inst in instance(17, 8),
        k in 1usize..4,
        sem_lm in any::<bool>(),
        agg_ix in 0usize..3,
    ) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        let sem = if sem_lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let agg = Aggregation::paper_set()[agg_ix];
        let seq = canonical_buckets(build_buckets(&m, &prefs, sem, agg, MissingPolicy::Min, k));
        for threads in [1usize, 2, 7] {
            let par = canonical_buckets(build_buckets_threaded(
                &m, &prefs, sem, agg, MissingPolicy::Min, k, threads));
            prop_assert_eq!(&seq, &par, "threads={}", threads);
        }
    }

    /// A greedy run with a threaded config produces exactly the same
    /// grouping as the single-threaded default.
    #[test]
    fn threaded_greedy_matches_sequential(
        inst in instance(17, 6),
        k in 1usize..4,
        ell in 1usize..6,
        agg_ix in 0usize..3,
    ) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        let agg = Aggregation::paper_set()[agg_ix];
        let cfg = FormationConfig::new(Semantics::LeastMisery, agg, k, ell);
        let seq = GreedyFormer::new().form(&m, &prefs, &cfg).unwrap();
        for threads in [2usize, 7] {
            let par = GreedyFormer::new()
                .form(&m, &prefs, &cfg.with_threads(threads))
                .unwrap();
            prop_assert_eq!(&seq.grouping, &par.grouping, "threads={}", threads);
        }
    }

    /// Sharded formation always yields a valid partition into at most
    /// `ell` groups whose stored objective matches a recomputation, for
    /// shard counts below, at and above the group budget.
    #[test]
    fn sharded_former_is_valid_and_consistent(
        inst in instance(17, 6),
        k in 1usize..3,
        ell in 1usize..5,
        shards_ix in 0usize..3,
        sem_lm in any::<bool>(),
    ) {
        let m = matrix_of(&inst);
        let prefs = PrefIndex::build(&m);
        let sem = if sem_lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let shards = [1usize, 2, 7][shards_ix];
        let cfg = FormationConfig::new(sem, Aggregation::Min, k, ell);
        let r = ShardedFormer::new().with_shards(shards).form(&m, &prefs, &cfg).unwrap();
        r.grouping.validate(m.n_users(), ell).unwrap();
        let recomputed = gf_core::recompute_objective(&m, &r.grouping, sem,
            Aggregation::Min, cfg.policy, k);
        prop_assert!((recomputed - r.objective).abs() < 1e-9,
            "shards={shards}: stored {} vs recomputed {recomputed}", r.objective);
        // Determinism across repeated runs.
        let again = ShardedFormer::new().with_shards(shards).form(&m, &prefs, &cfg).unwrap();
        prop_assert_eq!(r.grouping, again.grouping);
    }

    /// The matrix builder round-trips triples regardless of insertion order.
    #[test]
    fn matrix_round_trip(inst in instance(8, 8)) {
        let m = matrix_of(&inst);
        prop_assert_eq!(m.nnz(), inst.triples.len());
        for &(u, i, s) in &inst.triples {
            prop_assert_eq!(m.get(u, i), Some(s));
        }
        let mut shuffled = inst.triples.clone();
        shuffled.reverse();
        let m2 = RatingMatrix::from_triples(inst.n, inst.m, shuffled,
            RatingScale::one_to_five()).unwrap();
        prop_assert_eq!(m, m2);
    }

    /// A stream of incremental upserts + per-user preference patches lands
    /// on exactly the matrix and index a cold rebuild of the final ratings
    /// produces — the invariant the serving layer's `/rate` path rests on.
    #[test]
    fn upsert_and_patch_match_cold_rebuild(
        inst in instance(8, 8),
        updates in proptest::collection::vec((0u32..8, 0u32..8, 1u8..=5), 1..12),
    ) {
        let mut m = matrix_of(&inst);
        let mut prefs = PrefIndex::build(&m);
        for &(u, i, r) in &updates {
            let (u, i) = (u % inst.n, i % inst.m);
            m.upsert(u, i, r as f64).unwrap();
            prefs.patch_user(&m, u);
        }
        // Cold rebuild from the final triple set.
        let mut finals: std::collections::HashMap<(u32, u32), f64> =
            inst.triples.iter().map(|&(u, i, s)| ((u, i), s)).collect();
        for &(u, i, r) in &updates {
            finals.insert((u % inst.n, i % inst.m), r as f64);
        }
        let cold = RatingMatrix::from_triples(
            inst.n,
            inst.m,
            finals.iter().map(|(&(u, i), &s)| (u, i, s)),
            RatingScale::one_to_five(),
        ).unwrap();
        prop_assert_eq!(&m, &cold);
        let cold_prefs = PrefIndex::build(&cold);
        for u in 0..m.n_users() {
            prop_assert_eq!(prefs.ranked_items(u), cold_prefs.ranked_items(u));
            prop_assert_eq!(prefs.ranked_scores(u), cold_prefs.ranked_scores(u));
        }
    }

    /// Transpose preserves every rating.
    #[test]
    fn transpose_preserves_ratings(inst in instance(8, 8)) {
        let m = matrix_of(&inst);
        let t = m.transpose();
        let mut count = 0usize;
        for i in 0..m.n_items() {
            for (pos, &u) in t.item_users(i).iter().enumerate() {
                prop_assert_eq!(m.get(u, i), Some(t.item_scores(i)[pos]));
                count += 1;
            }
        }
        prop_assert_eq!(count, m.nnz());
    }
}
