//! Property suite for dirty-bucket incremental re-formation: for random
//! rating streams split into arbitrary dirty-set partitions,
//! [`IncrementalFormer`] must (a) keep the Step-1 bucket state bit-for-bit
//! equal to a cold `build_buckets` run after **every** batch, (b) emit the
//! exact cold [`GreedyFormer`] grouping with the default unbounded repair
//! pass, and (c) under a capped repair pass stay within the documented
//! satisfaction bound and converge back to the cold grouping once updates
//! quiesce.

use gf_core::alg::bucket::{build_buckets, canonical_buckets};
use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, IncrementalFormer, MissingPolicy,
    PrefIndex, RatingDelta, RatingMatrix, RatingScale, Semantics,
};
use proptest::prelude::*;

/// A random sparse instance on the 1..5 integer grid with at least one
/// rating (builders reject empty matrices).
#[derive(Debug, Clone)]
struct Instance {
    n: u32,
    m: u32,
    triples: Vec<(u32, u32, f64)>,
}

fn instance(max_users: u32, max_items: u32) -> impl Strategy<Value = Instance> {
    (2..=max_users, 2..=max_items)
        .prop_flat_map(|(n, m)| {
            let cell = (0..n, 0..m, 1..=5u8, any::<bool>());
            (
                Just(n),
                Just(m),
                proptest::collection::vec(cell, 1..(n as usize * m as usize).min(40)),
            )
        })
        .prop_map(|(n, m, cells)| {
            let mut seen = std::collections::HashSet::new();
            let mut triples = Vec::new();
            for (u, i, r, keep) in cells {
                if keep && seen.insert((u, i)) {
                    triples.push((u, i, r as f64));
                }
            }
            if triples.is_empty() {
                triples.push((0, 0, 3.0));
            }
            Instance { n, m, triples }
        })
}

fn matrix_of(inst: &Instance) -> RatingMatrix {
    RatingMatrix::from_triples(
        inst.n,
        inst.m,
        inst.triples.iter().copied(),
        RatingScale::one_to_five(),
    )
    .unwrap()
}

fn config(sem_lm: bool, agg_ix: usize, k: usize, ell: usize, policy_ix: usize) -> FormationConfig {
    let sem = if sem_lm {
        Semantics::LeastMisery
    } else {
        Semantics::AggregateVoting
    };
    let policy = [
        MissingPolicy::Min,
        MissingPolicy::Skip,
        MissingPolicy::UserMean,
    ][policy_ix];
    FormationConfig::new(sem, Aggregation::paper_set()[agg_ix], k, ell).with_policy(policy)
}

/// Applies one dirty batch through the batched core hooks and returns the
/// deltas the former needs.
fn apply_batch(
    matrix: &mut RatingMatrix,
    prefs: &mut PrefIndex,
    batch: &[(u32, u32, f64)],
) -> Vec<RatingDelta> {
    let outcomes = matrix.upsert_batch(batch).unwrap();
    let users: Vec<u32> = batch.iter().map(|&(u, _, _)| u).collect();
    prefs.patch_users(matrix, &users);
    batch
        .iter()
        .zip(outcomes)
        .map(|(&(u, i, s), o)| RatingDelta::from_upsert(u, i, s, o))
        .collect()
}

/// Splits `updates` into batches of the given sizes (cycled); every
/// partition of the same stream must produce the same final state.
fn partition(updates: &[(u32, u32, f64)], sizes: &[usize]) -> Vec<Vec<(u32, u32, f64)>> {
    let mut batches = Vec::new();
    let mut rest = updates;
    let mut ix = 0usize;
    while !rest.is_empty() {
        let take = sizes[ix % sizes.len()].clamp(1, rest.len());
        batches.push(rest[..take].to_vec());
        rest = &rest[take..];
        ix += 1;
    }
    batches
}

fn assert_buckets_match_cold(
    former: &IncrementalFormer,
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    cfg: &FormationConfig,
) {
    let cold = canonical_buckets(build_buckets(
        matrix,
        prefs,
        cfg.semantics,
        cfg.aggregation,
        cfg.policy,
        cfg.k,
    ));
    assert_eq!(former.canonical_buckets(), cold);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Unbounded repair: after every dirty batch — however the stream is
    /// partitioned — buckets equal a cold Step 1 and the grouping equals a
    /// cold GreedyFormer run, exactly.
    #[test]
    fn incremental_equals_cold_over_any_partition(
        inst in instance(9, 7),
        updates in proptest::collection::vec((0u32..9, 0u32..7, 1u8..=5), 1..20),
        sizes in proptest::collection::vec(1usize..5, 1..4),
        (sem_lm, agg_ix, policy_ix) in (any::<bool>(), 0usize..3, 0usize..3),
        (k, ell) in (1usize..4, 1usize..5),
    ) {
        let cfg = config(sem_lm, agg_ix, k, ell, policy_ix);
        let mut matrix = matrix_of(&inst);
        let mut prefs = PrefIndex::build(&matrix);
        let mut former = IncrementalFormer::new(&matrix, &prefs, cfg).unwrap();
        let updates: Vec<(u32, u32, f64)> = updates
            .into_iter()
            .map(|(u, i, r)| (u % inst.n, i % inst.m, r as f64))
            .collect();
        for batch in partition(&updates, &sizes) {
            let deltas = apply_batch(&mut matrix, &mut prefs, &batch);
            former.refresh(&matrix, &prefs, &deltas).unwrap();
            assert_buckets_match_cold(&former, &matrix, &prefs, &cfg);
            prop_assert_eq!(former.selection_lag(), 0.0);
        }
        // Final state: the whole result (grouping order, top-k lists,
        // satisfactions, objective, bucket count) is the cold run's.
        let cold_prefs = PrefIndex::build(&matrix);
        for u in 0..inst.n {
            prop_assert_eq!(prefs.ranked_items(u), cold_prefs.ranked_items(u));
            prop_assert_eq!(prefs.ranked_scores(u), cold_prefs.ranked_scores(u));
        }
        let cold = GreedyFormer::new().form(&matrix, &cold_prefs, &cfg).unwrap();
        prop_assert_eq!(former.result(), &cold);
        former.result().grouping.validate(inst.n, cfg.ell).unwrap();
    }

    /// Capped repair: the objective never trails a cold rebuild by more
    /// than the documented bound, buckets stay exact throughout, and once
    /// updates quiesce the grouping converges back to the cold one.
    #[test]
    fn capped_repair_is_bounded_and_converges(
        inst in instance(8, 6),
        updates in proptest::collection::vec((0u32..8, 0u32..6, 1u8..=5), 1..16),
        sizes in proptest::collection::vec(1usize..4, 1..3),
        max_swaps in 0usize..3,
        (sem_lm, agg_ix) in (any::<bool>(), 0usize..3),
        (k, ell) in (1usize..3, 2usize..5),
    ) {
        let cfg = config(sem_lm, agg_ix, k, ell, 0);
        let mut matrix = matrix_of(&inst);
        let mut prefs = PrefIndex::build(&matrix);
        let mut former = IncrementalFormer::new(&matrix, &prefs, cfg)
            .unwrap()
            .with_max_swaps(max_swaps);
        let updates: Vec<(u32, u32, f64)> = updates
            .into_iter()
            .map(|(u, i, r)| (u % inst.n, i % inst.m, r as f64))
            .collect();
        for batch in partition(&updates, &sizes) {
            let deltas = apply_batch(&mut matrix, &mut prefs, &batch);
            former.refresh(&matrix, &prefs, &deltas).unwrap();
            assert_buckets_match_cold(&former, &matrix, &prefs, &cfg);
            former.result().grouping.validate(inst.n, cfg.ell).unwrap();
            let cold = GreedyFormer::new().form(&matrix, &prefs, &cfg).unwrap();
            let loss = cold.objective - former.result().objective;
            prop_assert!(
                loss <= former.quality_bound(&matrix) + 1e-9,
                "loss {} exceeds bound {}",
                loss,
                former.quality_bound(&matrix)
            );
        }
        // Quiesce: empty refreshes let a cap >= 1 catch up completely.
        let mut former = former.with_max_swaps(max_swaps.max(1));
        for _ in 0..=ell + updates.len() {
            former.refresh(&matrix, &prefs, &[]).unwrap();
        }
        prop_assert_eq!(former.selection_lag(), 0.0);
        let cold = GreedyFormer::new().form(&matrix, &prefs, &cfg).unwrap();
        prop_assert_eq!(former.result(), &cold);
    }

    /// The batched hooks themselves: `upsert_batch` + `patch_users` agree
    /// with per-update `upsert` + a cold `PrefIndex::build`.
    #[test]
    fn batched_hooks_match_sequential(
        inst in instance(7, 6),
        updates in proptest::collection::vec((0u32..7, 0u32..6, 1u8..=5), 1..16),
    ) {
        let updates: Vec<(u32, u32, f64)> = updates
            .into_iter()
            .map(|(u, i, r)| (u % inst.n, i % inst.m, r as f64))
            .collect();
        let mut batched = matrix_of(&inst);
        let mut prefs = PrefIndex::build(&batched);
        let outcomes = batched.upsert_batch(&updates).unwrap();
        let users: Vec<u32> = updates.iter().map(|&(u, _, _)| u).collect();
        prefs.patch_users(&batched, &users);
        let mut sequential = matrix_of(&inst);
        for (ix, &(u, i, s)) in updates.iter().enumerate() {
            let outcome = sequential.upsert(u, i, s).unwrap();
            prop_assert_eq!(outcomes[ix], outcome, "update {}", ix);
        }
        prop_assert_eq!(&batched, &sequential);
        let cold = PrefIndex::build(&batched);
        for u in 0..inst.n {
            prop_assert_eq!(prefs.ranked_items(u), cold.ranked_items(u));
            prop_assert_eq!(prefs.ranked_scores(u), cold.ranked_scores(u));
        }
    }
}
