//! Property suite for population growth: for **any** sequence of growth
//! batches — updates that admit never-seen users and items while mutating
//! existing cells — the grown state must equal a cold build over the final
//! union universe at every step:
//!
//! * `RatingMatrix::upsert_batch_under` / `with_upserts_under` == a cold
//!   `from_triples` over the union (and each other);
//! * `PrefIndex::patch_users` / `patched` == a cold `PrefIndex::build`;
//! * `IncrementalFormer` bucket state == a cold `build_buckets` run,
//!   bit for bit, and the emitted grouping == the cold `GreedyFormer`
//!   grouping exactly (unbounded repair).

use gf_core::alg::bucket::{build_buckets, canonical_buckets};
use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, GrowthPolicy, IncrementalFormer,
    MissingPolicy, PrefIndex, RatingDelta, RatingMatrix, RatingScale, Semantics,
};
use proptest::prelude::*;

/// A random sparse base instance on the 1..5 integer grid with at least
/// one rating (builders reject empty matrices).
#[derive(Debug, Clone)]
struct Instance {
    n: u32,
    m: u32,
    triples: Vec<(u32, u32, f64)>,
}

fn instance(max_users: u32, max_items: u32) -> impl Strategy<Value = Instance> {
    (2..=max_users, 2..=max_items)
        .prop_flat_map(|(n, m)| {
            let cell = (0..n, 0..m, 1..=5u8, any::<bool>());
            (
                Just(n),
                Just(m),
                proptest::collection::vec(cell, 1..(n as usize * m as usize).min(32)),
            )
        })
        .prop_map(|(n, m, cells)| {
            let mut seen = std::collections::HashSet::new();
            let mut triples = Vec::new();
            for (u, i, r, keep) in cells {
                if keep && seen.insert((u, i)) {
                    triples.push((u, i, r as f64));
                }
            }
            if triples.is_empty() {
                triples.push((0, 0, 3.0));
            }
            Instance { n, m, triples }
        })
}

fn matrix_of(inst: &Instance) -> RatingMatrix {
    RatingMatrix::from_triples(
        inst.n,
        inst.m,
        inst.triples.iter().copied(),
        RatingScale::one_to_five(),
    )
    .unwrap()
}

fn config(sem_lm: bool, agg_ix: usize, k: usize, ell: usize, policy_ix: usize) -> FormationConfig {
    let sem = if sem_lm {
        Semantics::LeastMisery
    } else {
        Semantics::AggregateVoting
    };
    let policy = [
        MissingPolicy::Min,
        MissingPolicy::Skip,
        MissingPolicy::UserMean,
    ][policy_ix];
    FormationConfig::new(sem, Aggregation::paper_set()[agg_ix], k, ell).with_policy(policy)
}

/// Splits `updates` into batches of the given sizes (cycled).
fn partition(updates: &[(u32, u32, f64)], sizes: &[usize]) -> Vec<Vec<(u32, u32, f64)>> {
    let mut batches = Vec::new();
    let mut rest = updates;
    let mut ix = 0usize;
    while !rest.is_empty() {
        let take = sizes[ix % sizes.len()].clamp(1, rest.len());
        batches.push(rest[..take].to_vec());
        rest = &rest[take..];
        ix += 1;
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The acceptance-criteria property: any sequence of growth batches
    /// leaves matrix, preference index and standing-former state equal to
    /// a cold build over the final union universe — after **every** batch.
    #[test]
    fn growth_batches_equal_cold_build_on_the_union(
        inst in instance(6, 5),
        // Updates reach past the base universe on both axes: users up to
        // base + 6, items up to base + 5, so batches interleave
        // admissions, gap rows and plain overwrites.
        updates in proptest::collection::vec((0u32..12, 0u32..10, 1u8..=5), 1..18),
        sizes in proptest::collection::vec(1usize..5, 1..4),
        (sem_lm, agg_ix, policy_ix) in (any::<bool>(), 0usize..3, 0usize..3),
        (k, ell) in (1usize..5, 1usize..5),
    ) {
        let cfg = config(sem_lm, agg_ix, k, ell, policy_ix);
        let growth = GrowthPolicy::Grow { max_users: 12, max_items: 10 };
        let updates: Vec<(u32, u32, f64)> = updates
            .into_iter()
            .map(|(u, i, r)| (u, i, r as f64))
            .collect();
        let mut matrix = matrix_of(&inst);
        let mut prefs = PrefIndex::build(&matrix);
        let mut former = IncrementalFormer::new(&matrix, &prefs, cfg).unwrap();
        // Cells tracked for the cold union rebuild.
        let mut finals: std::collections::HashMap<(u32, u32), f64> =
            inst.triples.iter().map(|&(u, i, s)| ((u, i), s)).collect();
        let (mut union_n, mut union_m) = (inst.n, inst.m);
        for batch in partition(&updates, &sizes) {
            // Pure (snapshot-succession) and in-place paths must agree.
            let (pure_matrix, pure_outcomes) =
                matrix.with_upserts_under(&batch, growth).unwrap();
            let users: Vec<u32> = batch.iter().map(|&(u, _, _)| u).collect();
            let pure_prefs = prefs.patched(&pure_matrix, &users);
            let outcomes = matrix.upsert_batch_under(&batch, growth).unwrap();
            prop_assert_eq!(&outcomes, &pure_outcomes);
            prop_assert_eq!(&pure_matrix, &matrix);
            prefs.patch_users(&matrix, &users);
            prop_assert_eq!(pure_prefs.n_users(), prefs.n_users());
            for u in 0..prefs.n_users() {
                prop_assert_eq!(pure_prefs.ranked_items(u), prefs.ranked_items(u));
                prop_assert_eq!(pure_prefs.ranked_scores(u), prefs.ranked_scores(u));
            }
            for &(u, i, s) in &batch {
                finals.insert((u, i), s);
                union_n = union_n.max(u + 1);
                union_m = union_m.max(i + 1);
            }
            let deltas: Vec<RatingDelta> = batch
                .iter()
                .zip(outcomes)
                .map(|(&(u, i, s), o)| RatingDelta::from_upsert(u, i, s, o))
                .collect();
            former.refresh(&matrix, &prefs, &deltas).unwrap();

            // Cold rebuild over the union universe.
            let cold_matrix = RatingMatrix::from_triples(
                union_n,
                union_m,
                finals.iter().map(|(&(u, i), &s)| (u, i, s)),
                RatingScale::one_to_five(),
            ).unwrap();
            prop_assert_eq!(&matrix, &cold_matrix);
            let cold_prefs = PrefIndex::build(&cold_matrix);
            prop_assert_eq!(prefs.n_users(), cold_prefs.n_users());
            for u in 0..union_n {
                prop_assert_eq!(prefs.ranked_items(u), cold_prefs.ranked_items(u));
                prop_assert_eq!(prefs.ranked_scores(u), cold_prefs.ranked_scores(u));
            }
            let cold_buckets = canonical_buckets(build_buckets(
                &cold_matrix,
                &cold_prefs,
                cfg.semantics,
                cfg.aggregation,
                cfg.policy,
                cfg.k,
            ));
            prop_assert_eq!(former.canonical_buckets(), cold_buckets);
            prop_assert_eq!(former.selection_lag(), 0.0);
            let cold = GreedyFormer::new().form(&cold_matrix, &cold_prefs, &cfg).unwrap();
            prop_assert_eq!(former.result(), &cold);
            former.result().grouping.validate(union_n, cfg.ell).unwrap();
        }
    }

    /// Growth caps are atomic: a batch that would blow past the cap leaves
    /// matrix, prefs and former untouched and keeps serving the old state.
    #[test]
    fn exhausted_caps_reject_atomically(
        inst in instance(5, 4),
        good in proptest::collection::vec((0u32..7, 0u32..6, 1u8..=5), 0..6),
        overflow_user in 9u32..20,
    ) {
        let growth = GrowthPolicy::Grow { max_users: 7, max_items: 6 };
        let mut matrix = matrix_of(&inst);
        let good: Vec<(u32, u32, f64)> = good
            .into_iter()
            .map(|(u, i, r)| (u, i, r as f64))
            .collect();
        matrix.upsert_batch_under(&good, growth).unwrap();
        let before = matrix.clone();
        let mut bad = good.clone();
        bad.push((overflow_user, 0, 3.0));
        prop_assert!(matches!(
            matrix.upsert_batch_under(&bad, growth),
            Err(gf_core::GfError::GrowthExhausted { axis: "user", .. })
        ));
        prop_assert_eq!(&matrix, &before);
        prop_assert!(matches!(
            matrix.upsert_batch_under(&[(0, 6, 3.0)], growth),
            Err(gf_core::GfError::GrowthExhausted { axis: "item", .. })
        ));
        prop_assert_eq!(&matrix, &before);
    }
}
