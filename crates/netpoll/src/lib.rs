//! # gf-netpoll — minimal readiness notification for the serving transport
//!
//! The workspace builds offline with zero external dependencies, so this
//! crate plays the role `mio`/`polling` would otherwise fill: a safe,
//! tiny wrapper over the platform readiness API, exposing exactly the
//! surface `gf-serve`'s event loop needs.
//!
//! * [`Poller`] — a level-triggered `epoll` instance: register file
//!   descriptors with a `u64` token and an [`Interest`], then block in
//!   [`Poller::wait`] until any of them are ready.
//! * [`Waker`] — a loopback datagram socket registered like any other
//!   fd; [`Waker::wake`] makes a blocked [`Poller::wait`] return from
//!   another thread. (A `UdpSocket` pair instead of an `eventfd` keeps
//!   the unsafe surface down to the four `epoll` calls.)
//!
//! The Linux implementation is the real one; every other platform gets
//! a stub whose constructors return [`std::io::ErrorKind::Unsupported`]
//! so callers can probe with [`supported`] and fall back to a blocking
//! transport. This is the **only** crate in the workspace that contains
//! `unsafe` code — four FFI declarations and the `OwnedFd` adoption of
//! the fd `epoll_create1` returns — everything above it (including all
//! of `gf-serve`) keeps `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Whether this platform has a real readiness backend.
///
/// `false` means [`Poller::new`] will fail with
/// [`std::io::ErrorKind::Unsupported`]; callers should use their
/// blocking transport instead.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// What readiness a registration asks to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (includes peer hang-up, so a read observes EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The fd is in an error or hang-up state (`EPOLLERR`/`EPOLLHUP`);
    /// delivered regardless of the registered interest.
    pub error: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::net::UdpSocket;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    /// The raw libc surface. `std` links libc on every Linux target, so
    /// declaring the four symbols here adds no dependency; `errno` is
    /// read through `io::Error::last_os_error()` as usual.
    #[allow(unsafe_code)]
    mod sys {
        use std::os::raw::c_int;

        /// Kernel ABI: `struct epoll_event` is packed on x86 so the
        /// 64-bit payload sits at offset 4.
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
        #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLL_CLOEXEC: c_int = 0o2000000;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }
    }

    /// A level-triggered `epoll` instance.
    pub struct Poller {
        epfd: OwnedFd,
        /// Scratch buffer reused across `wait` calls.
        buf: Vec<sys::EpollEvent>,
    }

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if interest.readable {
            mask |= sys::EPOLLIN;
        }
        if interest.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    impl Poller {
        /// Creates a new epoll instance (close-on-exec).
        #[allow(unsafe_code)]
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; a non-negative return is a freshly
            // created fd this process owns, adopted exactly once.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `epfd` was just returned by the kernel and is not
            // owned by anything else.
            let epfd = unsafe { OwnedFd::from_raw_fd(epfd) };
            Ok(Poller {
                epfd,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        #[allow(unsafe_code)]
        fn ctl(
            &self,
            op: std::os::raw::c_int,
            fd: RawFd,
            event: u32,
            token: u64,
        ) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: event,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` with `token`; readiness per `interest`.
        pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_ADD,
                fd.as_raw_fd(),
                interest_mask(interest),
                token,
            )
        }

        /// Changes the interest set of an already-registered `fd`.
        pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_MOD,
                fd.as_raw_fd(),
                interest_mask(interest),
                token,
            )
        }

        /// Deregisters `fd`. Closing the fd deregisters implicitly, so
        /// this is only needed when the fd lives on.
        pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
        }

        /// Blocks until at least one registered fd is ready or `timeout`
        /// elapses (`None` blocks indefinitely). `events` is cleared
        /// first and then filled with this wakeup's readiness — stale
        /// events never survive into the next iteration. Returns the
        /// number of events delivered; `EINTR` retries transparently.
        #[allow(unsafe_code)]
        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let timeout_ms: std::os::raw::c_int = match timeout {
                // Round up so a 100µs deadline cannot spin at timeout 0.
                Some(t) => t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as std::os::raw::c_int,
                None => -1,
            };
            let n = loop {
                // SAFETY: `buf` is a live, properly sized allocation for
                // the duration of the call; the kernel writes at most
                // `buf.len()` events into it.
                let rc = unsafe {
                    sys::epoll_wait(
                        self.epfd.as_raw_fd(),
                        self.buf.as_mut_ptr(),
                        self.buf.len() as std::os::raw::c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.buf[..n] {
                // Copy out of the (possibly packed) struct by value.
                let (mask, data) = (raw.events, raw.data);
                events.push(Event {
                    token: data,
                    readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                    writable: mask & sys::EPOLLOUT != 0,
                    error: mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    /// Cross-thread wake-up for a blocked [`Poller::wait`]: a connected
    /// loopback `UdpSocket` pair. Register the waker's receiving socket
    /// like any fd, call [`Waker::wake`] from any thread, and drain it
    /// with [`Waker::drain`] when its token fires.
    #[derive(Debug)]
    pub struct Waker {
        rx: UdpSocket,
        tx: UdpSocket,
    }

    impl Waker {
        /// Creates the socket pair (both non-blocking).
        pub fn new() -> io::Result<Waker> {
            let rx = UdpSocket::bind("127.0.0.1:0")?;
            let tx = UdpSocket::bind("127.0.0.1:0")?;
            tx.connect(rx.local_addr()?)?;
            // Reject datagrams from anyone but our own tx socket.
            rx.connect(tx.local_addr()?)?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            Ok(Waker { rx, tx })
        }

        /// Makes the owning poller's `wait` return. Never blocks; a full
        /// socket buffer means a wake-up is already pending, which is all
        /// the caller wanted.
        pub fn wake(&self) {
            let _ = self.tx.send(&[1u8]);
        }

        /// Consumes pending wake-ups so level-triggered polling quiesces.
        pub fn drain(&self) {
            let mut buf = [0u8; 16];
            while self.rx.recv(&mut buf).is_ok() {}
        }
    }

    impl AsRawFd for Waker {
        fn as_raw_fd(&self) -> RawFd {
            self.rx.as_raw_fd()
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "gf-netpoll: no readiness backend on this platform (use the blocking transport)",
        )
    }

    /// Stub poller; constructors fail with `Unsupported`.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails on this platform.
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: &impl Fd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: &impl Fd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: &impl Fd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn wait(
            &mut self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stand-in bound for the stub's fd parameters.
    pub trait Fd {}
    impl<T> Fd for T {}

    /// Stub waker; constructor fails with `Unsupported`.
    #[derive(Debug)]
    pub struct Waker {}

    impl Waker {
        /// Always fails on this platform.
        pub fn new() -> io::Result<Waker> {
            Err(unsupported())
        }

        /// No-op.
        pub fn wake(&self) {}

        /// No-op.
        pub fn drain(&self) {}
    }
}

pub use imp::{Poller, Waker};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn readiness_round_trip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&listener, 7, Interest::READ).unwrap();

        // Nothing pending: a short wait times out empty.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // A connect makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.add(&accepted, 9, Interest::READ).unwrap();

        // Payload arrives: token 9 readable; the write side observes
        // writability once asked for it.
        client.write_all(b"ping").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        let mut buf = [0u8; 8];
        let mut acc = accepted;
        assert_eq!(acc.read(&mut buf).unwrap(), 4);

        poller.modify(&acc, 9, Interest::BOTH).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.writable));

        // Peer close is visible as readable (EOF) on a level-triggered
        // registration.
        drop(client);
        poller.modify(&acc, 9, Interest::READ).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        assert_eq!(acc.read(&mut buf).unwrap(), 0, "EOF after peer close");
        let _ = acc.as_raw_fd();
    }

    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(&*waker, u64::MAX, Interest::READ).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        waker.drain();
        // Drained: the next wait is quiet again.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn supported_reports_linux_backend() {
        assert!(supported());
    }
}
