//! Property-based tests for the prediction substrate: every predictor must
//! respect the rating scale on arbitrary inputs, completion must preserve
//! known ratings, and error metrics must satisfy their inequalities.

use gf_core::{RatingMatrix, RatingScale};
use gf_recsys::{
    complete_matrix, complete_matrix_threaded, mae, rmse, BiasModel, ItemItemKnn,
    MatrixFactorization, MfConfig, RatingPredictor, SlopeOne,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SparseInstance {
    n: u32,
    m: u32,
    triples: Vec<(u32, u32, f64)>,
}

fn sparse_instance() -> impl Strategy<Value = SparseInstance> {
    (2..12u32, 2..10u32)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                Just(m),
                proptest::collection::vec((0..n, 0..m, 1..=5u8), 1..50),
            )
        })
        .prop_map(|(n, m, cells)| {
            let mut seen = std::collections::HashSet::new();
            let mut triples = Vec::new();
            for (u, i, r) in cells {
                if seen.insert((u, i)) {
                    triples.push((u, i, r as f64));
                }
            }
            SparseInstance { n, m, triples }
        })
}

fn matrix_of(inst: &SparseInstance) -> RatingMatrix {
    RatingMatrix::from_triples(
        inst.n,
        inst.m,
        inst.triples.iter().copied(),
        RatingScale::one_to_five(),
    )
    .unwrap()
}

fn quick_mf() -> MfConfig {
    MfConfig {
        n_factors: 4,
        n_epochs: 5,
        learning_rate: 0.02,
        regularization: 0.05,
        seed: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All four predictors stay within the scale everywhere, including
    /// out-of-range indices.
    #[test]
    fn predictors_respect_scale(inst in sparse_instance()) {
        let m = matrix_of(&inst);
        let bias = BiasModel::fit(&m, 10.0);
        let knn = ItemItemKnn::fit(&m, 5, 1.0);
        let slope = SlopeOne::fit(&m);
        let mf = MatrixFactorization::fit(&m, quick_mf());
        let predictors: [&dyn RatingPredictor; 4] = [&bias, &knn, &slope, &mf];
        for p in predictors {
            for u in 0..inst.n + 2 {
                for i in 0..inst.m + 2 {
                    let v = p.predict(u, i);
                    prop_assert!((1.0..=5.0).contains(&v), "({u},{i}) -> {v}");
                }
            }
        }
    }

    /// Completion is dense, preserves every known rating, and respects an
    /// optional quantization grid.
    #[test]
    fn completion_contract(inst in sparse_instance(), quantize in any::<bool>()) {
        let m = matrix_of(&inst);
        let bias = BiasModel::fit(&m, 10.0);
        let step = if quantize { Some(1.0) } else { None };
        let full = complete_matrix(&m, &bias, step).unwrap();
        prop_assert_eq!(full.density(), 1.0);
        for u in 0..m.n_users() {
            for (i, s) in m.user_ratings(u) {
                prop_assert_eq!(full.get(u, i), Some(s));
            }
            if quantize {
                for (_, s) in full.user_ratings(u) {
                    prop_assert_eq!(s, s.round());
                }
            }
        }
    }

    /// Threaded completion is bit-for-bit identical to the sequential path
    /// across thread counts {1, 2, 7} and auto mode, with arbitrary
    /// predictors and with/without quantization.
    #[test]
    fn threaded_completion_matches_sequential(
        inst in sparse_instance(),
        quantize in any::<bool>(),
        use_knn in any::<bool>(),
    ) {
        let m = matrix_of(&inst);
        let step = if quantize { Some(1.0) } else { None };
        let seq = if use_knn {
            let knn = ItemItemKnn::fit(&m, 5, 1.0);
            let seq = complete_matrix(&m, &knn, step).unwrap();
            for threads in [1usize, 2, 7, 0] {
                let par = complete_matrix_threaded(&m, &knn, step, threads).unwrap();
                prop_assert_eq!(&seq, &par, "knn threads={}", threads);
            }
            seq
        } else {
            let bias = BiasModel::fit(&m, 10.0);
            let seq = complete_matrix(&m, &bias, step).unwrap();
            for threads in [1usize, 2, 7, 0] {
                let par = complete_matrix_threaded(&m, &bias, step, threads).unwrap();
                prop_assert_eq!(&seq, &par, "bias threads={}", threads);
            }
            seq
        };
        prop_assert_eq!(seq.density(), 1.0);
    }

    /// MAE <= RMSE always; both are zero on a perfect predictor.
    #[test]
    fn error_metric_inequalities(inst in sparse_instance()) {
        let m = matrix_of(&inst);
        struct Oracle<'a>(&'a RatingMatrix);
        impl RatingPredictor for Oracle<'_> {
            fn predict(&self, u: u32, i: u32) -> f64 {
                self.0.get(u, i).unwrap_or(3.0)
            }
            fn scale(&self) -> RatingScale {
                RatingScale::one_to_five()
            }
        }
        let test: Vec<(u32, u32, f64)> = inst.triples.clone();
        let oracle = Oracle(&m);
        prop_assert_eq!(rmse(&oracle, &test), 0.0);
        prop_assert_eq!(mae(&oracle, &test), 0.0);
        let bias = BiasModel::fit(&m, 10.0);
        prop_assert!(mae(&bias, &test) <= rmse(&bias, &test) + 1e-12);
    }

    /// Slope One deviations are antisymmetric for every co-rated pair.
    #[test]
    fn slopeone_antisymmetry(inst in sparse_instance()) {
        let m = matrix_of(&inst);
        let s = SlopeOne::fit(&m);
        for i in 0..inst.m {
            for j in 0..inst.m {
                if i == j { continue; }
                match (s.deviation(i, j), s.deviation(j, i)) {
                    (Some((dij, nij)), Some((dji, nji))) => {
                        prop_assert_eq!(nij, nji);
                        prop_assert!((dij + dji).abs() < 1e-12);
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "one-sided deviation for ({i},{j})"),
                }
            }
        }
    }
}
