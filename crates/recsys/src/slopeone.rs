//! Slope One — the classic lightweight CF predictor (Lemire & Maclachlan,
//! 2005).
//!
//! For every item pair `(i, j)` the model stores the average rating
//! difference `dev(i, j)` over their co-raters; a prediction for `(u, i)`
//! averages `r_uj + dev(i, j)` over the items `j` the user rated, weighted
//! by co-rater support. It has no hyper-parameters beyond the matrix
//! itself, which makes it a robust sanity predictor between the bias model
//! and the tuned KNN/MF models.

use crate::predictor::RatingPredictor;
use gf_core::{FxHashMap, RatingMatrix, RatingScale};

/// Weighted Slope One predictor.
#[derive(Debug, Clone)]
pub struct SlopeOne {
    scale: RatingScale,
    /// `(i << 32 | j)` for `i < j` → (sum of `r_i - r_j`, co-rater count).
    devs: FxHashMap<u64, (f64, u32)>,
    /// Fallback when a user/item has no usable deviations.
    user_means: Vec<f64>,
    global_mean: f64,
    /// Row maps for O(1) rating lookups at predict time.
    rows: Vec<FxHashMap<u32, f64>>,
}

impl SlopeOne {
    /// Fits the pairwise deviation table. O(Σ_u d_u²), like item-item KNN.
    pub fn fit(matrix: &RatingMatrix) -> Self {
        let mut devs: FxHashMap<u64, (f64, u32)> = FxHashMap::default();
        for u in 0..matrix.n_users() {
            let items = matrix.user_items(u);
            let scores = matrix.user_scores(u);
            for a in 0..items.len() {
                for b in (a + 1)..items.len() {
                    // items are sorted ascending, so items[a] < items[b].
                    let key = ((items[a] as u64) << 32) | items[b] as u64;
                    let e = devs.entry(key).or_insert((0.0, 0));
                    e.0 += scores[a] - scores[b];
                    e.1 += 1;
                }
            }
        }
        SlopeOne {
            scale: matrix.scale(),
            devs,
            user_means: (0..matrix.n_users()).map(|u| matrix.user_mean(u)).collect(),
            global_mean: matrix.global_mean(),
            rows: (0..matrix.n_users())
                .map(|u| matrix.user_ratings(u).collect())
                .collect(),
        }
    }

    /// The fitted deviation `dev(i, j)` = average of `r_i - r_j`, with the
    /// number of co-raters, if any user rated both.
    pub fn deviation(&self, i: u32, j: u32) -> Option<(f64, u32)> {
        if i == j {
            return Some((0.0, 0));
        }
        let (lo, hi, flip) = if i < j { (i, j, false) } else { (j, i, true) };
        let key = ((lo as u64) << 32) | hi as u64;
        self.devs.get(&key).map(|&(sum, n)| {
            let dev = sum / n as f64;
            (if flip { -dev } else { dev }, n)
        })
    }
}

impl RatingPredictor for SlopeOne {
    fn predict(&self, u: u32, i: u32) -> f64 {
        let Some(row) = self.rows.get(u as usize) else {
            return self.scale.clamp(self.global_mean);
        };
        if let Some(&r) = row.get(&i) {
            return r; // known rating
        }
        let mut num = 0.0;
        let mut den = 0u32;
        for (&j, &r_uj) in row {
            if let Some((dev, support)) = self.deviation(i, j) {
                if support > 0 {
                    num += (r_uj + dev) * support as f64;
                    den += support;
                }
            }
        }
        if den == 0 {
            let fallback = self
                .user_means
                .get(u as usize)
                .copied()
                .unwrap_or(self.global_mean);
            return self.scale.clamp(fallback);
        }
        self.scale.clamp(num / den as f64)
    }

    fn scale(&self) -> RatingScale {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_datasets::split::holdout_split;
    use gf_datasets::SynthConfig;

    /// The canonical Slope One example from the original paper: users rate
    /// items A and B; dev(B, A) = ((3-5) + (4-2)) / 2 ... here simplified.
    fn toy() -> RatingMatrix {
        RatingMatrix::from_triples(
            3,
            3,
            vec![
                (0, 0, 5.0),
                (0, 1, 3.0),
                (0, 2, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (2, 1, 2.0),
                (2, 2, 5.0),
            ],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn deviations_are_antisymmetric() {
        let m = toy();
        let s = SlopeOne::fit(&m);
        let (d01, n01) = s.deviation(0, 1).unwrap();
        let (d10, n10) = s.deviation(1, 0).unwrap();
        assert_eq!(n01, n10);
        assert!((d01 + d10).abs() < 1e-12);
        // dev(i0, i1) over co-raters u0 (5-3) and u1 (3-4): (2 - 1)/2 = 0.5.
        assert!((d01 - 0.5).abs() < 1e-12);
        assert_eq!(n01, 2);
    }

    #[test]
    fn predicts_from_deviations() {
        let m = toy();
        let s = SlopeOne::fit(&m);
        // u2 rated i1=2, i2=5; predict i0 via dev(i0,i1)=0.5 (support 2)
        // and dev(i0,i2)=3 (support 1, from u0: 5-2):
        // ((2+0.5)*2 + (5+3)*1) / 3 = 13/3.
        let p = s.predict(2, 0);
        assert!((p - 13.0 / 3.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn known_ratings_returned_verbatim() {
        let m = toy();
        let s = SlopeOne::fit(&m);
        assert_eq!(s.predict(0, 0), 5.0);
        assert_eq!(s.predict(2, 2), 5.0);
    }

    #[test]
    fn predictions_within_scale() {
        let d = SynthConfig::yahoo_music()
            .with_users(50)
            .with_items(40)
            .generate();
        let s = SlopeOne::fit(&d.matrix);
        for u in 0..50 {
            for i in 0..40 {
                let p = s.predict(u, i);
                assert!((1.0..=5.0).contains(&p), "({u},{i}) -> {p}");
            }
        }
    }

    #[test]
    fn cold_user_falls_back_to_mean() {
        let m = RatingMatrix::from_triples(
            2,
            2,
            vec![(0, 0, 4.0), (0, 1, 2.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let s = SlopeOne::fit(&m);
        // u1 rated nothing: user mean falls back to scale midpoint 3.
        assert_eq!(s.predict(1, 0), 3.0);
        // Unknown user id entirely: global mean.
        assert_eq!(s.predict(99, 0), 3.0);
    }

    #[test]
    fn beats_global_mean_on_holdout() {
        // Slope One models *global* item-to-item deltas. With several taste
        // archetypes the generator's item effects are cluster-conditional
        // and cancel globally, so restrict to one archetype — the regime
        // Slope One's model class actually covers.
        let mut cfg = SynthConfig::yahoo_music().with_users(120).with_items(60);
        cfg.n_clusters = 1;
        let d = cfg.generate();
        let h = holdout_split(&d.matrix, 0.2, 3).unwrap();
        let s = SlopeOne::fit(&h.train);
        let mu = h.train.global_mean();
        let mut se_slope = 0.0;
        let mut se_mean = 0.0;
        for &(u, i, r) in &h.test {
            let e = r - s.predict(u, i);
            se_slope += e * e;
            let e = r - mu;
            se_mean += e * e;
        }
        assert!(
            se_slope < se_mean,
            "SlopeOne RMSE² {se_slope:.1} should beat mean {se_mean:.1}"
        );
    }
}
