//! Baseline bias model: `r̂(u, i) = μ + b_u + b_i`.
//!
//! The classic damped-mean baseline. Biases are regularized toward zero by
//! a damping term so that users/items with few ratings do not swing wildly —
//! and it is the base estimate the KNN model corrects.

use crate::predictor::RatingPredictor;
use gf_core::{RatingMatrix, RatingScale};

/// Global mean plus damped user and item biases.
#[derive(Debug, Clone)]
pub struct BiasModel {
    scale: RatingScale,
    mu: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
}

impl BiasModel {
    /// Fits the model. `damping` is the regularization pseudo-count
    /// (25 is a reasonable default for 1–5 star data).
    pub fn fit(matrix: &RatingMatrix, damping: f64) -> Self {
        let mu = matrix.global_mean();
        let n = matrix.n_users() as usize;
        let m = matrix.n_items() as usize;

        // Item biases first (from raw residuals vs μ), then user biases
        // from residuals vs μ + b_i.
        let mut item_sum = vec![0.0f64; m];
        let mut item_cnt = vec![0usize; m];
        for u in 0..matrix.n_users() {
            for (i, s) in matrix.user_ratings(u) {
                item_sum[i as usize] += s - mu;
                item_cnt[i as usize] += 1;
            }
        }
        let item_bias: Vec<f64> = (0..m)
            .map(|i| item_sum[i] / (item_cnt[i] as f64 + damping))
            .collect();

        let mut user_bias = vec![0.0f64; n];
        for u in 0..matrix.n_users() {
            let mut acc = 0.0;
            for (i, s) in matrix.user_ratings(u) {
                acc += s - mu - item_bias[i as usize];
            }
            user_bias[u as usize] = acc / (matrix.degree(u) as f64 + damping);
        }

        BiasModel {
            scale: matrix.scale(),
            mu,
            user_bias,
            item_bias,
        }
    }

    /// The fitted global mean μ.
    pub fn global_mean(&self) -> f64 {
        self.mu
    }

    /// The fitted bias of user `u`.
    pub fn user_bias(&self, u: u32) -> f64 {
        self.user_bias.get(u as usize).copied().unwrap_or(0.0)
    }

    /// The fitted bias of item `i`.
    pub fn item_bias(&self, i: u32) -> f64 {
        self.item_bias.get(i as usize).copied().unwrap_or(0.0)
    }

    /// The unclamped base estimate `μ + b_u + b_i` (used internally by the
    /// KNN model, which corrects residuals around it).
    pub fn baseline(&self, u: u32, i: u32) -> f64 {
        self.mu + self.user_bias(u) + self.item_bias(i)
    }
}

impl RatingPredictor for BiasModel {
    fn predict(&self, u: u32, i: u32) -> f64 {
        self.scale.clamp(self.baseline(u, i))
    }

    fn scale(&self) -> RatingScale {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::RatingMatrix;

    fn toy() -> RatingMatrix {
        // u0 is generous (5,5,4), u1 is harsh (1,2,1); i1 is liked by both
        // relative to their own level.
        RatingMatrix::from_dense(
            &[&[5.0, 5.0, 4.0][..], &[1.0, 2.0, 1.0]],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn biases_capture_tendencies() {
        let m = toy();
        let b = BiasModel::fit(&m, 1.0);
        assert!(b.user_bias(0) > 0.0, "generous user should have + bias");
        assert!(b.user_bias(1) < 0.0, "harsh user should have - bias");
        assert!(b.item_bias(1) > b.item_bias(2), "i1 outrates i2");
    }

    #[test]
    fn predictions_respect_scale() {
        let m = toy();
        let b = BiasModel::fit(&m, 0.1);
        for u in 0..2 {
            for i in 0..3 {
                let p = b.predict(u, i);
                assert!((1.0..=5.0).contains(&p));
            }
        }
    }

    #[test]
    fn damping_shrinks_biases() {
        let m = toy();
        let loose = BiasModel::fit(&m, 0.01);
        let tight = BiasModel::fit(&m, 100.0);
        assert!(tight.user_bias(0).abs() < loose.user_bias(0).abs());
        assert!(tight.item_bias(0).abs() <= loose.item_bias(0).abs() + 1e-12);
    }

    #[test]
    fn constant_matrix_predicts_the_constant() {
        let m =
            RatingMatrix::from_dense(&[&[3.0, 3.0][..], &[3.0, 3.0]], RatingScale::one_to_five())
                .unwrap();
        let b = BiasModel::fit(&m, 5.0);
        assert!((b.predict(0, 1) - 3.0).abs() < 1e-9);
        assert!(b.user_bias(0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_indices_fall_back_to_mean() {
        let m = toy();
        let b = BiasModel::fit(&m, 1.0);
        // Unknown user/item: bias 0 -> clamp(μ).
        let p = b.predict(99, 99);
        assert!((p - b.global_mean().clamp(1.0, 5.0)).abs() < 1e-9);
    }
}
