//! Matrix completion: the paper's "system predicted" preference matrix.
//!
//! Group formation assumes every user has a preference `sc(u, i)` for every
//! candidate item, "whether user provided or system predicted" (Section
//! 2.1). [`complete_matrix`] materializes exactly that: known ratings are
//! kept, every missing cell is filled with a predictor's estimate
//! (optionally quantized back to the rating grid).
//!
//! Completion is meant for experimental slices (e.g. 200 users × 100 items);
//! at full corpus scale the group formation algorithms operate directly on
//! the sparse matrix with a [`MissingPolicy`](gf_core::MissingPolicy)
//! instead.

use crate::predictor::RatingPredictor;
use gf_core::{resolve_threads, threads::even_ranges, MatrixBuilder, RatingMatrix, Result};

/// One completed cell: the known rating if present, otherwise the
/// prediction clamped (or quantized) into the scale. `pos` is the cursor
/// into the user's sorted rated-item list.
#[inline]
fn completed_cell(
    matrix: &RatingMatrix,
    predictor: &impl RatingPredictor,
    quantize_step: Option<f64>,
    u: u32,
    i: u32,
    pos: &mut usize,
) -> f64 {
    let items = matrix.user_items(u);
    if *pos < items.len() && items[*pos] == i {
        let s = matrix.user_scores(u)[*pos];
        *pos += 1;
        return s;
    }
    let p = predictor.predict(u, i);
    match quantize_step {
        Some(step) => matrix.scale().quantize(p, step),
        None => matrix.scale().clamp(p),
    }
}

/// Produces a dense matrix over the same shape: known ratings kept,
/// missing cells predicted. `quantize_step` optionally snaps predictions to
/// the rating grid (e.g. `Some(1.0)` for whole stars).
///
/// Single-threaded, streaming straight into the builder; see
/// [`complete_matrix_threaded`] for the parallel path (the two produce
/// bit-for-bit identical matrices).
pub fn complete_matrix(
    matrix: &RatingMatrix,
    predictor: &impl RatingPredictor,
    quantize_step: Option<f64>,
) -> Result<RatingMatrix> {
    let m = matrix.n_items();
    let mut b = MatrixBuilder::new(matrix.n_users(), m, matrix.scale());
    b.reserve(matrix.n_users() as usize * m as usize);
    for u in 0..matrix.n_users() {
        let mut pos = 0usize;
        for i in 0..m {
            b.push(
                u,
                i,
                completed_cell(matrix, predictor, quantize_step, u, i, &mut pos),
            )?;
        }
    }
    b.build()
}

/// [`complete_matrix`] with `n_threads` scoped worker threads (`0` = auto,
/// see [`gf_core::resolve_threads`]): the dense output buffer is split into
/// disjoint contiguous user-row slices and each worker fills its own rows.
/// At one resolved worker this delegates to the streaming sequential path.
///
/// Every cell is a pure function of `(u, i)` — known ratings are copied,
/// missing cells predicted and clamped/quantized independently — so the
/// result is bit-for-bit identical across all thread counts.
pub fn complete_matrix_threaded(
    matrix: &RatingMatrix,
    predictor: &(impl RatingPredictor + Sync),
    quantize_step: Option<f64>,
    n_threads: usize,
) -> Result<RatingMatrix> {
    let n = matrix.n_users() as usize;
    let m = matrix.n_items() as usize;
    let threads = resolve_threads(n_threads, n);
    if threads <= 1 {
        return complete_matrix(matrix, predictor, quantize_step);
    }

    // Disjoint contiguous user-row slices of the output buffer, same
    // scoped-thread partitioning as the Kendall-Tau distance matrix. The
    // buffer then becomes the matrix's score storage directly
    // (`from_dense_buffer`) — no second pass through a builder.
    let mut buf = vec![0.0f64; n * m];
    std::thread::scope(|scope| {
        let mut rest = buf.as_mut_slice();
        for range in even_ranges(n, threads) {
            let (chunk, tail) = rest.split_at_mut(range.len() * m);
            rest = tail;
            scope.spawn(move || {
                for (off, row) in chunk.chunks_mut(m.max(1)).enumerate() {
                    let u = (range.start + off) as u32;
                    let mut pos = 0usize;
                    for (i, cell) in row.iter_mut().enumerate() {
                        *cell =
                            completed_cell(matrix, predictor, quantize_step, u, i as u32, &mut pos);
                    }
                }
            });
        }
    });

    RatingMatrix::from_dense_buffer(matrix.n_users(), matrix.n_items(), buf, matrix.scale())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::means::BiasModel;
    use gf_core::RatingScale;
    use gf_datasets::SynthConfig;

    fn sparse() -> RatingMatrix {
        RatingMatrix::from_triples(
            3,
            4,
            vec![
                (0, 0, 5.0),
                (0, 2, 3.0),
                (1, 1, 2.0),
                (2, 0, 4.0),
                (2, 3, 1.0),
            ],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn completion_is_dense_and_preserves_known() {
        let m = sparse();
        let bias = BiasModel::fit(&m, 5.0);
        let full = complete_matrix(&m, &bias, None).unwrap();
        assert_eq!(full.density(), 1.0);
        for u in 0..m.n_users() {
            for (i, s) in m.user_ratings(u) {
                assert_eq!(full.get(u, i), Some(s), "known rating changed");
            }
        }
    }

    #[test]
    fn quantization_snaps_to_stars() {
        let m = sparse();
        let bias = BiasModel::fit(&m, 5.0);
        let full = complete_matrix(&m, &bias, Some(1.0)).unwrap();
        for u in 0..full.n_users() {
            for (_, s) in full.user_ratings(u) {
                assert_eq!(s, s.round());
            }
        }
    }

    #[test]
    fn threaded_completion_is_bit_for_bit_identical() {
        // n = 0 is unconstructible (builders reject empty matrices); cover
        // the remaining edge grid n ∈ {1, 2, 17} × threads ∈ {1, 2, 7}.
        for n in [1u32, 2, 17] {
            let m = RatingMatrix::from_triples(
                n,
                6,
                (0..n).map(|u| (u, u % 6, 1.0 + (u % 5) as f64)),
                RatingScale::one_to_five(),
            )
            .unwrap();
            let bias = BiasModel::fit(&m, 5.0);
            for step in [None, Some(1.0)] {
                let seq = complete_matrix(&m, &bias, step).unwrap();
                for threads in [1usize, 2, 7] {
                    let par = complete_matrix_threaded(&m, &bias, step, threads).unwrap();
                    // RatingMatrix equality compares every score with f64
                    // `==`, i.e. bit-for-bit on these values.
                    assert_eq!(seq, par, "n={n} step={step:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn auto_thread_mode_matches_sequential() {
        let m = sparse();
        let bias = BiasModel::fit(&m, 5.0);
        let seq = complete_matrix(&m, &bias, Some(1.0)).unwrap();
        let auto = complete_matrix_threaded(&m, &bias, Some(1.0), 0).unwrap();
        assert_eq!(seq, auto);
    }

    #[test]
    fn completed_matrix_supports_group_formation() {
        use gf_core::{
            Aggregation, FormationConfig, GreedyFormer, GroupFormer, PrefIndex, Semantics,
        };
        let d = SynthConfig::yahoo_music()
            .with_users(50)
            .with_items(30)
            .generate();
        let bias = BiasModel::fit(&d.matrix, 10.0);
        let full = complete_matrix(&d.matrix, &bias, Some(1.0)).unwrap();
        let prefs = PrefIndex::build(&full);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 5);
        let r = GreedyFormer::new().form(&full, &prefs, &cfg).unwrap();
        r.grouping.validate(50, 5).unwrap();
        assert!(r.objective > 0.0);
    }
}
