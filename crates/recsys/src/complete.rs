//! Matrix completion: the paper's "system predicted" preference matrix.
//!
//! Group formation assumes every user has a preference `sc(u, i)` for every
//! candidate item, "whether user provided or system predicted" (Section
//! 2.1). [`complete_matrix`] materializes exactly that: known ratings are
//! kept, every missing cell is filled with a predictor's estimate
//! (optionally quantized back to the rating grid).
//!
//! Completion is meant for experimental slices (e.g. 200 users × 100 items);
//! at full corpus scale the group formation algorithms operate directly on
//! the sparse matrix with a [`MissingPolicy`](gf_core::MissingPolicy)
//! instead.

use crate::predictor::RatingPredictor;
use gf_core::{MatrixBuilder, RatingMatrix, Result};

/// Produces a dense matrix over the same shape: known ratings kept,
/// missing cells predicted. `quantize_step` optionally snaps predictions to
/// the rating grid (e.g. `Some(1.0)` for whole stars).
pub fn complete_matrix(
    matrix: &RatingMatrix,
    predictor: &impl RatingPredictor,
    quantize_step: Option<f64>,
) -> Result<RatingMatrix> {
    let scale = matrix.scale();
    let m = matrix.n_items();
    let mut b = MatrixBuilder::new(matrix.n_users(), m, scale);
    b.reserve(matrix.n_users() as usize * m as usize);
    for u in 0..matrix.n_users() {
        let items = matrix.user_items(u);
        let scores = matrix.user_scores(u);
        let mut pos = 0usize;
        for i in 0..m {
            let s = if pos < items.len() && items[pos] == i {
                let s = scores[pos];
                pos += 1;
                s
            } else {
                let p = predictor.predict(u, i);
                match quantize_step {
                    Some(step) => scale.quantize(p, step),
                    None => scale.clamp(p),
                }
            };
            b.push(u, i, s)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::means::BiasModel;
    use gf_core::RatingScale;
    use gf_datasets::SynthConfig;

    fn sparse() -> RatingMatrix {
        RatingMatrix::from_triples(
            3,
            4,
            vec![
                (0, 0, 5.0),
                (0, 2, 3.0),
                (1, 1, 2.0),
                (2, 0, 4.0),
                (2, 3, 1.0),
            ],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn completion_is_dense_and_preserves_known() {
        let m = sparse();
        let bias = BiasModel::fit(&m, 5.0);
        let full = complete_matrix(&m, &bias, None).unwrap();
        assert_eq!(full.density(), 1.0);
        for u in 0..m.n_users() {
            for (i, s) in m.user_ratings(u) {
                assert_eq!(full.get(u, i), Some(s), "known rating changed");
            }
        }
    }

    #[test]
    fn quantization_snaps_to_stars() {
        let m = sparse();
        let bias = BiasModel::fit(&m, 5.0);
        let full = complete_matrix(&m, &bias, Some(1.0)).unwrap();
        for u in 0..full.n_users() {
            for (_, s) in full.user_ratings(u) {
                assert_eq!(s, s.round());
            }
        }
    }

    #[test]
    fn completed_matrix_supports_group_formation() {
        use gf_core::{
            Aggregation, FormationConfig, GreedyFormer, GroupFormer, PrefIndex, Semantics,
        };
        let d = SynthConfig::yahoo_music()
            .with_users(50)
            .with_items(30)
            .generate();
        let bias = BiasModel::fit(&d.matrix, 10.0);
        let full = complete_matrix(&d.matrix, &bias, Some(1.0)).unwrap();
        let prefs = PrefIndex::build(&full);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 5);
        let r = GreedyFormer::new().form(&full, &prefs, &cfg).unwrap();
        r.grouping.validate(50, 5).unwrap();
        assert!(r.objective > 0.0);
    }
}
