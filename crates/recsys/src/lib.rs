//! # gf-recsys — the rating prediction substrate
//!
//! The paper's data preparation applies "standard pre-processing for
//! collaborative filtering and rating prediction": user preferences
//! `sc(u, i)` may be *user provided or system predicted* (Section 2.1), and
//! the group formation algorithms then treat the predicted matrix as given.
//! This crate supplies that substrate:
//!
//! * [`BiasModel`] — global mean + regularized user/item biases;
//! * [`ItemItemKnn`] — item-item collaborative filtering with adjusted
//!   cosine similarities and top-`N` neighbor lists;
//! * [`MatrixFactorization`] — biased matrix factorization trained with
//!   SGD (Funk-SVD style), seeded and deterministic;
//! * [`SlopeOne`] — the hyper-parameter-free pairwise-deviation predictor;
//! * [`complete_matrix`] — fills every missing `(user, item)` cell with a
//!   prediction, producing the dense preference matrix the paper's quality
//!   experiments implicitly operate on;
//! * [`rmse`] / [`mae`] — holdout evaluation of any predictor.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod complete;
pub mod eval;
pub mod knn;
pub mod means;
pub mod mf;
pub mod predictor;
pub mod slopeone;

pub use complete::{complete_matrix, complete_matrix_threaded};
pub use eval::{mae, rmse};
pub use knn::ItemItemKnn;
pub use means::BiasModel;
pub use mf::{MatrixFactorization, MfConfig};
pub use predictor::RatingPredictor;
pub use slopeone::SlopeOne;
