//! Predictor evaluation on held-out ratings.

use crate::predictor::RatingPredictor;

/// Root mean squared error over `(user, item, rating)` test triples.
/// Returns 0 for an empty test set.
pub fn rmse(predictor: &impl RatingPredictor, test: &[(u32, u32, f64)]) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let se: f64 = test
        .iter()
        .map(|&(u, i, r)| {
            let e = r - predictor.predict(u, i);
            e * e
        })
        .sum();
    (se / test.len() as f64).sqrt()
}

/// Mean absolute error over test triples. Returns 0 for an empty test set.
pub fn mae(predictor: &impl RatingPredictor, test: &[(u32, u32, f64)]) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let ae: f64 = test
        .iter()
        .map(|&(u, i, r)| (r - predictor.predict(u, i)).abs())
        .sum();
    ae / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::means::BiasModel;
    use crate::mf::{MatrixFactorization, MfConfig};
    use gf_core::RatingScale;
    use gf_datasets::split::holdout_split;
    use gf_datasets::SynthConfig;

    struct Constant(f64);
    impl RatingPredictor for Constant {
        fn predict(&self, _: u32, _: u32) -> f64 {
            self.0
        }
        fn scale(&self) -> RatingScale {
            RatingScale::one_to_five()
        }
    }

    #[test]
    fn exact_errors_for_constant_predictor() {
        let test = vec![(0, 0, 3.0), (0, 1, 5.0)];
        let p = Constant(3.0);
        // errors: 0 and 2 -> RMSE = sqrt(2), MAE = 1.
        assert!((rmse(&p, &test) - 2.0f64.sqrt()).abs() < 1e-12);
        assert!((mae(&p, &test) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_test_set_scores_zero() {
        let p = Constant(3.0);
        assert_eq!(rmse(&p, &[]), 0.0);
        assert_eq!(mae(&p, &[]), 0.0);
    }

    #[test]
    fn mae_never_exceeds_rmse() {
        let test: Vec<(u32, u32, f64)> = (0..20).map(|i| (0, i, 1.0 + (i % 5) as f64)).collect();
        let p = Constant(3.0);
        assert!(mae(&p, &test) <= rmse(&p, &test) + 1e-12);
    }

    #[test]
    fn mf_beats_bias_on_holdout() {
        // The paper's preprocessing pipeline end-to-end: split, fit, eval.
        let d = SynthConfig::yahoo_music()
            .with_users(150)
            .with_items(80)
            .generate();
        let h = holdout_split(&d.matrix, 0.2, 9).unwrap();
        let bias = BiasModel::fit(&h.train, 25.0);
        let mf = MatrixFactorization::fit(
            &h.train,
            MfConfig {
                n_factors: 8,
                n_epochs: 30,
                learning_rate: 0.015,
                regularization: 0.05,
                seed: 5,
            },
        );
        let bias_rmse = rmse(&bias, &h.test);
        let mf_rmse = rmse(&mf, &h.test);
        assert!(
            mf_rmse < bias_rmse,
            "MF ({mf_rmse:.3}) should beat bias ({bias_rmse:.3}) on structured data"
        );
    }
}
