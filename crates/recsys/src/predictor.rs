//! The predictor interface.

use gf_core::RatingScale;

/// Anything that can predict user `u`'s rating of item `i`.
///
/// Predictions are always clamped into the training scale (predicted
/// ratings "may be real numbers" — paper, Section 2.1 footnote).
pub trait RatingPredictor {
    /// Predicted rating of item `i` for user `u` (dense indices).
    fn predict(&self, u: u32, i: u32) -> f64;

    /// The rating scale predictions are clamped to.
    fn scale(&self) -> RatingScale;

    /// Predicts a whole row of items for one user (override for speed).
    fn predict_many(&self, u: u32, items: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.extend(items.iter().map(|&i| self.predict(u, i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);
    impl RatingPredictor for Constant {
        fn predict(&self, _: u32, _: u32) -> f64 {
            self.0
        }
        fn scale(&self) -> RatingScale {
            RatingScale::one_to_five()
        }
    }

    #[test]
    fn predict_many_default_matches_predict() {
        let p = Constant(3.5);
        let mut out = Vec::new();
        p.predict_many(0, &[0, 1, 2], &mut out);
        assert_eq!(out, vec![3.5, 3.5, 3.5]);
    }
}
