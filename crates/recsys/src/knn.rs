//! Item-item collaborative filtering.
//!
//! Standard neighborhood CF: similarity between items is the *adjusted
//! cosine* over their co-raters (ratings centered on each user's mean,
//! shrunk toward zero for thin overlaps), and a prediction corrects the
//! bias-model baseline by the similarity-weighted residuals of the target
//! user's own ratings on the `N` most similar items.

use crate::means::BiasModel;
use crate::predictor::RatingPredictor;
use gf_core::{FxHashMap, RatingMatrix, RatingScale};

/// Item-item KNN predictor with precomputed neighbor lists.
#[derive(Debug, Clone)]
pub struct ItemItemKnn {
    scale: RatingScale,
    bias: BiasModel,
    /// For each item, its top-`N` most similar items: `(item, similarity)`,
    /// similarity descending.
    neighbors: Vec<Vec<(u32, f64)>>,
    /// The target user's ratings, re-borrowed at predict time via a row map.
    rows: Vec<FxHashMap<u32, f64>>,
}

impl ItemItemKnn {
    /// Fits the model.
    ///
    /// * `n_neighbors` — neighbor list length per item (e.g. 20);
    /// * `shrinkage` — overlap damping: `sim *= overlap / (overlap + shrinkage)`.
    ///
    /// Complexity: O(Σ_u d_u²) accumulation over co-rated pairs, which is
    /// the standard cost of item-item CF on user-major data.
    pub fn fit(matrix: &RatingMatrix, n_neighbors: usize, shrinkage: f64) -> Self {
        let m = matrix.n_items() as usize;
        let bias = BiasModel::fit(matrix, 25.0);

        // Center each rating on its user's mean.
        let user_means: Vec<f64> = (0..matrix.n_users()).map(|u| matrix.user_mean(u)).collect();

        // Accumulate pairwise dot products and norms over co-raters.
        // Sparse accumulation: map from (lo, hi) packed pair to (dot, n).
        let mut dots: FxHashMap<u64, (f64, u32)> = FxHashMap::default();
        let mut norms = vec![0.0f64; m];
        for u in 0..matrix.n_users() {
            let items = matrix.user_items(u);
            let scores = matrix.user_scores(u);
            let mean = user_means[u as usize];
            for a in 0..items.len() {
                let ca = scores[a] - mean;
                norms[items[a] as usize] += ca * ca;
                for b in (a + 1)..items.len() {
                    let cb = scores[b] - mean;
                    let key = ((items[a] as u64) << 32) | items[b] as u64;
                    let e = dots.entry(key).or_insert((0.0, 0));
                    e.0 += ca * cb;
                    e.1 += 1;
                }
            }
        }

        // Turn accumulators into shrunk cosine similarities.
        let mut sims: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        for (key, (dot, overlap)) in dots {
            let a = (key >> 32) as u32;
            let b = (key & 0xffff_ffff) as u32;
            let denom = (norms[a as usize] * norms[b as usize]).sqrt();
            if denom <= 1e-12 {
                continue;
            }
            let raw = dot / denom;
            let shrunk = raw * overlap as f64 / (overlap as f64 + shrinkage);
            if shrunk.abs() > 1e-9 {
                sims[a as usize].push((b, shrunk));
                sims[b as usize].push((a, shrunk));
            }
        }
        for list in &mut sims {
            list.sort_unstable_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            list.truncate(n_neighbors);
        }

        // Row maps for O(1) rating lookups at predict time.
        let rows: Vec<FxHashMap<u32, f64>> = (0..matrix.n_users())
            .map(|u| matrix.user_ratings(u).collect())
            .collect();

        ItemItemKnn {
            scale: matrix.scale(),
            bias,
            neighbors: sims,
            rows,
        }
    }

    /// The fitted neighbor list of an item (similarity descending).
    pub fn neighbors(&self, i: u32) -> &[(u32, f64)] {
        &self.neighbors[i as usize]
    }

    /// The underlying bias model.
    pub fn bias_model(&self) -> &BiasModel {
        &self.bias
    }
}

impl RatingPredictor for ItemItemKnn {
    fn predict(&self, u: u32, i: u32) -> f64 {
        let base = self.bias.baseline(u, i);
        let Some(row) = self.rows.get(u as usize) else {
            return self.scale.clamp(base);
        };
        let Some(neigh) = self.neighbors.get(i as usize) else {
            return self.scale.clamp(base);
        };
        let mut num = 0.0;
        let mut den = 0.0;
        for &(j, sim) in neigh {
            if let Some(&r) = row.get(&j) {
                num += sim * (r - self.bias.baseline(u, j));
                den += sim.abs();
            }
        }
        let correction = if den > 1e-12 { num / den } else { 0.0 };
        self.scale.clamp(base + correction)
    }

    fn scale(&self) -> RatingScale {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::RatingMatrix;

    /// Two blocks of items: users like one block and dislike the other.
    fn blocky() -> RatingMatrix {
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|u| {
                if u % 2 == 0 {
                    vec![5.0, 5.0, 4.0, 1.0, 2.0, 1.0]
                } else {
                    vec![1.0, 2.0, 1.0, 5.0, 5.0, 4.0]
                }
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
    }

    #[test]
    fn similar_items_are_neighbors() {
        let m = blocky();
        let knn = ItemItemKnn::fit(&m, 3, 0.0);
        // Item 0's nearest neighbors should come from its own block {1, 2}.
        let neigh = knn.neighbors(0);
        assert!(!neigh.is_empty());
        assert!(
            neigh[0].0 == 1 || neigh[0].0 == 2,
            "unexpected top neighbor: {neigh:?}"
        );
        assert!(neigh[0].1 > 0.0);
    }

    #[test]
    fn predicts_held_out_block_rating() {
        // Hide u0's rating of item 1 and predict it from the block structure.
        let full = blocky();
        let mut triples = Vec::new();
        for u in 0..full.n_users() {
            for (i, s) in full.user_ratings(u) {
                if !(u == 0 && i == 1) {
                    triples.push((u, i, s));
                }
            }
        }
        let train = RatingMatrix::from_triples(
            full.n_users(),
            full.n_items(),
            triples,
            RatingScale::one_to_five(),
        )
        .unwrap();
        let knn = ItemItemKnn::fit(&train, 4, 0.0);
        let p = knn.predict(0, 1);
        assert!(p > 3.5, "block-liking user should predict high, got {p}");
    }

    #[test]
    fn predictions_within_scale() {
        let m = blocky();
        let knn = ItemItemKnn::fit(&m, 4, 2.0);
        for u in 0..m.n_users() {
            for i in 0..m.n_items() {
                let p = knn.predict(u, i);
                assert!((1.0..=5.0).contains(&p));
            }
        }
    }

    #[test]
    fn shrinkage_dampens_similarities() {
        let m = blocky();
        let loose = ItemItemKnn::fit(&m, 5, 0.0);
        let tight = ItemItemKnn::fit(&m, 5, 100.0);
        let l = loose.neighbors(0).first().map(|&(_, s)| s).unwrap_or(0.0);
        let t = tight.neighbors(0).first().map(|&(_, s)| s).unwrap_or(0.0);
        assert!(t < l, "shrinkage should reduce similarity: {t} vs {l}");
    }

    #[test]
    fn cold_indices_fall_back_to_baseline() {
        let m = blocky();
        let knn = ItemItemKnn::fit(&m, 3, 0.0);
        let p = knn.predict(999, 0);
        assert!((1.0..=5.0).contains(&p));
    }
}
