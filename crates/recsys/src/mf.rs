//! Biased matrix factorization trained with SGD (Funk-SVD style).
//!
//! `r̂(u, i) = μ + b_u + b_i + p_u · q_i`, minimizing squared error with L2
//! regularization. Initialization and the epoch shuffle are seeded, so
//! training is fully deterministic.

use crate::predictor::RatingPredictor;
use gf_core::{RatingMatrix, RatingScale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`MatrixFactorization::fit`].
#[derive(Debug, Clone, Copy)]
pub struct MfConfig {
    /// Latent dimensionality.
    pub n_factors: usize,
    /// Number of SGD epochs.
    pub n_epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub regularization: f64,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        MfConfig {
            n_factors: 16,
            n_epochs: 30,
            learning_rate: 0.01,
            regularization: 0.05,
            seed: 0x5eed_0001,
        }
    }
}

/// A trained biased-MF model.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    scale: RatingScale,
    mu: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    /// `n_users * f` user factors, row-major.
    p: Vec<f64>,
    /// `n_items * f` item factors, row-major.
    q: Vec<f64>,
    f: usize,
}

impl MatrixFactorization {
    /// Trains the model on the ratings of `matrix`.
    pub fn fit(matrix: &RatingMatrix, cfg: MfConfig) -> Self {
        let f = cfg.n_factors.max(1);
        let n = matrix.n_users() as usize;
        let m = matrix.n_items() as usize;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mu = matrix.global_mean();

        let init = 1.0 / (f as f64).sqrt();
        let mut model = MatrixFactorization {
            scale: matrix.scale(),
            mu,
            user_bias: vec![0.0; n],
            item_bias: vec![0.0; m],
            p: (0..n * f)
                .map(|_| (rng.gen::<f64>() - 0.5) * init)
                .collect(),
            q: (0..m * f)
                .map(|_| (rng.gen::<f64>() - 0.5) * init)
                .collect(),
            f,
        };

        // Flatten the training triples once, then shuffle per epoch.
        let mut triples: Vec<(u32, u32, f64)> = Vec::with_capacity(matrix.nnz());
        for u in 0..matrix.n_users() {
            for (i, s) in matrix.user_ratings(u) {
                triples.push((u, i, s));
            }
        }

        let lr = cfg.learning_rate;
        let reg = cfg.regularization;
        for _ in 0..cfg.n_epochs {
            for idx in (1..triples.len()).rev() {
                triples.swap(idx, rng.gen_range(0..=idx));
            }
            for &(u, i, r) in &triples {
                let (u, i) = (u as usize, i as usize);
                let pu = u * f;
                let qi = i * f;
                let mut dot = 0.0;
                for s in 0..f {
                    dot += model.p[pu + s] * model.q[qi + s];
                }
                let pred = model.mu + model.user_bias[u] + model.item_bias[i] + dot;
                let err = r - pred;
                model.user_bias[u] += lr * (err - reg * model.user_bias[u]);
                model.item_bias[i] += lr * (err - reg * model.item_bias[i]);
                for s in 0..f {
                    let pv = model.p[pu + s];
                    let qv = model.q[qi + s];
                    model.p[pu + s] += lr * (err * qv - reg * pv);
                    model.q[qi + s] += lr * (err * pv - reg * qv);
                }
            }
        }
        model
    }

    /// Training-set RMSE of the current parameters (for convergence tests).
    pub fn train_rmse(&self, matrix: &RatingMatrix) -> f64 {
        let mut se = 0.0;
        let mut n = 0usize;
        for u in 0..matrix.n_users() {
            for (i, r) in matrix.user_ratings(u) {
                let e = r - self.predict(u, i);
                se += e * e;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (se / n as f64).sqrt()
        }
    }
}

impl RatingPredictor for MatrixFactorization {
    fn predict(&self, u: u32, i: u32) -> f64 {
        let (u, i) = (u as usize, i as usize);
        if u >= self.user_bias.len() || i >= self.item_bias.len() {
            return self.scale.clamp(self.mu);
        }
        let mut dot = 0.0;
        for s in 0..self.f {
            dot += self.p[u * self.f + s] * self.q[i * self.f + s];
        }
        self.scale
            .clamp(self.mu + self.user_bias[u] + self.item_bias[i] + dot)
    }

    fn scale(&self) -> RatingScale {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_datasets::SynthConfig;

    fn quick_cfg() -> MfConfig {
        MfConfig {
            n_factors: 8,
            n_epochs: 25,
            learning_rate: 0.02,
            regularization: 0.03,
            seed: 1,
        }
    }

    #[test]
    fn fits_structured_data_well() {
        let d = SynthConfig::yahoo_music()
            .with_users(80)
            .with_items(60)
            .generate();
        let mf = MatrixFactorization::fit(&d.matrix, quick_cfg());
        let rmse = mf.train_rmse(&d.matrix);
        assert!(rmse < 0.8, "train RMSE too high: {rmse}");
    }

    #[test]
    fn beats_the_mean_predictor() {
        let d = SynthConfig::yahoo_music()
            .with_users(60)
            .with_items(50)
            .generate();
        let mf = MatrixFactorization::fit(&d.matrix, quick_cfg());
        // RMSE of always predicting μ.
        let mu = d.matrix.global_mean();
        let mut se = 0.0;
        let mut n = 0;
        for u in 0..d.matrix.n_users() {
            for (_, r) in d.matrix.user_ratings(u) {
                se += (r - mu) * (r - mu);
                n += 1;
            }
        }
        let mean_rmse = (se / n as f64).sqrt();
        assert!(mf.train_rmse(&d.matrix) < mean_rmse * 0.8);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SynthConfig::tiny(20, 10).generate();
        let a = MatrixFactorization::fit(&d.matrix, quick_cfg());
        let b = MatrixFactorization::fit(&d.matrix, quick_cfg());
        assert_eq!(a.predict(3, 4), b.predict(3, 4));
        let mut other = quick_cfg();
        other.seed = 2;
        let c = MatrixFactorization::fit(&d.matrix, other);
        assert_ne!(a.predict(3, 4), c.predict(3, 4));
    }

    #[test]
    fn predictions_within_scale() {
        let d = SynthConfig::tiny(15, 8).generate();
        let mf = MatrixFactorization::fit(&d.matrix, quick_cfg());
        for u in 0..15 {
            for i in 0..8 {
                let p = mf.predict(u, i);
                assert!((1.0..=5.0).contains(&p));
            }
        }
    }

    #[test]
    fn unknown_indices_predict_global_mean() {
        let d = SynthConfig::tiny(10, 5).generate();
        let mf = MatrixFactorization::fit(&d.matrix, quick_cfg());
        let p = mf.predict(1000, 1000);
        assert!((p - d.matrix.global_mean().clamp(1.0, 5.0)).abs() < 1e-9);
    }
}
