//! Timed, repeated algorithm runs with uniform metric records.
//!
//! The paper's protocol: "All numbers are presented as the average of three
//! runs." Our algorithms are deterministic, so repetition matters only for
//! wall-clock noise — quality metrics are computed once, timings averaged.

use gf_core::{
    avg_group_satisfaction, FormationConfig, FormationResult, GroupFormer, PrefIndex, RatingMatrix,
    Result,
};
use std::time::{Duration, Instant};

/// One algorithm's result on one configuration, ready for a table row.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Algorithm display name (e.g. `GRD-LM-MIN`).
    pub algo: String,
    /// Objective value `Obj` (Section 2.4).
    pub objective: f64,
    /// Average group satisfaction over the top-`k` lists (Section 7.1.2).
    pub avg_satisfaction: f64,
    /// Number of groups actually formed.
    pub n_groups: usize,
    /// Intermediate hash-key count (GRD algorithms; 0 for exact solvers).
    pub n_buckets: usize,
    /// Group sizes, for Table-4 style summaries.
    pub group_sizes: Vec<usize>,
    /// Mean wall-clock time over the repeat runs.
    pub elapsed: Duration,
}

/// Runs `former` `repeats` times (at least once), averaging the wall clock
/// and collecting quality metrics from the last run.
pub fn run_timed(
    former: &dyn GroupFormer,
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    cfg: &FormationConfig,
    repeats: usize,
) -> Result<RunRecord> {
    let repeats = repeats.max(1);
    let mut total = Duration::ZERO;
    let mut last: Option<FormationResult> = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let result = former.form(matrix, prefs, cfg)?;
        total += start.elapsed();
        last = Some(result);
    }
    let result = last.expect("at least one run");
    let avg = avg_group_satisfaction(matrix, &result.grouping, cfg.semantics, cfg.policy, cfg.k);
    Ok(RunRecord {
        algo: former.name(cfg),
        objective: result.objective,
        avg_satisfaction: avg,
        n_groups: result.grouping.len(),
        n_buckets: result.n_buckets,
        group_sizes: result.grouping.sizes(),
        elapsed: total / repeats as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, GreedyFormer, RatingScale, Semantics};

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn record_captures_paper_numbers() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let rec = run_timed(&GreedyFormer::new(), &m, &p, &cfg, 3).unwrap();
        assert_eq!(rec.algo, "GRD-LM-MIN");
        assert_eq!(rec.objective, 11.0);
        assert_eq!(rec.n_groups, 3);
        assert_eq!(rec.group_sizes.iter().sum::<usize>(), 6);
        assert!(rec.elapsed > Duration::ZERO);
    }

    #[test]
    fn repeats_zero_still_runs_once() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 2);
        let rec = run_timed(&GreedyFormer::new(), &m, &p, &cfg, 0).unwrap();
        assert!(rec.objective > 0.0);
    }

    #[test]
    fn propagates_config_errors() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 0, 3);
        assert!(run_timed(&GreedyFormer::new(), &m, &p, &cfg, 1).is_err());
    }
}
