//! Five-number summaries (Table 4's "box-plot" representation).

use std::fmt;

/// Minimum, lower quartile, median, upper quartile, maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Smallest value.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Largest value.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the summary with linear interpolation between order
    /// statistics (the common "R-7" quantile definition).
    ///
    /// Returns `None` for an empty input.
    pub fn compute(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(FiveNumber {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Averages several summaries element-wise (the paper reports
    /// "average minimum size, average Q1, …" over repeated runs).
    pub fn average(summaries: &[FiveNumber]) -> Option<FiveNumber> {
        if summaries.is_empty() {
            return None;
        }
        let n = summaries.len() as f64;
        Some(FiveNumber {
            min: summaries.iter().map(|s| s.min).sum::<f64>() / n,
            q1: summaries.iter().map(|s| s.q1).sum::<f64>() / n,
            median: summaries.iter().map(|s| s.median).sum::<f64>() / n,
            q3: summaries.iter().map(|s| s.q3).sum::<f64>() / n,
            max: summaries.iter().map(|s| s.max).sum::<f64>() / n,
        })
    }
}

/// `q`-quantile of an ascending-sorted slice, linearly interpolated.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let h = (sorted.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

impl fmt::Display for FiveNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.2} | Q1 {:.2} | median {:.2} | Q3 {:.2} | max {:.2}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard error of the mean (0 for fewer than two values).
pub fn std_error(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n as f64 - 1.0);
    (var / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_of_known_data() {
        let s = FiveNumber::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn interpolated_quantiles() {
        let s = FiveNumber::compute(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert_eq!(s.q1, 1.75);
        assert_eq!(s.q3, 3.25);
    }

    #[test]
    fn unordered_input_is_fine() {
        let a = FiveNumber::compute(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = FiveNumber::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_is_none() {
        assert!(FiveNumber::compute(&[]).is_none());
        assert!(FiveNumber::average(&[]).is_none());
    }

    #[test]
    fn singleton_summary() {
        let s = FiveNumber::compute(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn averaging_summaries() {
        let a = FiveNumber::compute(&[1.0, 2.0, 3.0]).unwrap();
        let b = FiveNumber::compute(&[3.0, 4.0, 5.0]).unwrap();
        let avg = FiveNumber::average(&[a, b]).unwrap();
        assert_eq!(avg.median, 3.0);
        assert_eq!(avg.min, 2.0);
        assert_eq!(avg.max, 4.0);
    }

    #[test]
    fn mean_and_std_error() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_error(&[3.0]), 0.0);
        // Values 1..5: sample std = sqrt(2.5), stderr = sqrt(2.5/5).
        let se = std_error(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((se - (2.5f64 / 5.0).sqrt()).abs() < 1e-12);
    }
}
