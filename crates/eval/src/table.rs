//! Plain-text and CSV table rendering for the bench harness.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Serializes as CSV (headers first; fields quoted when they contain
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (slot, cell) in row.iter().enumerate() {
                widths[slot] = widths[slot].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (slot, cell) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", cell, width = widths[slot])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with sensible experiment precision.
pub fn fmt_f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["algo", "objective"]);
        t.push_row(vec!["GRD-LM-MIN".into(), "11".into()]);
        t.push_row(vec!["OPT".into(), "12".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("GRD-LM-MIN"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["hello, world".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.35), "42.4");
        assert_eq!(fmt_f(1.23456), "1.235");
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_secs(90)), "1.5 min");
    }
}
