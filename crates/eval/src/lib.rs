//! # gf-eval — the experiment harness
//!
//! Everything Section 7 of the paper needs that is not an algorithm:
//!
//! * [`experiment`] — timed, repeated runs of any
//!   [`GroupFormer`](gf_core::GroupFormer) with quality metrics collected
//!   into uniform records ("All numbers are presented as the average of
//!   three runs");
//! * [`holdout`] — offline precision/recall/NDCG judging of a grouping
//!   against a held-out consumption set, implemented independently of the
//!   serving-side `gf_core::OnlineEval` so the two can cross-check each
//!   other;
//! * [`quantile`] — the five-number summaries behind Table 4's group-size
//!   distribution;
//! * [`table`] — plain-text / CSV table rendering for the bench harness;
//! * [`userstudy`] — the Section 7.3 AMT study, simulated: Phase-1 worker
//!   preference collection over 10 POIs and similar/dissimilar/random
//!   sampling with the paper's `sim(u, u')`, Phase-2 satisfaction ratings
//!   and preference votes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiment;
pub mod holdout;
pub mod quantile;
pub mod table;
pub mod userstudy;

pub use experiment::{run_timed, RunRecord};
pub use holdout::{evaluate_holdout, GroupHoldout, HoldoutEvent, HoldoutReport};
pub use quantile::FiveNumber;
pub use table::Table;
pub use userstudy::{SampleKind, UserStudy, UserStudyConfig};
