//! Offline holdout judging of group recommendation lists.
//!
//! Given a grouping (a user→group assignment plus the top-`k` item list
//! each group was served) and a held-out set of consumptions ("user `u`
//! consumed item `i`"), [`evaluate_holdout`] computes per-group
//! precision@k, recall@k and binary-relevance NDCG@k, macro-averaged over
//! the groups with any evidence.
//!
//! This is deliberately an **independent implementation** of the same
//! metric definitions that `gf_core::OnlineEval` applies to its sliding
//! feedback window — different data structures, its own DCG arithmetic,
//! no code shared beyond the standard library. The serve-side quality
//! loop is cross-checked against it end to end: replaying a server's
//! journaled `/v1/feedback` events through this judge must reproduce the
//! `quality` block the server reports (`gf-serve/tests/quality.rs`). Two
//! codebases agreeing on the same numbers is the regression guard; one
//! calling the other would prove nothing.

use std::collections::HashSet;

/// One held-out consumption: `user` consumed `item`, optionally scoped to
/// a single named grouping (an unscoped event counts for every grouping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldoutEvent {
    /// The consuming user (dense index).
    pub user: u32,
    /// The consumed item (dense index).
    pub item: u32,
    /// Grouping name the event is scoped to, if any.
    pub scope: Option<String>,
}

/// Holdout quality of one group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupHoldout {
    /// Group index within the grouping's formation.
    pub group: usize,
    /// Distinct held-out items members of this group consumed.
    pub consumed: usize,
    /// Fraction of the served list (truncated to `k`) that was consumed.
    pub precision: f64,
    /// Fraction of the consumed set that the served list covered.
    pub recall: f64,
    /// Binary-relevance NDCG@k of the served list against the consumed
    /// set.
    pub ndcg: f64,
}

/// Macro-averaged holdout quality of a grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldoutReport {
    /// The `k` the lists were truncated to.
    pub k: usize,
    /// Holdout events attributed to some group of this grouping.
    pub events_attributed: usize,
    /// Groups with at least one consumed item (the macro-average base).
    pub groups_evaluated: usize,
    /// Macro-averaged precision@k (0 when no group has evidence).
    pub precision: f64,
    /// Macro-averaged recall@k.
    pub recall: f64,
    /// Macro-averaged NDCG@k.
    pub ndcg: f64,
    /// Per-group detail, ascending group index, evidence-bearing groups
    /// only.
    pub per_group: Vec<GroupHoldout>,
}

/// The position-`p` (0-based) DCG discount, `1 / log2(p + 2)`.
fn discount(position: usize) -> f64 {
    1.0 / ((position as f64) + 2.0).log2()
}

/// Judges the grouping named `scope` against a held-out event set:
/// `assignment[u]` maps each user to its group, `group_items[g]` is the
/// item list group `g` was served (best first), `k` the truncation depth.
/// Events scoped to a different grouping, from unassigned users, or from
/// users outside `assignment` are ignored, as are events pointing at
/// groups beyond `group_items`.
pub fn evaluate_holdout(
    scope: &str,
    events: &[HoldoutEvent],
    assignment: &[Option<usize>],
    group_items: &[Vec<u32>],
    k: usize,
) -> HoldoutReport {
    let mut consumed: Vec<HashSet<u32>> = vec![HashSet::new(); group_items.len()];
    let mut events_attributed = 0usize;
    for ev in events {
        if let Some(s) = &ev.scope {
            if s != scope {
                continue;
            }
        }
        let group = match assignment.get(ev.user as usize) {
            Some(&Some(g)) if g < group_items.len() => g,
            _ => continue,
        };
        events_attributed += 1;
        consumed[group].insert(ev.item);
    }
    let mut per_group = Vec::new();
    for (group, held_out) in consumed.iter().enumerate() {
        if held_out.is_empty() {
            continue;
        }
        let served = &group_items[group];
        let depth = served.len().min(k);
        let mut hits = 0usize;
        let mut dcg = 0.0;
        for (rank, item) in served.iter().take(depth).enumerate() {
            if held_out.contains(item) {
                hits += 1;
                dcg += discount(rank);
            }
        }
        let ideal_len = depth.min(held_out.len());
        let ideal_dcg: f64 = (0..ideal_len).map(discount).sum();
        let ndcg = if ideal_dcg <= 0.0 {
            1.0
        } else {
            (dcg / ideal_dcg).clamp(0.0, 1.0)
        };
        per_group.push(GroupHoldout {
            group,
            consumed: held_out.len(),
            precision: if depth == 0 {
                0.0
            } else {
                hits as f64 / depth as f64
            },
            recall: hits as f64 / held_out.len() as f64,
            ndcg,
        });
    }
    let n = per_group.len();
    let avg = |pick: fn(&GroupHoldout) -> f64| {
        if n == 0 {
            0.0
        } else {
            per_group.iter().map(pick).sum::<f64>() / n as f64
        }
    };
    HoldoutReport {
        k,
        events_attributed,
        groups_evaluated: n,
        precision: avg(|g| g.precision),
        recall: avg(|g| g.recall),
        ndcg: avg(|g| g.ndcg),
        per_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(user: u32, item: u32) -> HoldoutEvent {
        HoldoutEvent {
            user,
            item,
            scope: None,
        }
    }

    #[test]
    fn grades_hits_misses_and_rank() {
        let assignment = vec![Some(0), Some(0), Some(1)];
        let lists = vec![vec![10, 11], vec![12, 13]];
        let events = vec![ev(0, 10), ev(1, 11), ev(2, 99)];
        let r = evaluate_holdout("default", &events, &assignment, &lists, 2);
        assert_eq!(r.events_attributed, 3);
        assert_eq!(r.groups_evaluated, 2);
        assert_eq!(r.per_group[0].precision, 1.0);
        assert_eq!(r.per_group[0].ndcg, 1.0);
        assert_eq!(r.per_group[1].precision, 0.0);
        assert_eq!(r.precision, 0.5);
        // A hit at rank 1 scores below a hit at rank 0.
        let low = evaluate_holdout("default", &[ev(0, 11)], &assignment, &lists, 2);
        assert!(low.per_group[0].ndcg < 1.0 && low.per_group[0].ndcg > 0.0);
    }

    #[test]
    fn scoping_dedup_and_bad_users_match_the_online_contract() {
        let assignment = vec![Some(0), None];
        let lists = vec![vec![10, 11]];
        let events = vec![
            ev(0, 10),
            ev(0, 10), // duplicate consumption dedupes
            HoldoutEvent {
                user: 0,
                item: 11,
                scope: Some("other".into()),
            }, // scoped elsewhere: ignored
            ev(1, 10), // unassigned: ignored
            ev(9, 10), // out of range: ignored
        ];
        let r = evaluate_holdout("default", &events, &assignment, &lists, 2);
        assert_eq!(r.events_attributed, 2);
        assert_eq!(r.per_group[0].consumed, 1);
        assert_eq!(r.per_group[0].precision, 0.5);
        assert_eq!(r.per_group[0].recall, 1.0);
    }

    #[test]
    fn agrees_with_the_online_accumulator() {
        // The cross-check in miniature: identical inputs through both
        // implementations, identical numbers out.
        let assignment = vec![Some(0), Some(1), Some(0), Some(1), None];
        let lists = vec![vec![3, 1, 4], vec![1, 5, 9]];
        let pairs = [(0u32, 3u32), (1, 5), (2, 4), (2, 7), (3, 9), (3, 1), (0, 3)];
        let events: Vec<HoldoutEvent> = pairs.iter().map(|&(u, i)| ev(u, i)).collect();
        let mut online = gf_core::OnlineEval::new(64);
        for &(user, item) in &pairs {
            online = online.observe(gf_core::FeedbackEvent {
                user,
                item,
                scope: None,
            });
        }
        for k in [1, 2, 3, 5] {
            let offline = evaluate_holdout("default", &events, &assignment, &lists, k);
            let live = online.evaluate("default", &assignment, &lists, k);
            assert_eq!(offline.groups_evaluated, live.groups_evaluated);
            assert!((offline.precision - live.precision).abs() < 1e-12);
            assert!((offline.recall - live.recall).abs() < 1e-12);
            assert!((offline.ndcg - live.ndcg).abs() < 1e-12);
        }
    }
}
