//! The Section-7.3 user study, simulated.
//!
//! The paper recruits 50 AMT workers to rate the 10 most popular New York
//! POIs (Phase 1), selects three 10-user samples — *similar*, *dissimilar*
//! and *random*, via the pairwise similarity below — forms `ℓ = 3` groups
//! per sample with `GRD-LM` and `Baseline-LM` (Min and Sum aggregation),
//! and asks 10 fresh workers per HIT to rate their satisfaction with each
//! method on a 1–5 scale plus an absolute preference vote (Phase 2).
//!
//! Humans are simulated: a Phase-2 evaluator "regards herself as one of
//! the individuals in the sample" (paper wording), so evaluator `e`
//! impersonates sample user `e mod 10`. Her rating judges the *formed
//! groups* — the mean member enjoyment of each group's recommended plan,
//! averaged over groups, with a personal tilt toward her own group and
//! Gaussian response noise (see [`UserStudy::run`] internals for the
//! rationale). Votes go to the method with the higher noisy rating.
//! Everything is deterministic in the seed. The paper's `sim(u, u')` is
//! implemented verbatim:
//!
//! `sim(u, u', j) = 1 - |sc(u, i_j) - sc(u', i_j)| / 5` if both users rank
//! the same item at position `j`, else 0; averaged over the 10 positions.

use gf_baselines::BaselineFormer;
use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, Grouping, PrefIndex, RatingMatrix,
    Semantics,
};
use gf_datasets::SynthConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which worker sample a HIT evaluates (Phase 1 sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleKind {
    /// 10 workers with very similar POI rankings.
    Similar,
    /// 10 workers with the smallest aggregate pairwise similarity.
    Dissimilar,
    /// 10 workers drawn uniformly.
    Random,
}

impl SampleKind {
    /// All three sample kinds, in the paper's presentation order.
    pub fn all() -> [SampleKind; 3] {
        [
            SampleKind::Similar,
            SampleKind::Dissimilar,
            SampleKind::Random,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SampleKind::Similar => "similar",
            SampleKind::Dissimilar => "dissimilar",
            SampleKind::Random => "random",
        }
    }
}

/// Study configuration (defaults mirror the paper).
#[derive(Debug, Clone, Copy)]
pub struct UserStudyConfig {
    /// Phase-1 workers (paper: 50).
    pub n_workers: u32,
    /// POIs (paper: the 10 most popular).
    pub n_pois: u32,
    /// Users per sample (paper: 10).
    pub sample_size: usize,
    /// Groups per sample (paper: ℓ = 3).
    pub ell: usize,
    /// Length of the recommended plan per group.
    pub k: usize,
    /// Evaluators per HIT (paper: 10 unique users per HIT).
    pub evaluators_per_hit: usize,
    /// Std of the Gaussian response noise on the 1–5 rating.
    pub response_noise: f64,
    /// Heterogeneity of the worker pool: deviation of a worker from their
    /// taste archetype. Real AMT crowds are messy; the default (0.9) makes
    /// pairwise similarities weak, which is the regime the paper's study
    /// ran in (its dissimilar-sample baseline satisfaction was ≈ 2).
    pub worker_noise: f64,
    /// Number of taste archetypes in the worker pool.
    pub n_archetypes: usize,
    /// Seed for worker generation, sampling and response noise.
    pub seed: u64,
}

impl Default for UserStudyConfig {
    fn default() -> Self {
        UserStudyConfig {
            n_workers: 50,
            n_pois: 10,
            sample_size: 10,
            ell: 3,
            k: 5,
            evaluators_per_hit: 10,
            response_noise: 0.35,
            worker_noise: 0.9,
            n_archetypes: 20,
            seed: 0xa317_0001,
        }
    }
}

/// Average satisfaction ± standard error for one HIT (one sample × one
/// aggregation × two methods) — a bar pair of Figures 7(b)/7(c).
#[derive(Debug, Clone)]
pub struct HitOutcome {
    /// Which sample was evaluated.
    pub kind: SampleKind,
    /// Min or Sum aggregation.
    pub aggregation: Aggregation,
    /// Mean 1–5 rating of the GRD grouping.
    pub grd_mean: f64,
    /// Standard error of the GRD ratings.
    pub grd_stderr: f64,
    /// Mean 1–5 rating of the baseline grouping.
    pub baseline_mean: f64,
    /// Standard error of the baseline ratings.
    pub baseline_stderr: f64,
}

/// Aggregate preference votes for one aggregation — Figure 7(a).
#[derive(Debug, Clone)]
pub struct VoteShare {
    /// Min or Sum aggregation.
    pub aggregation: Aggregation,
    /// Percent of evaluators preferring GRD.
    pub grd_pct: f64,
    /// Percent preferring the baseline.
    pub baseline_pct: f64,
}

/// Full study results.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// Six HITs: 3 sample kinds × 2 aggregations.
    pub hits: Vec<HitOutcome>,
    /// Vote shares per aggregation.
    pub votes: Vec<VoteShare>,
}

/// The simulated study.
pub struct UserStudy {
    cfg: UserStudyConfig,
    matrix: RatingMatrix,
    prefs: PrefIndex,
}

impl UserStudy {
    /// Generates the Phase-1 worker population.
    pub fn new(cfg: UserStudyConfig) -> Self {
        let mut synth = SynthConfig::flickr_poi()
            .with_users(cfg.n_workers)
            .with_items(cfg.n_pois)
            .with_seed(cfg.seed)
            .with_user_noise(cfg.worker_noise);
        synth.n_clusters = cfg.n_archetypes;
        let data = synth.generate();
        let prefs = PrefIndex::build(&data.matrix);
        UserStudy {
            cfg,
            matrix: data.matrix,
            prefs,
        }
    }

    /// The worker rating matrix (for inspection/tests).
    pub fn matrix(&self) -> &RatingMatrix {
        &self.matrix
    }

    /// The paper's pairwise similarity over full ranked lists.
    pub fn similarity(&self, u: u32, v: u32) -> f64 {
        let scale = self.matrix.scale().max();
        let ranked_u = self.prefs.ranked_items(u);
        let ranked_v = self.prefs.ranked_items(v);
        let positions = ranked_u.len().min(ranked_v.len());
        if positions == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for j in 0..positions {
            if ranked_u[j] == ranked_v[j] {
                let item = ranked_u[j];
                let su = self.matrix.get(u, item).unwrap_or(0.0);
                let sv = self.matrix.get(v, item).unwrap_or(0.0);
                total += 1.0 - (su - sv).abs() / scale;
            }
        }
        total / positions as f64
    }

    /// Mean pairwise similarity within a set of workers.
    pub fn avg_pairwise_similarity(&self, users: &[u32]) -> f64 {
        let mut total = 0.0;
        let mut pairs = 0usize;
        for (a_ix, &a) in users.iter().enumerate() {
            for &b in &users[a_ix + 1..] {
                total += self.similarity(a, b);
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        }
    }

    /// Phase-1 sampling: the similar / dissimilar / random 10-user samples.
    pub fn select_sample(&self, kind: SampleKind) -> Vec<u32> {
        let n = self.matrix.n_users();
        let size = self.cfg.sample_size.min(n as usize);
        match kind {
            SampleKind::Random => {
                let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0x5a5a);
                let mut pool: Vec<u32> = (0..n).collect();
                for i in (1..pool.len()).rev() {
                    pool.swap(i, rng.gen_range(0..=i));
                }
                pool.truncate(size);
                pool.sort_unstable();
                pool
            }
            SampleKind::Similar => self.greedy_sample(size, true),
            SampleKind::Dissimilar => self.greedy_sample(size, false),
        }
    }

    /// Greedy sample construction: start from the extreme pair, then add
    /// the worker optimizing the aggregate similarity to the current set.
    fn greedy_sample(&self, size: usize, maximize: bool) -> Vec<u32> {
        let n = self.matrix.n_users();
        let better = |cand: f64, best: f64| {
            if maximize {
                cand > best
            } else {
                cand < best
            }
        };
        // Extreme pair.
        let mut best_pair = (0u32, 1u32.min(n - 1));
        let mut best_sim = if maximize {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        for a in 0..n {
            for b in (a + 1)..n {
                let s = self.similarity(a, b);
                if better(s, best_sim) {
                    best_sim = s;
                    best_pair = (a, b);
                }
            }
        }
        let mut sample = vec![best_pair.0, best_pair.1];
        while sample.len() < size {
            let mut best_user = None;
            let mut best_total = if maximize {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
            for u in 0..n {
                if sample.contains(&u) {
                    continue;
                }
                let total: f64 = sample.iter().map(|&s| self.similarity(u, s)).sum();
                if better(total, best_total) {
                    best_total = total;
                    best_user = Some(u);
                }
            }
            match best_user {
                Some(u) => sample.push(u),
                None => break,
            }
        }
        sample.sort_unstable();
        sample
    }

    /// Phase 2: runs all six HITs and tallies votes.
    pub fn run(&self) -> StudyOutcome {
        let mut hits = Vec::with_capacity(6);
        let mut vote_counts: Vec<(Aggregation, usize, usize)> =
            vec![(Aggregation::Min, 0, 0), (Aggregation::Sum, 0, 0)];
        for (agg_slot, aggregation) in [Aggregation::Min, Aggregation::Sum].into_iter().enumerate()
        {
            for kind in SampleKind::all() {
                let sample = self.select_sample(kind);
                let sub = self
                    .matrix
                    .submatrix(&sample, &(0..self.matrix.n_items()).collect::<Vec<_>>())
                    .expect("sample is a valid user subset");
                let sub_prefs = PrefIndex::build(&sub);
                let cfg = FormationConfig::new(
                    Semantics::LeastMisery,
                    aggregation,
                    self.cfg.k,
                    self.cfg.ell,
                );
                let grd = GreedyFormer::new()
                    .form(&sub, &sub_prefs, &cfg)
                    .expect("greedy formation on study sample");
                let base = BaselineFormer::new()
                    .with_seed(self.cfg.seed ^ 0xbeef)
                    .form(&sub, &sub_prefs, &cfg)
                    .expect("baseline formation on study sample");

                let mut rng = SmallRng::seed_from_u64(
                    self.cfg.seed ^ ((agg_slot as u64) << 32) ^ kind.label().len() as u64,
                );
                let mut grd_ratings = Vec::new();
                let mut base_ratings = Vec::new();
                for e in 0..self.cfg.evaluators_per_hit {
                    let persona = (e % sample.len()) as u32; // dense index in `sub`
                    let g_r = self.rate(&sub, &grd.grouping, persona, &mut rng);
                    let b_r = self.rate(&sub, &base.grouping, persona, &mut rng);
                    // Vote for the method with the higher (noisy) rating;
                    // exact ties break by the noise-free comparison.
                    if g_r > b_r || ((g_r - b_r).abs() < 1e-12 && grd.objective >= base.objective) {
                        vote_counts[agg_slot].1 += 1;
                    } else {
                        vote_counts[agg_slot].2 += 1;
                    }
                    grd_ratings.push(g_r);
                    base_ratings.push(b_r);
                }
                hits.push(HitOutcome {
                    kind,
                    aggregation,
                    grd_mean: crate::quantile::mean(&grd_ratings),
                    grd_stderr: crate::quantile::std_error(&grd_ratings),
                    baseline_mean: crate::quantile::mean(&base_ratings),
                    baseline_stderr: crate::quantile::std_error(&base_ratings),
                });
            }
        }
        let votes = vote_counts
            .into_iter()
            .map(|(aggregation, g, b)| {
                let total = (g + b).max(1) as f64;
                VoteShare {
                    aggregation,
                    grd_pct: 100.0 * g as f64 / total,
                    baseline_pct: 100.0 * b as f64 / total,
                }
            })
            .collect();
        StudyOutcome { hits, votes }
    }

    /// One evaluator's noisy 1–5 rating of one grouping, impersonating
    /// `persona` (a dense user index within the sample submatrix).
    ///
    /// Response model: the Phase-2 HIT shows the evaluator *all* sample
    /// users' preference ratings and the groups formed by both methods, and
    /// asks for her satisfaction "with the formed groups". She therefore
    /// judges the grouping per *group*: how well does each group's
    /// recommended plan serve that group's members (mean member enjoyment
    /// of the list, on the raw 1–5 scale), averaged over the groups — with
    /// a personal tilt toward the group she would belong to, plus Gaussian
    /// response noise. Judging groups as units rather than averaging over
    /// users mirrors the paper's own per-group quality metric (Section
    /// 7.1.2 divides by ℓ, not by n).
    fn rate(
        &self,
        sub: &RatingMatrix,
        grouping: &Grouping,
        persona: u32,
        rng: &mut SmallRng,
    ) -> f64 {
        let r_min = sub.scale().min();
        // Mean member enjoyment of one group's recommended list.
        let group_quality = |g: &gf_core::Group| -> f64 {
            let items: Vec<u32> = g.items().collect();
            let take = self.cfg.k.min(items.len()).max(1);
            let total: f64 = g
                .members
                .iter()
                .map(|&v| {
                    items[..take]
                        .iter()
                        .map(|&i| sub.get(v, i).unwrap_or(r_min))
                        .sum::<f64>()
                        / take as f64
                })
                .sum();
            total / g.members.len().max(1) as f64
        };
        let overall: f64 =
            grouping.groups.iter().map(group_quality).sum::<f64>() / grouping.len().max(1) as f64;
        let own = grouping
            .groups
            .iter()
            .find(|g| g.members.contains(&persona))
            .map(group_quality)
            .unwrap_or(overall);
        let rating = 0.75 * overall + 0.25 * own + self.cfg.response_noise * randn(rng);
        rating.clamp(1.0, 5.0)
    }
}

/// Box–Muller standard normal draw.
fn randn(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> UserStudy {
        UserStudy::new(UserStudyConfig::default())
    }

    #[test]
    fn phase1_population_shape() {
        let s = study();
        assert_eq!(s.matrix().n_users(), 50);
        assert_eq!(s.matrix().n_items(), 10);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let s = study();
        for a in 0..10u32 {
            for b in 0..10u32 {
                let ab = s.similarity(a, b);
                assert!((0.0..=1.0).contains(&ab), "sim({a},{b}) = {ab}");
                assert!((ab - s.similarity(b, a)).abs() < 1e-12);
            }
        }
        // Self-similarity is exactly 1.
        assert!((s.similarity(3, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similar_sample_is_tighter_than_dissimilar() {
        let s = study();
        let sim = s.select_sample(SampleKind::Similar);
        let dis = s.select_sample(SampleKind::Dissimilar);
        assert_eq!(sim.len(), 10);
        assert_eq!(dis.len(), 10);
        assert_ne!(sim, dis);
        let sim_score = s.avg_pairwise_similarity(&sim);
        let dis_score = s.avg_pairwise_similarity(&dis);
        assert!(
            sim_score > dis_score,
            "similar {sim_score} <= dissimilar {dis_score}"
        );
    }

    #[test]
    fn study_outcome_shape() {
        let out = study().run();
        assert_eq!(out.hits.len(), 6);
        assert_eq!(out.votes.len(), 2);
        for h in &out.hits {
            assert!((1.0..=5.0).contains(&h.grd_mean));
            assert!((1.0..=5.0).contains(&h.baseline_mean));
            assert!(h.grd_stderr >= 0.0 && h.baseline_stderr >= 0.0);
        }
        for v in &out.votes {
            assert!((v.grd_pct + v.baseline_pct - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn grd_wins_the_study() {
        // The paper's key Section-7.3 findings (Figure 7): (1) GRD-LM earns
        // higher satisfaction than the baseline for dissimilar and random
        // samples and is competitive on similar ones; (2) GRD collects a
        // clear majority of the preference votes (paper: 80% / 83.3%);
        // (3) the GRD-vs-baseline gap is largest for *dissimilar* samples,
        // where semantics-blind clustering is least effective.
        let out = study().run();
        let gap = |kind: SampleKind, agg: Aggregation| -> f64 {
            let h = out
                .hits
                .iter()
                .find(|h| h.kind == kind && h.aggregation == agg)
                .unwrap();
            h.grd_mean - h.baseline_mean
        };
        for agg in [Aggregation::Min, Aggregation::Sum] {
            assert!(
                gap(SampleKind::Dissimilar, agg) > 0.0,
                "{agg}: GRD should win on dissimilar users"
            );
            assert!(
                gap(SampleKind::Random, agg) > 0.0,
                "{agg}: GRD should win on random users"
            );
            assert!(
                gap(SampleKind::Dissimilar, agg) >= gap(SampleKind::Similar, agg),
                "{agg}: the dissimilar-sample gap should be the largest"
            );
        }
        for v in &out.votes {
            assert!(
                v.grd_pct >= 60.0,
                "{}: GRD only got {}% of votes",
                v.aggregation,
                v.grd_pct
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = study().run();
        let b = study().run();
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!(x.grd_mean, y.grd_mean);
            assert_eq!(x.baseline_mean, y.baseline_mean);
        }
    }

    #[test]
    fn random_sample_is_seed_stable() {
        let s = study();
        assert_eq!(
            s.select_sample(SampleKind::Random),
            s.select_sample(SampleKind::Random)
        );
    }
}
