//! Golden binary fixtures: the on-disk WAL and checkpoint encodings are a
//! compatibility contract, so byte-level changes must be *deliberate*.
//!
//! Each test encodes a fixed state and compares it byte-for-byte against a
//! checked-in fixture under `tests/golden/`. When a format change is
//! intentional, regenerate with:
//!
//! ```sh
//! GF_UPDATE_GOLDEN=1 cargo test -p gf-persist --test golden
//! ```
//!
//! and bump `CHECKPOINT_FORMAT_VERSION` / `WAL_FORMAT_VERSION` if an old
//! reader could no longer parse the new bytes.

use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, GrowthPolicy, IncrementalFormer,
    MatrixBuilder, MissingPolicy, PrefIndex, RatingScale, Semantics,
};
use gf_persist::checkpoint::{self, CheckpointGrouping, CheckpointState};
use gf_persist::wal::{SyncMode, Wal};
use std::fs;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_golden(name: &str, actual: &[u8]) {
    let path = golden_dir().join(name);
    if std::env::var_os("GF_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n  regenerate with GF_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "{name} drifted from its golden fixture ({} vs {} bytes). If the \
         format change is intentional, regenerate with GF_UPDATE_GOLDEN=1 \
         and review the version constants.",
        expected.len(),
        actual.len()
    );
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gf-golden-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fully pinned checkpoint state: every byte of its encoding is a
/// function of these literals and the (deterministic) greedy formation.
fn fixture_state() -> CheckpointState {
    let mut b = MatrixBuilder::new(5, 4, RatingScale::one_to_five());
    for (u, i, s) in [
        (0u32, 0u32, 5.0),
        (0, 1, 3.0),
        (0, 2, 1.0),
        (1, 0, 4.0),
        (1, 3, 2.0),
        (2, 1, 5.0),
        (2, 2, 4.0),
        (2, 3, 3.0),
        (3, 0, 2.0),
        (3, 1, 2.0),
        (4, 2, 5.0),
        (4, 3, 1.0),
    ] {
        b.push(u, i, s).unwrap();
    }
    let matrix = b.build().unwrap();
    let prefs = PrefIndex::build(&matrix);
    let config = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 1)
        .with_policy(MissingPolicy::Min)
        .with_threads(1)
        .with_growth(GrowthPolicy::Grow {
            max_users: 64,
            max_items: 32,
        });
    let former = IncrementalFormer::new(&matrix, &prefs, config).unwrap();
    // A second named grouping pins the v2 registry layout, including the
    // Consensus lambda field.
    let cons_config =
        FormationConfig::new(Semantics::Consensus { lambda: 0.5 }, Aggregation::Min, 2, 2)
            .with_threads(1);
    let cons_formation = GreedyFormer::new()
        .form(&matrix, &prefs, &cons_config)
        .unwrap();
    CheckpointState {
        snapshot_version: 42,
        wal_seq: 17,
        applied: 17,
        users_admitted: 3,
        items_admitted: 1,
        groupings: vec![
            CheckpointGrouping {
                name: "default".to_string(),
                version: 42,
                config,
                formation: former.result().clone(),
                former: Some(former.export_state()),
            },
            CheckpointGrouping {
                name: "cons".to_string(),
                version: 40,
                config: cons_config,
                formation: cons_formation,
                former: None,
            },
        ],
        matrix,
        prefs,
        feedback: gf_core::OnlineEval::default(),
    }
}

#[test]
fn checkpoint_encoding_matches_golden() {
    let bytes = checkpoint::encode(&fixture_state()).unwrap();
    check_golden("checkpoint-v2.bin", &bytes);
    // And the fixture must always decode back to an equivalent state.
    let back = checkpoint::decode(&bytes).unwrap();
    assert_eq!(back.snapshot_version, 42);
    assert_eq!(back.wal_seq, 17);
    assert_eq!(back.groupings.len(), 2);
    assert!(back.default_grouping().unwrap().former.is_some());
}

#[test]
fn legacy_v1_checkpoint_loads_as_the_default_grouping() {
    // `checkpoint-v1.bin` is a real format-v1 file written before the
    // named-grouping registry existed; it is never regenerated. The
    // reader must keep restoring it as the lone "default" grouping.
    let bytes = fs::read(golden_dir().join("checkpoint-v1.bin")).unwrap();
    let state = checkpoint::decode(&bytes).unwrap();
    assert_eq!(state.snapshot_version, 42);
    assert_eq!(state.groupings.len(), 1);
    let g = &state.groupings[0];
    assert_eq!(g.name, checkpoint::DEFAULT_GROUPING_NAME);
    assert_eq!(g.version, 42, "v1 groupings pin to the snapshot version");
    // And it matches the live fixture's default grouping exactly.
    let live = fixture_state();
    let live_g = live.default_grouping().unwrap();
    assert_eq!(g.config, live_g.config);
    assert_eq!(state.matrix.csr_parts(), live.matrix.csr_parts());
    assert_eq!(g.former, live_g.former);
}

#[test]
fn wal_segment_encoding_matches_golden() {
    let dir = tmpdir("wal");
    let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
    wal.append(&[(0, 1, 4.5), (2, 3, 1.0)]).unwrap();
    wal.append(&[]).unwrap();
    wal.append(&[(7, 0, 3.0)]).unwrap();
    wal.append_feedback(7, 0, None).unwrap();
    wal.append_feedback(2, 3, Some("cons")).unwrap();
    let paths = wal.segment_paths();
    assert_eq!(paths.len(), 1);
    let bytes = fs::read(&paths[0]).unwrap();
    drop(wal);
    fs::remove_dir_all(&dir).unwrap();
    check_golden("wal-segment-v2.bin", &bytes);
}

#[test]
fn legacy_v1_wal_segment_still_scans() {
    // `wal-segment-v1.bin` is a real format-1 segment written before the
    // feedback record kind existed; it is never regenerated. The reader
    // must keep decoding it as ratings-only history.
    if std::env::var_os("GF_UPDATE_GOLDEN").is_some() {
        return; // v1 fixtures are frozen, nothing to regenerate
    }
    let dir = tmpdir("wal-v1");
    fs::copy(
        golden_dir().join("wal-segment-v1.bin"),
        dir.join(format!("wal-{:020}.log", 1)),
    )
    .unwrap();
    let s = gf_persist::wal::scan(&dir).unwrap();
    assert!(s.torn.is_none());
    assert_eq!(s.last_seq, 3);
    assert_eq!(s.records[0].ratings().unwrap(), &[(0, 1, 4.5), (2, 3, 1.0)]);
    assert_eq!(s.records[1].ratings().unwrap(), &[]);
    assert_eq!(s.records[2].ratings().unwrap(), &[(7, 0, 3.0)]);
    // And the current-format writer resumes *past* it in a fresh segment
    // rather than appending v2 records under the v1 header.
    let (mut wal, scan) = Wal::open(&dir, SyncMode::Always).unwrap();
    assert_eq!(scan.last_seq, 3);
    assert_eq!(wal.segment_paths().len(), 2);
    assert_eq!(wal.append_feedback(0, 1, None).unwrap(), 4);
    drop(wal);
    let s = gf_persist::wal::scan(&dir).unwrap();
    assert_eq!(s.records.len(), 4);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_wal_v2_file_still_scans() {
    // Reader guard for the current format, mirroring the checkpoint one.
    if std::env::var_os("GF_UPDATE_GOLDEN").is_some() {
        return; // fixture may not exist yet during regeneration
    }
    let dir = tmpdir("wal-v2-read");
    fs::copy(
        golden_dir().join("wal-segment-v2.bin"),
        dir.join(format!("wal-{:020}.log", 1)),
    )
    .unwrap();
    let s = gf_persist::wal::scan(&dir).unwrap();
    assert!(s.torn.is_none());
    assert_eq!(s.last_seq, 5);
    assert_eq!(s.records[0].ratings().unwrap(), &[(0, 1, 4.5), (2, 3, 1.0)]);
    assert_eq!(
        s.records[3].payload,
        gf_persist::WalPayload::Feedback {
            user: 7,
            item: 0,
            scope: None
        }
    );
    assert_eq!(
        s.records[4].payload,
        gf_persist::WalPayload::Feedback {
            user: 2,
            item: 3,
            scope: Some("cons".to_string())
        }
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_checkpoint_file_still_loads() {
    // Guard the *reader* too: a checked-in fixture from the current format
    // version must decode on every future build of this major version.
    if std::env::var_os("GF_UPDATE_GOLDEN").is_some() {
        return; // fixtures may not exist yet during regeneration
    }
    let bytes = fs::read(golden_dir().join("checkpoint-v2.bin")).unwrap();
    let state = checkpoint::decode(&bytes).unwrap();
    let live = fixture_state();
    assert_eq!(state.groupings.len(), live.groupings.len());
    for (a, b) in state.groupings.iter().zip(&live.groupings) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.version, b.version);
        assert_eq!(a.config, b.config);
        assert_eq!(a.former, b.former);
    }
    assert_eq!(state.matrix.csr_parts(), live.matrix.csr_parts());
}
