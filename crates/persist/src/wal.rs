//! The write-ahead log: an fsync'd, CRC-guarded journal of accepted
//! `/rate` batches and `/feedback` events.
//!
//! A WAL is a directory of segment files named `wal-<first_seq>.log`.
//! Each segment starts with a 16-byte header (`GFWL` magic, format
//! version, the sequence number of its first record) followed by
//! length-prefixed records:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload (format 2) = [u64 seq][u8 kind][kind-specific body]
//!   kind 0 (ratings)  = [u32 count] count x ([u32 user][u32 item][u64 score_bits])
//!   kind 1 (feedback) = [u32 user][u32 item][u8 has_scope]([u32 len][len bytes])?
//! ```
//!
//! Format 1 segments (written before the feedback record kind existed)
//! have no kind byte — their payload is `[u64 seq][u32 count] count x
//! (...)`, always a ratings batch. The reader accepts both formats, so a
//! warm boot replays a pre-upgrade log unchanged; the writer always
//! emits format 2.
//!
//! Sequence numbers are contiguous across segments — record `seq` is the
//! global append index, starting at 1 — which is what makes checkpoint
//! truncation sound: a checkpoint that covers `wal_seq` proves every
//! record `<= wal_seq` is baked into its state, so whole segments below
//! that frontier can be deleted.
//!
//! **Torn tails.** A crash mid-append can leave a half-written record at
//! the end of the *last* segment. [`scan`] stops at the first byte that
//! fails the length/CRC/sequence checks; [`Wal::open`] then truncates
//! that tail in place (reporting how many bytes were dropped) and
//! appends after the last complete record. The same damage in a
//! *non-last* segment cannot come from a crash (rotation syncs before a
//! new segment opens) — that is real corruption, and `open` refuses to
//! proceed rather than silently drop acknowledged records that later
//! segments still hold (see `docs/OPERATIONS.md` for the recovery
//! procedure).

use crate::codec::{Reader, Writer};
use crate::crc32::crc32;
use crate::error::{PersistError, Result};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Format version written into every segment header.
pub const WAL_FORMAT_VERSION: u32 = 2;

/// Oldest segment format the reader still accepts (format 1: ratings
/// only, no record-kind byte).
pub const WAL_MIN_FORMAT_VERSION: u32 = 1;

/// Record-kind byte of a ratings batch (format 2).
const KIND_RATINGS: u8 = 0;

/// Record-kind byte of a feedback (consumption) event (format 2).
const KIND_FEEDBACK: u8 = 1;

/// Segment header magic.
pub const WAL_MAGIC: [u8; 4] = *b"GFWL";

/// Bytes of segment header before the first record.
pub const WAL_HEADER_BYTES: usize = 16;

/// Upper bound on one record's payload — far above any real batch
/// (`max_updates_per_pass` is ~1k), so an insane on-disk length is
/// recognized as corruption instead of an allocation attempt.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// When appended records are pushed to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// `fsync` after every append — an acknowledged rating survives an
    /// immediate power cut. The durable default.
    Always,
    /// `fsync` at most once per interval — group commit. A crash can lose
    /// up to one interval of *acknowledged* ratings; the trade-off table
    /// lives in `docs/OPERATIONS.md`.
    Interval(Duration),
}

/// What one WAL record carries.
#[derive(Debug, Clone, PartialEq)]
pub enum WalPayload {
    /// A batch of accepted `(user, item, score)` rating updates.
    Ratings(Vec<(u32, u32, f64)>),
    /// One observed consumption (`/feedback`): `user` consumed `item`,
    /// optionally scoped to a named grouping.
    Feedback {
        /// The consuming user (dense index).
        user: u32,
        /// The consumed item (dense index).
        item: u32,
        /// Grouping name the event is scoped to, if any.
        scope: Option<String>,
    },
}

/// One decoded WAL record under a single sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Global append index (1-based, contiguous).
    pub seq: u64,
    /// The record's payload.
    pub payload: WalPayload,
}

impl WalRecord {
    /// The rating updates, when this is a ratings record.
    pub fn ratings(&self) -> Option<&[(u32, u32, f64)]> {
        match &self.payload {
            WalPayload::Ratings(updates) => Some(updates),
            WalPayload::Feedback { .. } => None,
        }
    }
}

/// Where and why a scan stopped early.
#[derive(Debug, Clone)]
pub struct TornTail {
    /// The segment holding the first undecodable byte.
    pub segment: PathBuf,
    /// Offset of that byte within the segment.
    pub offset: u64,
    /// `true` when the damage is *not* at the log's end (a later segment
    /// holds records) — real corruption, not a crash artifact.
    pub mid_log: bool,
}

/// The result of reading a WAL directory end to end.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// Every complete record, in sequence order.
    pub records: Vec<WalRecord>,
    /// The last complete record's sequence number (0 when none).
    pub last_seq: u64,
    /// Bytes past the last complete record that could not be decoded.
    pub dropped_bytes: u64,
    /// Details of the stop point, when the log did not end cleanly.
    pub torn: Option<TornTail>,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.log"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(PersistError::io(format!("list {}", dir.display()))(e)),
    };
    for entry in entries {
        let entry = entry.map_err(PersistError::io(format!("list {}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|n| n.strip_suffix(".log"))
        {
            if let Ok(first_seq) = stem.parse::<u64>() {
                out.push((first_seq, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut record = Writer::new();
    record.u32(payload.len() as u32);
    record.u32(crc32(&payload));
    record.bytes(&payload);
    record.into_bytes()
}

fn encode_record(seq: u64, updates: &[(u32, u32, f64)]) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.u64(seq);
    payload.u8(KIND_RATINGS);
    payload.u32(updates.len() as u32);
    for &(u, i, s) in updates {
        payload.u32(u);
        payload.u32(i);
        payload.f64(s);
    }
    frame(payload.into_bytes())
}

fn encode_feedback_record(seq: u64, user: u32, item: u32, scope: Option<&str>) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.u64(seq);
    payload.u8(KIND_FEEDBACK);
    payload.u32(user);
    payload.u32(item);
    match scope {
        Some(s) => {
            payload.u8(1);
            payload.u32(s.len() as u32);
            payload.bytes(s.as_bytes());
        }
        None => payload.u8(0),
    }
    frame(payload.into_bytes())
}

/// Decodes one record payload (seq already read) under the segment's
/// format version. Returns `None` on any malformation — the caller
/// treats that exactly like a CRC failure.
fn parse_payload(version: u32, p: &mut Reader<'_>) -> Option<WalPayload> {
    let kind = if version == 1 {
        KIND_RATINGS
    } else {
        p.u8("kind").ok()?
    };
    match kind {
        KIND_RATINGS => {
            let count = p.u32("count").ok()?;
            if p.remaining() != count as usize * 16 {
                return None;
            }
            let mut updates = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let u = p.u32("user").expect("length checked");
                let i = p.u32("item").expect("length checked");
                let s = p.f64("score").expect("length checked");
                updates.push((u, i, s));
            }
            Some(WalPayload::Ratings(updates))
        }
        KIND_FEEDBACK => {
            let user = p.u32("user").ok()?;
            let item = p.u32("item").ok()?;
            let scope = match p.u8("has_scope").ok()? {
                0 => None,
                1 => {
                    let len = p.u32("scope length").ok()?;
                    let bytes = p.take(len as usize, "scope").ok()?;
                    Some(String::from_utf8(bytes.to_vec()).ok()?)
                }
                _ => return None,
            };
            if !p.is_empty() {
                return None;
            }
            Some(WalPayload::Feedback { user, item, scope })
        }
        _ => None,
    }
}

/// Parses one segment's records starting at `expect_seq`, appending to
/// `records`. Returns `Ok(bytes_consumed)` on a clean end, or
/// `Err(offset)` of the first undecodable byte.
fn parse_segment(
    bytes: &[u8],
    expect_first: Option<u64>,
    records: &mut Vec<WalRecord>,
) -> std::result::Result<(), u64> {
    let mut r = Reader::new(bytes);
    let Ok(magic) = r.take(4, "magic") else {
        return Err(0);
    };
    if magic != WAL_MAGIC {
        return Err(0);
    }
    let Ok(version) = r.u32("version") else {
        return Err(0);
    };
    if !(WAL_MIN_FORMAT_VERSION..=WAL_FORMAT_VERSION).contains(&version) {
        return Err(0);
    }
    let Ok(first_seq) = r.u64("first_seq") else {
        return Err(0);
    };
    if let Some(expect) = expect_first {
        if first_seq != expect {
            return Err(WAL_HEADER_BYTES as u64);
        }
    }
    let mut expect_seq = first_seq;
    loop {
        let at = r.position() as u64;
        if r.is_empty() {
            return Ok(());
        }
        let Ok(len) = r.u32("record length") else {
            return Err(at);
        };
        let len = len as usize;
        // The smallest valid payload: format 1 = seq + count (12 bytes),
        // format 2 = seq + kind (9 bytes, an unscoped feedback adds 9).
        let min_len = if version == 1 { 12 } else { 9 };
        if !(min_len..=MAX_RECORD_BYTES).contains(&len) {
            return Err(at);
        }
        let Ok(crc) = r.u32("record crc") else {
            return Err(at);
        };
        let Ok(payload) = r.take(len, "record payload") else {
            return Err(at);
        };
        if crc32(payload) != crc {
            return Err(at);
        }
        let mut p = Reader::new(payload);
        let Ok(seq) = p.u64("seq") else {
            return Err(at);
        };
        if seq != expect_seq {
            return Err(at);
        }
        let Some(payload) = parse_payload(version, &mut p) else {
            return Err(at);
        };
        records.push(WalRecord { seq, payload });
        expect_seq += 1;
    }
}

/// Reads every record the WAL directory holds, stopping gracefully at the
/// first undecodable byte. Read-only: nothing on disk changes (the crash
/// harness uses this to reconstruct a reference run; [`Wal::open`] uses it
/// and then repairs the tail).
pub fn scan(dir: &Path) -> Result<WalScan> {
    let segments = list_segments(dir)?;
    let mut out = WalScan::default();
    for (idx, (first_seq, path)) in segments.iter().enumerate() {
        let bytes = fs::read(path).map_err(PersistError::io(format!("read {}", path.display())))?;
        // The first segment anchors the sequence; later ones must continue
        // exactly where the previous left off.
        let expect = if out.records.is_empty() && idx == 0 {
            Some(*first_seq)
        } else {
            Some(out.last_seq + 1)
        };
        let parsed = parse_segment(&bytes, expect, &mut out.records);
        out.last_seq = out.records.last().map_or(out.last_seq, |r| r.seq);
        if let Err(offset) = parsed {
            let later_bytes: u64 = segments[idx + 1..]
                .iter()
                .map(|(_, p)| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
                .sum();
            out.dropped_bytes = bytes.len() as u64 - offset + later_bytes;
            out.torn = Some(TornTail {
                segment: path.clone(),
                offset,
                mid_log: idx + 1 < segments.len(),
            });
            return Ok(out);
        }
    }
    // A freshly rotated (header-only) tail segment promises its first
    // record's sequence even before any record lands: appends must resume
    // there, not at the last decoded record.
    if let Some((first, _)) = segments.last() {
        out.last_seq = out.last_seq.max(first.saturating_sub(1));
    }
    Ok(out)
}

fn fsync_dir(dir: &Path) -> Result<()> {
    let d = File::open(dir).map_err(PersistError::io(format!("open dir {}", dir.display())))?;
    d.sync_all()
        .map_err(PersistError::io(format!("fsync dir {}", dir.display())))
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    /// Current segment, positioned at its end.
    file: File,
    /// All live segments `(first_seq, path)`, sorted; the last is current.
    segments: Vec<(u64, PathBuf)>,
    next_seq: u64,
    sync: SyncMode,
    last_sync: Instant,
    unsynced: bool,
}

impl Wal {
    /// Opens (or creates) the WAL in `dir`: scans every segment, truncates
    /// a torn tail in place, and positions for appending after the last
    /// complete record. Returns the scan so the caller can replay.
    ///
    /// Fails with [`PersistError::Corrupt`] if undecodable bytes sit
    /// *before* intact later segments (`mid_log` damage) — truncating
    /// there would silently drop acknowledged records.
    pub fn open(dir: &Path, sync: SyncMode) -> Result<(Wal, WalScan)> {
        fs::create_dir_all(dir).map_err(PersistError::io(format!("mkdir {}", dir.display())))?;
        let scan_result = scan(dir)?;
        if let Some(torn) = &scan_result.torn {
            if torn.mid_log {
                return Err(PersistError::Corrupt(format!(
                    "segment {} is damaged at offset {} but later segments hold records; \
                     refusing to truncate acknowledged history",
                    torn.segment.display(),
                    torn.offset
                )));
            }
            // Crash artifact at the log's end: drop the torn bytes. A tail
            // torn inside the header leaves nothing worth keeping — remove
            // the file and let the append path start a fresh segment.
            if torn.offset < WAL_HEADER_BYTES as u64 {
                fs::remove_file(&torn.segment).map_err(PersistError::io(format!(
                    "remove {}",
                    torn.segment.display()
                )))?;
            } else {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&torn.segment)
                    .map_err(PersistError::io(format!("open {}", torn.segment.display())))?;
                f.set_len(torn.offset).map_err(PersistError::io(format!(
                    "truncate {}",
                    torn.segment.display()
                )))?;
                f.sync_all().map_err(PersistError::io(format!(
                    "fsync {}",
                    torn.segment.display()
                )))?;
            }
            fsync_dir(dir)?;
        }
        let next_seq = scan_result.last_seq + 1;
        let mut segments = list_segments(dir)?;
        // Records are decoded under their segment header's format version,
        // so the current-format writer must never append into a segment
        // written under an older format: roll an upgraded log over to a
        // fresh segment instead of appending in place.
        let tail = match segments.last() {
            Some((_, path)) if Self::segment_version(path)? == WAL_FORMAT_VERSION => {
                Some(path.clone())
            }
            _ => None,
        };
        let file = match tail {
            Some(path) => OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(PersistError::io(format!("open {}", path.display())))?,
            None => {
                let (first, path) = (next_seq, segment_path(dir, next_seq));
                if segments.last().is_some_and(|(_, p)| *p == path) {
                    // A header-only old-format tail occupies exactly the
                    // name the fresh segment needs (it holds no records —
                    // otherwise `next_seq` would be past its `first_seq`);
                    // replace it.
                    fs::remove_file(&path)
                        .map_err(PersistError::io(format!("remove {}", path.display())))?;
                    segments.pop();
                }
                let file = Self::create_segment(&path, first)?;
                fsync_dir(dir)?;
                segments.push((first, path));
                file
            }
        };
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                file,
                segments,
                next_seq,
                sync,
                last_sync: Instant::now(),
                unsynced: false,
            },
            scan_result,
        ))
    }

    /// Discards any existing segments and starts a brand-new log whose
    /// first record will take `first_seq`. Recovery uses this when a
    /// checkpoint's `wal_seq` is *ahead* of the log on disk (the log was
    /// lost or deleted while checkpoints survived): appending at a lower
    /// sequence would shadow records a future replay must consider baked,
    /// so the log restarts exactly past the checkpoint frontier.
    pub fn create_at(dir: &Path, sync: SyncMode, first_seq: u64) -> Result<Wal> {
        fs::create_dir_all(dir).map_err(PersistError::io(format!("mkdir {}", dir.display())))?;
        for (_, path) in list_segments(dir)? {
            fs::remove_file(&path)
                .map_err(PersistError::io(format!("remove {}", path.display())))?;
        }
        let path = segment_path(dir, first_seq);
        let file = Self::create_segment(&path, first_seq)?;
        fsync_dir(dir)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            segments: vec![(first_seq, path)],
            next_seq: first_seq,
            sync,
            last_sync: Instant::now(),
            unsynced: false,
        })
    }

    /// Reads a segment's header format version (the `u32` after the
    /// magic). Callers only probe segments [`scan`] already decoded, so
    /// the header is known-well-formed.
    fn segment_version(path: &Path) -> Result<u32> {
        let bytes = fs::read(path).map_err(PersistError::io(format!("read {}", path.display())))?;
        let mut r = Reader::new(&bytes);
        r.take(4, "magic")
            .and_then(|_| r.u32("version"))
            .map_err(|_| {
                PersistError::Corrupt(format!("segment {} header unreadable", path.display()))
            })
    }

    fn create_segment(path: &Path, first_seq: u64) -> Result<File> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(path)
            .map_err(PersistError::io(format!("create {}", path.display())))?;
        let mut header = Writer::new();
        header.bytes(&WAL_MAGIC);
        header.u32(WAL_FORMAT_VERSION);
        header.u64(first_seq);
        file.write_all(&header.into_bytes())
            .map_err(PersistError::io(format!("write header {}", path.display())))?;
        file.sync_all()
            .map_err(PersistError::io(format!("fsync {}", path.display())))?;
        Ok(file)
    }

    /// The sequence number the next append will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Paths of every live segment, oldest first.
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        self.segments.iter().map(|(_, p)| p.clone()).collect()
    }

    /// Appends one ratings batch as a record and applies the sync policy.
    /// Returns the record's sequence number — once this returns under
    /// [`SyncMode::Always`], the batch is on disk.
    pub fn append(&mut self, updates: &[(u32, u32, f64)]) -> Result<u64> {
        let record = encode_record(self.next_seq, updates);
        self.append_framed(record)
    }

    /// Appends one feedback (consumption) event as a record and applies
    /// the sync policy, like [`Wal::append`].
    pub fn append_feedback(&mut self, user: u32, item: u32, scope: Option<&str>) -> Result<u64> {
        let record = encode_feedback_record(self.next_seq, user, item, scope);
        self.append_framed(record)
    }

    fn append_framed(&mut self, record: Vec<u8>) -> Result<u64> {
        let seq = self.next_seq;
        self.file
            .write_all(&record)
            .map_err(PersistError::io("append wal record"))?;
        self.next_seq += 1;
        self.unsynced = true;
        match self.sync {
            SyncMode::Always => self.sync()?,
            SyncMode::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    self.sync()?;
                }
            }
        }
        Ok(seq)
    }

    /// Forces buffered records to disk now (a no-op when already clean).
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced {
            self.file
                .sync_data()
                .map_err(PersistError::io("fsync wal segment"))?;
            self.unsynced = false;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Closes the current segment and starts a new one at `next_seq`.
    pub fn rotate(&mut self) -> Result<()> {
        self.sync()?;
        let (first, path) = (self.next_seq, segment_path(&self.dir, self.next_seq));
        self.file = Self::create_segment(&path, first)?;
        fsync_dir(&self.dir)?;
        self.segments.push((first, path));
        Ok(())
    }

    /// Deletes every segment whose records are all `<= seq` (rotating
    /// first if the current segment qualifies), keeping the log's tail
    /// intact. Called after a checkpoint covering `seq` lands. Returns how
    /// many segment files were removed.
    pub fn prune_through(&mut self, seq: u64) -> Result<usize> {
        let current_first = self.segments.last().map_or(self.next_seq, |(f, _)| *f);
        if current_first < self.next_seq && self.next_seq - 1 <= seq {
            // The current segment holds records and they are all covered.
            self.rotate()?;
        }
        let mut removed = 0;
        // A segment's records end where the next segment begins.
        while self.segments.len() > 1 && self.segments[1].0 - 1 <= seq {
            let (_, path) = self.segments.remove(0);
            fs::remove_file(&path)
                .map_err(PersistError::io(format!("remove {}", path.display())))?;
            removed += 1;
        }
        if removed > 0 {
            fsync_dir(&self.dir)?;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gf-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmpdir("round");
        let (mut wal, scan0) = Wal::open(&dir, SyncMode::Always).unwrap();
        assert_eq!(scan0.records.len(), 0);
        assert_eq!(wal.append(&[(0, 1, 4.5)]).unwrap(), 1);
        assert_eq!(wal.append(&[(2, 3, 1.0), (4, 5, 2.5)]).unwrap(), 2);
        drop(wal);
        let s = scan(&dir).unwrap();
        assert!(s.torn.is_none());
        assert_eq!(s.last_seq, 2);
        assert_eq!(s.records[0].ratings().unwrap(), &[(0, 1, 4.5)]);
        assert_eq!(s.records[1].ratings().unwrap(), &[(2, 3, 1.0), (4, 5, 2.5)]);
        // Reopen continues the sequence.
        let (mut wal, s) = Wal::open(&dir, SyncMode::Always).unwrap();
        assert_eq!(s.last_seq, 2);
        assert_eq!(wal.append(&[]).unwrap(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
        wal.append(&[(0, 0, 3.0)]).unwrap();
        wal.append(&[(1, 1, 4.0)]).unwrap();
        let path = wal.segment_paths().pop().unwrap();
        drop(wal);
        // Chop the last record in half.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        let s = scan(&dir).unwrap();
        assert_eq!(s.last_seq, 1);
        assert_eq!(
            s.dropped_bytes,
            (full.len() - 7) as u64 - s.torn.as_ref().unwrap().offset
        );
        assert!(!s.torn.as_ref().unwrap().mid_log);
        // Open repairs and appends after record 1 with seq 2 again.
        let (mut wal, s) = Wal::open(&dir, SyncMode::Always).unwrap();
        assert_eq!(s.last_seq, 1);
        assert_eq!(wal.append(&[(9, 9, 5.0)]).unwrap(), 2);
        drop(wal);
        let s = scan(&dir).unwrap();
        assert!(s.torn.is_none());
        assert_eq!(s.records[1].ratings().unwrap(), &[(9, 9, 5.0)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn feedback_records_round_trip_interleaved() {
        let dir = tmpdir("feedback");
        let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
        assert_eq!(wal.append(&[(0, 1, 4.5)]).unwrap(), 1);
        assert_eq!(wal.append_feedback(0, 1, None).unwrap(), 2);
        assert_eq!(wal.append_feedback(3, 2, Some("cons")).unwrap(), 3);
        assert_eq!(wal.append(&[(3, 2, 2.0)]).unwrap(), 4);
        drop(wal);
        let s = scan(&dir).unwrap();
        assert!(s.torn.is_none());
        assert_eq!(s.last_seq, 4);
        assert_eq!(s.records[0].payload, WalPayload::Ratings(vec![(0, 1, 4.5)]));
        assert_eq!(
            s.records[1].payload,
            WalPayload::Feedback {
                user: 0,
                item: 1,
                scope: None
            }
        );
        assert_eq!(
            s.records[2].payload,
            WalPayload::Feedback {
                user: 3,
                item: 2,
                scope: Some("cons".to_string())
            }
        );
        assert!(s.records[2].ratings().is_none());
        // Reopen continues the sequence past both kinds.
        let (wal, s) = Wal::open(&dir, SyncMode::Always).unwrap();
        assert_eq!(s.last_seq, 4);
        assert_eq!(wal.next_seq(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_v1_segments_still_parse() {
        // A format-1 segment has no kind byte; hand-assemble one and make
        // sure the reader treats it as ratings-only history.
        let dir = tmpdir("v1");
        let mut w = Writer::new();
        w.bytes(&WAL_MAGIC);
        w.u32(1); // format version 1
        w.u64(1); // first_seq
        let mut payload = Writer::new();
        payload.u64(1);
        payload.u32(1);
        payload.u32(7);
        payload.u32(3);
        payload.f64(4.0);
        let payload = payload.into_bytes();
        w.u32(payload.len() as u32);
        w.u32(crc32(&payload));
        w.bytes(&payload);
        fs::write(segment_path(&dir, 1), w.into_bytes()).unwrap();
        let s = scan(&dir).unwrap();
        assert!(s.torn.is_none());
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].payload, WalPayload::Ratings(vec![(7, 3, 4.0)]));
        // Records decode under their segment header's version, so `open`
        // must not append current-format records into the v1 tail: it
        // rolls over to a fresh format-2 segment automatically.
        let (mut wal, s) = Wal::open(&dir, SyncMode::Always).unwrap();
        assert_eq!(s.last_seq, 1);
        assert_eq!(wal.segment_paths().len(), 2);
        assert_eq!(wal.append_feedback(7, 3, None).unwrap(), 2);
        drop(wal);
        let s = scan(&dir).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(matches!(
            s.records[1].payload,
            WalPayload::Feedback {
                user: 7,
                item: 3,
                ..
            }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_stops_the_scan() {
        let dir = tmpdir("flip");
        let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
        wal.append(&[(0, 0, 3.0)]).unwrap();
        wal.append(&[(1, 1, 4.0)]).unwrap();
        let path = wal.segment_paths().pop().unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        let mid = WAL_HEADER_BYTES + 10; // inside record 1's payload
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let s = scan(&dir).unwrap();
        assert_eq!(s.last_seq, 0); // record 1's crc fails; nothing survives
        assert!(s.torn.is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_header_torn_files_recover() {
        let dir = tmpdir("empty");
        fs::write(segment_path(&dir, 1), b"GF").unwrap(); // torn header
        let (mut wal, s) = Wal::open(&dir, SyncMode::Always).unwrap();
        assert_eq!(s.records.len(), 0);
        assert_eq!(wal.append(&[(0, 0, 1.0)]).unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_damage_refuses_open() {
        let dir = tmpdir("midlog");
        let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
        wal.append(&[(0, 0, 3.0)]).unwrap();
        wal.rotate().unwrap();
        wal.append(&[(1, 1, 4.0)]).unwrap();
        let first = wal.segment_paths().remove(0);
        drop(wal);
        let mut bytes = fs::read(&first).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&first, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&dir, SyncMode::Always),
            Err(PersistError::Corrupt(_))
        ));
        // The read-only scan still reports what it could recover.
        let s = scan(&dir).unwrap();
        assert_eq!(s.last_seq, 0);
        assert!(s.torn.as_ref().unwrap().mid_log);
        assert!(s.dropped_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_at_restarts_past_a_checkpoint_frontier() {
        let dir = tmpdir("createat");
        let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
        wal.append(&[(0, 0, 1.0)]).unwrap();
        drop(wal);
        // Checkpoint claims seq 40 is baked but the log only reaches 1:
        // restart the log at 41 rather than re-issuing covered sequences.
        let mut wal = Wal::create_at(&dir, SyncMode::Always, 41).unwrap();
        assert_eq!(wal.next_seq(), 41);
        assert_eq!(wal.append(&[(5, 5, 2.0)]).unwrap(), 41);
        drop(wal);
        let s = scan(&dir).unwrap();
        assert!(s.torn.is_none());
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].seq, 41);
        assert_eq!(s.last_seq, 41);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_pruning_keep_the_tail() {
        let dir = tmpdir("prune");
        let (mut wal, _) = Wal::open(&dir, SyncMode::Always).unwrap();
        for seq in 1..=3u64 {
            wal.append(&[(seq as u32, 0, 2.0)]).unwrap();
        }
        wal.rotate().unwrap();
        for seq in 4..=5u64 {
            wal.append(&[(seq as u32, 0, 2.0)]).unwrap();
        }
        // A checkpoint through seq 3 removes exactly the first segment.
        assert_eq!(wal.prune_through(3).unwrap(), 1);
        let s = scan(&dir).unwrap();
        assert_eq!(s.records.first().unwrap().seq, 4);
        assert_eq!(s.last_seq, 5);
        // A checkpoint through 5 rotates the live segment out and prunes it.
        assert_eq!(wal.prune_through(5).unwrap(), 1);
        let s = scan(&dir).unwrap();
        assert_eq!(s.records.len(), 0);
        // Appends still continue the global sequence.
        assert_eq!(wal.append(&[(0, 0, 1.0)]).unwrap(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }
}
