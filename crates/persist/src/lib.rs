//! Durable state for `gf-serve`: an fsync'd write-ahead log, binary
//! snapshot checkpoints, and state digests — on a zero-dependency codec.
//!
//! The serving layer journals every accepted rating batch (`POST /rate`)
//! into the [`wal`] *before* acknowledging it, and a background worker
//! periodically freezes the immutable serving snapshot into a [`checkpoint`]
//! file. A warm restart loads the newest valid checkpoint, replays the WAL
//! tail through the incremental former, and resumes exactly where the
//! crashed process stopped — verified bit-for-bit by the crash harness in
//! `gf-serve` using [`digest::StateDigest`].
//!
//! Layering, bottom up:
//!
//! * [`mod@crc32`] — IEEE CRC-32, guarding every record and payload.
//! * [`codec`] — fixed-width little-endian primitives; the [`codec::Reader`]
//!   never trusts an on-disk length.
//! * [`wal`] — segmented, CRC-framed, fsync-controlled rating journal with
//!   torn-tail recovery.
//! * [`checkpoint`] — atomic, versioned, section-tagged snapshot files.
//! * [`digest`] — FNV-1a 64 fingerprints of restored state.
//!
//! The byte-level formats are specified in the [format
//! handbook](handbook::format_spec); day-2 operations (durability modes,
//! crash windows, recovery procedure) in the [operator's
//! runbook](handbook::operations).
//!
//! Everything here is dependency-free beyond `gf-core` and the standard
//! library, and `forbid(unsafe_code)` like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod crc32;
pub mod digest;
pub mod error;
pub mod wal;

/// The operator-facing handbook, embedded from `docs/` so `cargo doc`
/// ships the same pages the repository renders on its forge.
pub mod handbook {
    #[doc = include_str!("../../../docs/PERSISTENCE.md")]
    pub mod format_spec {}

    #[doc = include_str!("../../../docs/OPERATIONS.md")]
    pub mod operations {}

    #[doc = include_str!("../../../docs/ARCHITECTURE.md")]
    pub mod architecture {}
}

pub use checkpoint::{
    CheckpointGrouping, CheckpointState, LoadOutcome, CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_MIN_FORMAT_VERSION,
};
pub use crc32::crc32;
pub use digest::StateDigest;
pub use error::{PersistError, Result};
pub use wal::{
    SyncMode, TornTail, Wal, WalPayload, WalRecord, WalScan, WAL_FORMAT_VERSION,
    WAL_MIN_FORMAT_VERSION,
};
