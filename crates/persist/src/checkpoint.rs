//! Binary snapshot checkpoints: one self-contained file holding
//! everything a warm restart needs.
//!
//! A checkpoint is a 32-byte header followed by a CRC-guarded payload of
//! tagged sections (byte-level layout in `docs/PERSISTENCE.md`):
//!
//! ```text
//! header  = [GFCK][u32 format_version][u64 payload_len][u32 payload_crc][12 reserved bytes]
//! payload = section*   section = [u32 tag][u32 0][u64 body_len][body][pad to 8]
//! ```
//!
//! Sections carry the snapshot meta/progress counters, the rating matrix
//! CSR, the preference-index CSR and — since format v2 — the **named
//! grouping registry**: one record per grouping holding its name,
//! per-grouping version, formation configuration, emitted formation and
//! (when that grouping's standing former was in lineage at checkpoint
//! time) the exported [`FormerState`]. Every array is length-prefixed
//! fixed-width little-endian and 8-byte aligned — the layout is
//! mmap-ready, though this workspace reads it through the bounds-checked
//! [`Reader`] (`forbid(unsafe_code)` rules out real `mmap`). **Unknown
//! tags are skipped**, so a future writer can add sections without
//! breaking this reader; bumping [`CHECKPOINT_FORMAT_VERSION`] is
//! reserved for layout changes an old reader must *not* attempt.
//!
//! ## Compatibility
//!
//! The reader accepts format **v1** (single formation, `CONFIG` /
//! `FORMATION` / `FORMER` sections) and **v2** (the `GROUPINGS`
//! section). A v1 checkpoint decodes as a registry with exactly the
//! `"default"` grouping at the checkpoint's snapshot version; the writer
//! always emits v2. Versions above 2 are rejected with
//! [`PersistError::UnsupportedVersion`].
//!
//! Writes are atomic: encode to `checkpoint.tmp`, `fsync`, rename into
//! `checkpoint-<version>.ckpt`, `fsync` the directory. A reader therefore
//! never sees a partial checkpoint; a crash mid-write leaves at worst a
//! stale `.tmp` that the next write overwrites.

use crate::codec::{Reader, Writer};
use crate::crc32::crc32;
use crate::error::{PersistError, Result};
use gf_core::{
    Aggregation, FeedbackEvent, FormationConfig, FormationResult, FormerBucket, FormerState,
    GfError, Group, Grouping, GrowthPolicy, MissingPolicy, OnlineEval, PrefIndex, RatingMatrix,
    RatingScale, RefreshMode, Semantics,
};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Format version written into every checkpoint header.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 2;

/// Oldest format version the reader still decodes (as a single
/// `"default"` grouping).
pub const CHECKPOINT_MIN_FORMAT_VERSION: u32 = 1;

/// Checkpoint header magic.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"GFCK";

/// Bytes of header before the payload.
pub const CHECKPOINT_HEADER_BYTES: usize = 32;

const TAG_META: u32 = 1;
const TAG_CONFIG: u32 = 2;
const TAG_MATRIX: u32 = 3;
const TAG_PREFS: u32 = 4;
const TAG_FORMATION: u32 = 5;
const TAG_FORMER: u32 = 6;
const TAG_GROUPINGS: u32 = 7;
/// The online-feedback window (`/feedback` consumptions). Additive: the
/// section is only written when the window has ever observed an event,
/// and readers that predate it skip it — no format bump needed.
const TAG_FEEDBACK: u32 = 8;

/// Name every pre-registry (format v1) checkpoint's formation restores
/// under.
pub const DEFAULT_GROUPING_NAME: &str = "default";

/// One named grouping inside a checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointGrouping {
    /// The registry name (`"default"` always exists).
    pub name: String,
    /// Global snapshot version at which this grouping's formation last
    /// changed.
    pub version: u64,
    /// The formation configuration the grouping was formed under.
    pub config: FormationConfig,
    /// The emitted formation.
    pub formation: FormationResult,
    /// The grouping's standing incremental-former state, when it was in
    /// lineage (synced to exactly this grouping version) at export time.
    pub former: Option<FormerState>,
}

/// Everything one checkpoint captures. The fields mirror the serving
/// snapshot plus its durable progress frontier.
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// The snapshot version the state was exported at.
    pub snapshot_version: u64,
    /// Highest WAL sequence number whose record is baked into this state;
    /// recovery replays strictly-greater records, truncation may drop
    /// segments at or below it.
    pub wal_seq: u64,
    /// Total rating updates applied since the process lineage began.
    pub applied: u64,
    /// Users admitted at serve time (cumulative).
    pub users_admitted: u64,
    /// Items admitted at serve time (cumulative).
    pub items_admitted: u64,
    /// The rating matrix (shared by every grouping).
    pub matrix: RatingMatrix,
    /// The preference index matching `matrix`.
    pub prefs: PrefIndex,
    /// The named grouping registry, in name order. A v1 checkpoint
    /// decodes to exactly one entry named
    /// [`DEFAULT_GROUPING_NAME`] at the snapshot version.
    pub groupings: Vec<CheckpointGrouping>,
    /// The online-feedback window at export time (consumption events and
    /// the cumulative observed counter). Empty when the checkpoint
    /// predates the feedback section or never saw an event.
    pub feedback: OnlineEval,
}

impl CheckpointState {
    /// The `"default"` grouping's record, if present (it always is for
    /// files this workspace wrote).
    pub fn default_grouping(&self) -> Option<&CheckpointGrouping> {
        self.groupings
            .iter()
            .find(|g| g.name == DEFAULT_GROUPING_NAME)
    }
}

fn semantics_code(s: Semantics) -> (u8, f64) {
    match s {
        Semantics::LeastMisery => (0, 0.0),
        Semantics::AggregateVoting => (1, 0.0),
        Semantics::Consensus { lambda } => (2, lambda),
        Semantics::LeaderWeighted => (3, 0.0),
    }
}

fn aggregation_code(a: Aggregation) -> Result<u8> {
    match a {
        Aggregation::Min => Ok(0),
        Aggregation::Max => Ok(1),
        Aggregation::Sum => Ok(2),
        Aggregation::WeightedSum(_) => Err(PersistError::Corrupt(
            "WeightedSum aggregation has no checkpoint encoding".into(),
        )),
    }
}

fn policy_code(p: MissingPolicy) -> u8 {
    match p {
        MissingPolicy::Min => 0,
        MissingPolicy::UserMean => 1,
        MissingPolicy::Skip => 2,
    }
}

fn refresh_code(r: RefreshMode) -> u8 {
    match r {
        RefreshMode::Auto => 0,
        RefreshMode::Cold => 1,
        RefreshMode::Incremental => 2,
    }
}

fn encode_config(cfg: &FormationConfig) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    let (sem, lambda) = semantics_code(cfg.semantics);
    w.u8(sem);
    w.u8(aggregation_code(cfg.aggregation)?);
    w.u8(policy_code(cfg.policy));
    w.u8(refresh_code(cfg.refresh));
    // v2: the Consensus dispersion penalty rides along (0.0 for the
    // other semantics).
    w.f64(lambda);
    w.usize(cfg.k);
    w.usize(cfg.ell);
    w.usize(cfg.n_threads);
    match cfg.growth {
        GrowthPolicy::Fixed => {
            w.u8(0);
            w.u32(0);
            w.u32(0);
        }
        GrowthPolicy::Grow {
            max_users,
            max_items,
        } => {
            w.u8(1);
            w.u32(max_users);
            w.u32(max_items);
        }
    }
    Ok(w.into_bytes())
}

fn decode_config(body: &[u8], format: u32) -> Result<FormationConfig> {
    let bad = |what: &str, v: u8| PersistError::Corrupt(format!("unknown {what} code {v}"));
    let mut r = Reader::new(body);
    let sem_code = r.u8("semantics")?;
    let agg_code = r.u8("aggregation")?;
    let policy_code = r.u8("policy")?;
    let refresh_code = r.u8("refresh")?;
    // The v1 layout has no lambda field (and no codes above 1 to need it).
    let lambda = if format >= 2 { r.f64("lambda")? } else { 0.0 };
    let semantics = match sem_code {
        0 => Semantics::LeastMisery,
        1 => Semantics::AggregateVoting,
        2 if format >= 2 => {
            if !lambda.is_finite() {
                return Err(PersistError::Corrupt(format!(
                    "non-finite consensus lambda {lambda}"
                )));
            }
            Semantics::Consensus { lambda }
        }
        3 if format >= 2 => Semantics::LeaderWeighted,
        v => return Err(bad("semantics", v)),
    };
    let aggregation = match agg_code {
        0 => Aggregation::Min,
        1 => Aggregation::Max,
        2 => Aggregation::Sum,
        v => return Err(bad("aggregation", v)),
    };
    let policy = match policy_code {
        0 => MissingPolicy::Min,
        1 => MissingPolicy::UserMean,
        2 => MissingPolicy::Skip,
        v => return Err(bad("policy", v)),
    };
    let refresh = match refresh_code {
        0 => RefreshMode::Auto,
        1 => RefreshMode::Cold,
        2 => RefreshMode::Incremental,
        v => return Err(bad("refresh", v)),
    };
    let k = r.usize("k")?;
    let ell = r.usize("ell")?;
    let n_threads = r.usize("n_threads")?;
    let growth = match r.u8("growth")? {
        0 => {
            r.u32("max_users")?;
            r.u32("max_items")?;
            GrowthPolicy::Fixed
        }
        1 => GrowthPolicy::Grow {
            max_users: r.u32("max_users")?,
            max_items: r.u32("max_items")?,
        },
        v => return Err(bad("growth", v)),
    };
    Ok(FormationConfig::new(semantics, aggregation, k, ell)
        .with_policy(policy)
        .with_threads(n_threads)
        .with_refresh(refresh)
        .with_growth(growth))
}

fn encode_matrix(m: &RatingMatrix) -> Vec<u8> {
    let (offsets, items, scores) = m.csr_parts();
    let mut w = Writer::new();
    w.u32(m.n_users());
    w.u32(m.n_items());
    w.f64(m.scale().min());
    w.f64(m.scale().max());
    w.usize_slice(offsets);
    w.u32_slice(items);
    w.f64_slice(scores);
    w.into_bytes()
}

fn decode_matrix(body: &[u8]) -> Result<RatingMatrix> {
    let mut r = Reader::new(body);
    let n_users = r.u32("n_users")?;
    let n_items = r.u32("n_items")?;
    let min = r.f64("scale min")?;
    let max = r.f64("scale max")?;
    let scale = RatingScale::new(min, max).map_err(PersistError::from)?;
    let offsets = r.usize_vec("matrix offsets")?;
    let items = r.u32_vec("matrix items")?;
    let scores = r.f64_vec("matrix scores")?;
    RatingMatrix::from_csr_parts(n_users, n_items, scale, offsets, items, scores)
        .map_err(PersistError::from)
}

fn encode_prefs(p: &PrefIndex) -> Vec<u8> {
    let (offsets, items, scores) = p.parts();
    let mut w = Writer::new();
    w.usize_slice(offsets);
    w.u32_slice(items);
    w.f64_slice(scores);
    w.into_bytes()
}

fn decode_prefs(body: &[u8]) -> Result<PrefIndex> {
    let mut r = Reader::new(body);
    let offsets = r.usize_vec("pref offsets")?;
    let items = r.u32_vec("pref items")?;
    let scores = r.f64_vec("pref scores")?;
    PrefIndex::from_parts(offsets, items, scores).map_err(PersistError::from)
}

fn encode_formation(f: &FormationResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.f64(f.objective);
    w.usize(f.n_buckets);
    w.usize(f.grouping.groups.len());
    for g in &f.grouping.groups {
        w.u32_slice(&g.members);
        w.usize(g.top_k.len());
        for &(item, score) in &g.top_k {
            w.u32(item);
            w.f64(score);
        }
        w.f64(g.satisfaction);
    }
    w.into_bytes()
}

fn decode_formation(body: &[u8]) -> Result<FormationResult> {
    let mut r = Reader::new(body);
    let objective = r.f64("objective")?;
    let n_buckets = r.usize("n_buckets")?;
    let n_groups = r.usize("n_groups")?;
    let mut groups = Vec::new();
    for _ in 0..n_groups {
        let members = r.u32_vec("group members")?;
        let top_len = r.usize("top_k length")?;
        if top_len.checked_mul(12).is_none_or(|b| b > r.remaining()) {
            return Err(PersistError::Corrupt(format!(
                "top_k of {top_len} entries exceeds remaining bytes"
            )));
        }
        let mut top_k = Vec::with_capacity(top_len);
        for _ in 0..top_len {
            let item = r.u32("top_k item")?;
            let score = r.f64("top_k score")?;
            top_k.push((item, score));
        }
        let satisfaction = r.f64("satisfaction")?;
        groups.push(Group {
            members,
            top_k,
            satisfaction,
        });
    }
    Ok(FormationResult {
        grouping: Grouping::new(groups),
        objective,
        n_buckets,
    })
}

fn encode_former(s: &FormerState) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(s.buckets.len());
    for b in &s.buckets {
        w.u32_slice(&b.items);
        w.u64_slice(&b.key_score_bits);
        w.u32_slice(&b.users);
        w.u64_slice(&b.pos_min_bits);
        w.u64_slice(&b.pos_sum_bits);
    }
    w.u32_slice(&s.selected);
    w.into_bytes()
}

fn decode_former(body: &[u8]) -> Result<FormerState> {
    let mut r = Reader::new(body);
    let n = r.usize("bucket count")?;
    let mut buckets = Vec::new();
    for _ in 0..n {
        buckets.push(FormerBucket {
            items: r.u32_vec("bucket items")?,
            key_score_bits: r.u64_vec("bucket key scores")?,
            users: r.u32_vec("bucket users")?,
            pos_min_bits: r.u64_vec("bucket pos_min")?,
            pos_sum_bits: r.u64_vec("bucket pos_sum")?,
        });
    }
    let selected = r.u32_vec("selected")?;
    Ok(FormerState { buckets, selected })
}

fn encode_groupings(groupings: &[CheckpointGrouping]) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    w.usize(groupings.len());
    for g in groupings {
        w.usize(g.name.len());
        w.bytes(g.name.as_bytes());
        w.u64(g.version);
        let cfg = encode_config(&g.config)?;
        w.usize(cfg.len());
        w.bytes(&cfg);
        let formation = encode_formation(&g.formation);
        w.usize(formation.len());
        w.bytes(&formation);
        match &g.former {
            Some(f) => {
                let body = encode_former(f);
                w.u8(1);
                w.usize(body.len());
                w.bytes(&body);
            }
            None => w.u8(0),
        }
    }
    Ok(w.into_bytes())
}

fn decode_groupings(body: &[u8], format: u32) -> Result<Vec<CheckpointGrouping>> {
    let mut r = Reader::new(body);
    let n = r.usize("grouping count")?;
    let mut out = Vec::new();
    for _ in 0..n {
        let name_len = r.usize("grouping name length")?;
        let name = std::str::from_utf8(r.take(name_len, "grouping name")?)
            .map_err(|_| PersistError::Corrupt("grouping name is not UTF-8".into()))?
            .to_string();
        let version = r.u64("grouping version")?;
        let cfg_len = r.usize("grouping config length")?;
        let config = decode_config(r.take(cfg_len, "grouping config")?, format)?;
        let form_len = r.usize("grouping formation length")?;
        let formation = decode_formation(r.take(form_len, "grouping formation")?)?;
        let former = match r.u8("grouping former flag")? {
            0 => None,
            1 => {
                let len = r.usize("grouping former length")?;
                Some(decode_former(r.take(len, "grouping former")?)?)
            }
            v => {
                return Err(PersistError::Corrupt(format!(
                    "unknown grouping former flag {v}"
                )))
            }
        };
        out.push(CheckpointGrouping {
            name,
            version,
            config,
            formation,
            former,
        });
    }
    Ok(out)
}

fn encode_feedback(w: &OnlineEval) -> Vec<u8> {
    let mut out = Writer::new();
    out.u64(w.capacity() as u64);
    out.u64(w.observed_total());
    out.u32(w.len() as u32);
    for ev in w.events() {
        out.u32(ev.user);
        out.u32(ev.item);
        match &ev.scope {
            Some(s) => {
                out.u8(1);
                out.u32(s.len() as u32);
                out.bytes(s.as_bytes());
            }
            None => out.u8(0),
        }
    }
    out.into_bytes()
}

fn decode_feedback(body: &[u8]) -> Result<OnlineEval> {
    let mut r = Reader::new(body);
    let capacity = r.u64("feedback capacity")? as usize;
    let observed_total = r.u64("feedback observed_total")?;
    let count = r.u32("feedback count")?;
    let mut events = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let user = r.u32("feedback user")?;
        let item = r.u32("feedback item")?;
        let scope = match r.u8("feedback has_scope")? {
            0 => None,
            1 => {
                let len = r.u32("feedback scope length")? as usize;
                let bytes = r.take(len, "feedback scope")?;
                Some(String::from_utf8(bytes.to_vec()).map_err(|_| {
                    PersistError::Corrupt("feedback scope is not valid UTF-8".into())
                })?)
            }
            k => {
                return Err(PersistError::Corrupt(format!(
                    "feedback scope marker {k} is neither 0 nor 1"
                )))
            }
        };
        events.push(FeedbackEvent { user, item, scope });
    }
    if !r.is_empty() {
        return Err(PersistError::Corrupt(
            "trailing bytes after feedback events".into(),
        ));
    }
    Ok(OnlineEval::from_parts(capacity, events, observed_total))
}

fn section(w: &mut Writer, tag: u32, body: &[u8]) {
    w.u32(tag);
    w.u32(0);
    w.usize(body.len());
    w.bytes(body);
    w.pad_to(8);
}

/// Serializes a checkpoint to its on-disk bytes (always format v2: the
/// named grouping registry).
pub fn encode(state: &CheckpointState) -> Result<Vec<u8>> {
    if state.groupings.is_empty() {
        return Err(PersistError::Corrupt(
            "a checkpoint must carry at least one grouping".into(),
        ));
    }
    let mut payload = Writer::new();
    let mut meta = Writer::new();
    meta.u64(state.snapshot_version);
    meta.u64(state.wal_seq);
    meta.u64(state.applied);
    meta.u64(state.users_admitted);
    meta.u64(state.items_admitted);
    section(&mut payload, TAG_META, &meta.into_bytes());
    section(&mut payload, TAG_MATRIX, &encode_matrix(&state.matrix));
    section(&mut payload, TAG_PREFS, &encode_prefs(&state.prefs));
    section(
        &mut payload,
        TAG_GROUPINGS,
        &encode_groupings(&state.groupings)?,
    );
    // Additive section: written only once feedback exists, so pre-feedback
    // states keep their exact historical bytes (the golden fixtures pin
    // this).
    if state.feedback.observed_total() > 0 || !state.feedback.is_empty() {
        section(
            &mut payload,
            TAG_FEEDBACK,
            &encode_feedback(&state.feedback),
        );
    }
    let payload = payload.into_bytes();
    let mut out = Writer::new();
    out.bytes(&CHECKPOINT_MAGIC);
    out.u32(CHECKPOINT_FORMAT_VERSION);
    out.usize(payload.len());
    out.u32(crc32(&payload));
    out.bytes(&[0u8; 12]);
    out.bytes(&payload);
    Ok(out.into_bytes())
}

/// Decodes checkpoint bytes, validating the header, the payload CRC and
/// every restored structure. Unknown section tags are skipped (forward
/// compatibility). Format v1 files (single formation) decode as a
/// registry holding only the [`DEFAULT_GROUPING_NAME`] grouping; a
/// format version above [`CHECKPOINT_FORMAT_VERSION`] is rejected with
/// [`PersistError::UnsupportedVersion`].
pub fn decode(bytes: &[u8]) -> Result<CheckpointState> {
    let mut r = Reader::new(bytes);
    if r.take(4, "magic")? != CHECKPOINT_MAGIC {
        return Err(PersistError::Corrupt("bad checkpoint magic".into()));
    }
    let version = r.u32("format version")?;
    if !(CHECKPOINT_MIN_FORMAT_VERSION..=CHECKPOINT_FORMAT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: CHECKPOINT_FORMAT_VERSION,
        });
    }
    let payload_len = r.usize("payload length")?;
    let crc = r.u32("payload crc")?;
    r.take(12, "reserved")?;
    let payload = r.take(payload_len, "payload")?;
    if crc32(payload) != crc {
        return Err(PersistError::Corrupt(
            "checkpoint payload crc mismatch".into(),
        ));
    }
    let mut meta = None;
    let mut config = None;
    let mut matrix = None;
    let mut prefs = None;
    let mut formation = None;
    let mut former = None;
    let mut groupings: Option<Vec<CheckpointGrouping>> = None;
    let mut feedback = OnlineEval::default();
    let mut s = Reader::new(payload);
    while !s.is_empty() {
        let tag = s.u32("section tag")?;
        s.u32("section pad")?;
        let len = s.usize("section length")?;
        let body = s.take(len, "section body")?;
        // Skip the alignment padding the writer added after the body.
        let pad = (8 - (s.position() % 8)) % 8;
        s.take(pad, "section padding")?;
        match tag {
            TAG_META => {
                let mut m = Reader::new(body);
                meta = Some((
                    m.u64("snapshot_version")?,
                    m.u64("wal_seq")?,
                    m.u64("applied")?,
                    m.u64("users_admitted")?,
                    m.u64("items_admitted")?,
                ));
            }
            TAG_CONFIG => config = Some(decode_config(body, version)?),
            TAG_MATRIX => matrix = Some(decode_matrix(body)?),
            TAG_PREFS => prefs = Some(decode_prefs(body)?),
            TAG_FORMATION => formation = Some(decode_formation(body)?),
            TAG_FORMER => former = Some(decode_former(body)?),
            TAG_GROUPINGS => groupings = Some(decode_groupings(body, version)?),
            TAG_FEEDBACK => feedback = decode_feedback(body)?,
            _ => {} // future section: skip
        }
    }
    let missing = |what: &str| PersistError::Corrupt(format!("checkpoint lacks a {what} section"));
    let (snapshot_version, wal_seq, applied, users_admitted, items_admitted) =
        meta.ok_or_else(|| missing("meta"))?;
    let matrix = matrix.ok_or_else(|| missing("matrix"))?;
    let prefs = prefs.ok_or_else(|| missing("prefs"))?;
    // v2 carries the registry section; a v1 file's flat CONFIG /
    // FORMATION / FORMER triple restores as the lone "default" grouping
    // at the snapshot version (the only version single-formation
    // checkpoints knew).
    let groupings = match groupings {
        Some(gs) => {
            if gs.is_empty() {
                return Err(PersistError::Corrupt("empty groupings section".into()));
            }
            gs
        }
        None => vec![CheckpointGrouping {
            name: DEFAULT_GROUPING_NAME.to_string(),
            version: snapshot_version,
            config: config.ok_or_else(|| missing("config"))?,
            formation: formation.ok_or_else(|| missing("formation"))?,
            former,
        }],
    };
    // Cross-validate the independent sections against each other.
    if prefs.n_users() != matrix.n_users() {
        return Err(PersistError::Corrupt(format!(
            "prefs cover {} users but the matrix holds {}",
            prefs.n_users(),
            matrix.n_users()
        )));
    }
    for u in 0..matrix.n_users() {
        if prefs.degree(u) != matrix.degree(u) {
            return Err(PersistError::Corrupt(format!(
                "user {u}: pref degree {} != matrix degree {}",
                prefs.degree(u),
                matrix.degree(u)
            )));
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for g in &groupings {
        if !seen.insert(g.name.as_str()) {
            return Err(PersistError::Corrupt(format!(
                "duplicate grouping {:?} in checkpoint",
                g.name
            )));
        }
        if g.version > snapshot_version {
            return Err(PersistError::Corrupt(format!(
                "grouping {:?} version {} is ahead of snapshot version {snapshot_version}",
                g.name, g.version
            )));
        }
        g.formation
            .grouping
            .validate(matrix.n_users(), g.config.ell)
            .map_err(|e: GfError| PersistError::from(e))?;
    }
    Ok(CheckpointState {
        snapshot_version,
        wal_seq,
        applied,
        users_admitted,
        items_admitted,
        matrix,
        prefs,
        groupings,
        feedback,
    })
}

fn checkpoint_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("checkpoint-{version:020}.ckpt"))
}

fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(PersistError::io(format!("list {}", dir.display()))(e)),
    };
    for entry in entries {
        let entry = entry.map_err(PersistError::io(format!("list {}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name
            .strip_prefix("checkpoint-")
            .and_then(|n| n.strip_suffix(".ckpt"))
        {
            if let Ok(version) = stem.parse::<u64>() {
                out.push((version, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Atomically writes `state` as `checkpoint-<version>.ckpt` in `dir`
/// (temp file + `fsync` + rename + directory `fsync`), then prunes older
/// checkpoints down to the two most recent — the newest plus one
/// fall-back should the newest turn out unreadable. Returns the final
/// path.
pub fn write(dir: &Path, state: &CheckpointState) -> Result<PathBuf> {
    fs::create_dir_all(dir).map_err(PersistError::io(format!("mkdir {}", dir.display())))?;
    let bytes = encode(state)?;
    let tmp = dir.join("checkpoint.tmp");
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(PersistError::io(format!("create {}", tmp.display())))?;
    f.write_all(&bytes)
        .map_err(PersistError::io(format!("write {}", tmp.display())))?;
    f.sync_all()
        .map_err(PersistError::io(format!("fsync {}", tmp.display())))?;
    drop(f);
    let path = checkpoint_path(dir, state.snapshot_version);
    fs::rename(&tmp, &path).map_err(PersistError::io(format!("rename into {}", path.display())))?;
    let d = File::open(dir).map_err(PersistError::io(format!("open dir {}", dir.display())))?;
    d.sync_all()
        .map_err(PersistError::io(format!("fsync dir {}", dir.display())))?;
    let mut all = list_checkpoints(dir)?;
    while all.len() > 2 {
        let (_, old) = all.remove(0);
        fs::remove_file(&old).map_err(PersistError::io(format!("remove {}", old.display())))?;
    }
    Ok(path)
}

/// What [`load_latest`] recovered.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The newest checkpoint that decoded cleanly, with its path.
    pub loaded: Option<(CheckpointState, PathBuf)>,
    /// Checkpoints that were present but skipped as unreadable, newest
    /// first, with the reason.
    pub skipped: Vec<(PathBuf, String)>,
}

/// Loads the newest valid checkpoint in `dir`, falling back to older ones
/// when the newest is corrupt (each skip is reported). A checkpoint with
/// a *newer format version* is a hard error, not a skip — see
/// [`PersistError::UnsupportedVersion`].
pub fn load_latest(dir: &Path) -> Result<LoadOutcome> {
    let mut outcome = LoadOutcome {
        loaded: None,
        skipped: Vec::new(),
    };
    for (_, path) in list_checkpoints(dir)?.into_iter().rev() {
        let bytes =
            fs::read(&path).map_err(PersistError::io(format!("read {}", path.display())))?;
        match decode(&bytes) {
            Ok(state) => {
                outcome.loaded = Some((state, path));
                return Ok(outcome);
            }
            Err(e @ PersistError::UnsupportedVersion { .. }) => return Err(e),
            Err(e) => outcome.skipped.push((path, e.to_string())),
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{GreedyFormer, GroupFormer, IncrementalFormer, MatrixBuilder, PrefIndex};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gf-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_matrix() -> RatingMatrix {
        let mut b = MatrixBuilder::new(6, 4, RatingScale::one_to_five());
        for u in 0..6u32 {
            for i in 0..4u32 {
                if (u + i) % 3 != 0 {
                    b.push(u, i, f64::from((u * 7 + i * 3) % 5 + 1)).unwrap();
                }
            }
        }
        b.push(0, 0, 3.0).unwrap();
        b.push(3, 0, 2.0).unwrap();
        b.build().unwrap()
    }

    fn sample_state(version: u64) -> CheckpointState {
        let matrix = sample_matrix();
        let prefs = PrefIndex::build(&matrix);
        let config = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 1)
            .with_growth(GrowthPolicy::Grow {
                max_users: 100,
                max_items: 50,
            });
        let former = IncrementalFormer::new(&matrix, &prefs, config).unwrap();
        CheckpointState {
            snapshot_version: version,
            wal_seq: version * 3,
            applied: version * 3,
            users_admitted: 2,
            items_admitted: 1,
            groupings: vec![CheckpointGrouping {
                name: DEFAULT_GROUPING_NAME.to_string(),
                version,
                config,
                formation: former.result().clone(),
                former: Some(former.export_state()),
            }],
            matrix,
            prefs,
            feedback: OnlineEval::default(),
        }
    }

    fn assert_formations_equal(a: &FormationResult, b: &FormationResult) {
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.n_buckets, b.n_buckets);
        let (ga, gb) = (&a.grouping.groups, &b.grouping.groups);
        assert_eq!(ga.len(), gb.len());
        for (x, y) in ga.iter().zip(gb) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.top_k, y.top_k);
            assert_eq!(x.satisfaction.to_bits(), y.satisfaction.to_bits());
        }
    }

    fn assert_states_equal(a: &CheckpointState, b: &CheckpointState) {
        assert_eq!(a.snapshot_version, b.snapshot_version);
        assert_eq!(a.wal_seq, b.wal_seq);
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.users_admitted, b.users_admitted);
        assert_eq!(a.items_admitted, b.items_admitted);
        assert_eq!(a.matrix.csr_parts(), b.matrix.csr_parts());
        assert_eq!(a.matrix.scale(), b.matrix.scale());
        assert_eq!(a.prefs.parts(), b.prefs.parts());
        assert_eq!(a.groupings.len(), b.groupings.len());
        for (x, y) in a.groupings.iter().zip(&b.groupings) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.version, y.version);
            assert_eq!(x.config, y.config);
            assert_formations_equal(&x.formation, &y.formation);
            assert_eq!(x.former, y.former);
        }
        assert_eq!(a.feedback, b.feedback);
    }

    #[test]
    fn feedback_window_round_trips() {
        let mut state = sample_state(3);
        state.feedback = OnlineEval::from_parts(
            128,
            vec![
                FeedbackEvent {
                    user: 0,
                    item: 1,
                    scope: None,
                },
                FeedbackEvent {
                    user: 4,
                    item: 2,
                    scope: Some("cons".to_string()),
                },
            ],
            17,
        );
        let bytes = encode(&state).unwrap();
        let back = decode(&bytes).unwrap();
        assert_states_equal(&state, &back);
        assert_eq!(back.feedback.observed_total(), 17);
        assert_eq!(back.feedback.capacity(), 128);
        assert_eq!(back.feedback.events()[1].scope.as_deref(), Some("cons"));
    }

    #[test]
    fn empty_feedback_emits_no_section() {
        // Pre-feedback byte layouts must stay stable: a state that never
        // observed feedback encodes exactly as it did before TAG_FEEDBACK
        // existed (and decodes with an empty window).
        let state = sample_state(3);
        let bytes = encode(&state).unwrap();
        let mut r = Reader::new(&bytes[CHECKPOINT_HEADER_BYTES..]);
        let mut tags = Vec::new();
        while !r.is_empty() {
            let tag = r.u32("tag").unwrap();
            r.u32("pad").unwrap();
            let len = r.usize("len").unwrap();
            r.take(len, "body").unwrap();
            let pad = (8 - (r.position() % 8)) % 8;
            r.take(pad, "padding").unwrap();
            tags.push(tag);
        }
        assert!(!tags.contains(&TAG_FEEDBACK));
        let back = decode(&bytes).unwrap();
        assert!(back.feedback.is_empty());
        assert_eq!(back.feedback.observed_total(), 0);
    }

    #[test]
    fn encode_decode_round_trip_is_lossless() {
        let state = sample_state(7);
        let bytes = encode(&state).unwrap();
        let back = decode(&bytes).unwrap();
        assert_states_equal(&state, &back);
        // The restored former state imports into a working former.
        let g = back.default_grouping().unwrap();
        let restored =
            IncrementalFormer::import_state(&back.matrix, g.config, g.former.as_ref().unwrap())
                .unwrap();
        assert_eq!(
            restored.result().objective,
            state.groupings[0].formation.objective
        );
        // Encoding is deterministic: same state, same bytes.
        assert_eq!(bytes, encode(&state).unwrap());
    }

    #[test]
    fn multi_grouping_round_trip_keeps_every_semantics() {
        let mut state = sample_state(9);
        let matrix = state.matrix.clone();
        let prefs = PrefIndex::build(&matrix);
        for (name, sem) in [
            ("cons", Semantics::Consensus { lambda: 0.7 }),
            ("ldr", Semantics::LeaderWeighted),
            ("av", Semantics::AggregateVoting),
        ] {
            let config = FormationConfig::new(sem, Aggregation::Min, 2, 2);
            let formation = GreedyFormer::new().form(&matrix, &prefs, &config).unwrap();
            state.groupings.push(CheckpointGrouping {
                name: name.to_string(),
                version: 5,
                config,
                formation,
                former: None,
            });
        }
        let back = decode(&encode(&state).unwrap()).unwrap();
        assert_states_equal(&state, &back);
        // Lambda survives bit-for-bit.
        let cons = back.groupings.iter().find(|g| g.name == "cons").unwrap();
        assert_eq!(cons.config.semantics, Semantics::Consensus { lambda: 0.7 });
    }

    #[test]
    fn former_section_is_optional() {
        let mut state = sample_state(1);
        state.groupings[0].former = None;
        let back = decode(&encode(&state).unwrap()).unwrap();
        assert!(back.groupings[0].former.is_none());
    }

    #[test]
    fn duplicate_grouping_names_are_corrupt() {
        let mut state = sample_state(1);
        let dup = state.groupings[0].clone();
        state.groupings.push(dup);
        let bytes = encode(&state).unwrap();
        assert!(matches!(decode(&bytes), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn grouping_version_ahead_of_snapshot_is_corrupt() {
        let mut state = sample_state(3);
        state.groupings[0].version = 99;
        let bytes = encode(&state).unwrap();
        assert!(matches!(decode(&bytes), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn weighted_sum_is_rejected_at_encode_time() {
        let mut state = sample_state(1);
        state.groupings[0].config = FormationConfig::new(
            Semantics::AggregateVoting,
            Aggregation::WeightedSum(gf_core::WeightScheme::Uniform),
            2,
            1,
        );
        assert!(matches!(encode(&state), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn newer_format_version_is_unsupported_not_corrupt() {
        let state = sample_state(1);
        let mut bytes = encode(&state).unwrap();
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(PersistError::UnsupportedVersion {
                found: 3,
                supported: 2
            })
        ));
    }

    /// Re-encodes `state` as a format-v1 file: flat CONFIG / FORMATION /
    /// FORMER sections and the v1 config layout (no lambda field).
    fn encode_v1(state: &CheckpointState) -> Vec<u8> {
        let g = &state.groupings[0];
        let mut payload = Writer::new();
        let mut meta = Writer::new();
        meta.u64(state.snapshot_version);
        meta.u64(state.wal_seq);
        meta.u64(state.applied);
        meta.u64(state.users_admitted);
        meta.u64(state.items_admitted);
        section(&mut payload, TAG_META, &meta.into_bytes());
        let mut cfg = Writer::new();
        cfg.u8(semantics_code(g.config.semantics).0);
        cfg.u8(aggregation_code(g.config.aggregation).unwrap());
        cfg.u8(policy_code(g.config.policy));
        cfg.u8(refresh_code(g.config.refresh));
        cfg.usize(g.config.k);
        cfg.usize(g.config.ell);
        cfg.usize(g.config.n_threads);
        match g.config.growth {
            GrowthPolicy::Fixed => {
                cfg.u8(0);
                cfg.u32(0);
                cfg.u32(0);
            }
            GrowthPolicy::Grow {
                max_users,
                max_items,
            } => {
                cfg.u8(1);
                cfg.u32(max_users);
                cfg.u32(max_items);
            }
        }
        section(&mut payload, TAG_CONFIG, &cfg.into_bytes());
        section(&mut payload, TAG_MATRIX, &encode_matrix(&state.matrix));
        section(&mut payload, TAG_PREFS, &encode_prefs(&state.prefs));
        section(&mut payload, TAG_FORMATION, &encode_formation(&g.formation));
        if let Some(former) = &g.former {
            section(&mut payload, TAG_FORMER, &encode_former(former));
        }
        let payload = payload.into_bytes();
        let mut out = Writer::new();
        out.bytes(&CHECKPOINT_MAGIC);
        out.u32(1);
        out.usize(payload.len());
        out.u32(crc32(&payload));
        out.bytes(&[0u8; 12]);
        out.bytes(&payload);
        out.into_bytes()
    }

    #[test]
    fn v1_checkpoint_decodes_as_the_default_grouping() {
        let state = sample_state(7);
        let bytes = encode_v1(&state);
        let back = decode(&bytes).unwrap();
        // The v1 flat formation restores as the lone "default" grouping
        // pinned at the snapshot version.
        assert_eq!(back.groupings.len(), 1);
        assert_eq!(back.groupings[0].name, DEFAULT_GROUPING_NAME);
        assert_eq!(back.groupings[0].version, back.snapshot_version);
        assert_states_equal(&state, &back);
    }

    #[test]
    fn payload_bit_flip_is_corrupt() {
        let state = sample_state(1);
        let mut bytes = encode(&state).unwrap();
        let mid = CHECKPOINT_HEADER_BYTES + (bytes.len() - CHECKPOINT_HEADER_BYTES) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(decode(&bytes), Err(PersistError::Corrupt(_))));
        // Truncation too.
        let cut = &bytes[..bytes.len() - 9];
        assert!(matches!(decode(cut), Err(PersistError::Corrupt(_))));
        assert!(matches!(decode(&[]), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let state = sample_state(1);
        let bytes = encode(&state).unwrap();
        let payload = &bytes[CHECKPOINT_HEADER_BYTES..];
        // Prepend a section with an unknown tag, then rebuild the header.
        let mut injected = Writer::new();
        injected.u32(0xBEEF);
        injected.u32(0);
        injected.usize(8);
        injected.u64(0xDEAD_DEAD_DEAD_DEAD);
        injected.bytes(payload);
        let payload = injected.into_bytes();
        let mut out = Writer::new();
        out.bytes(&CHECKPOINT_MAGIC);
        out.u32(CHECKPOINT_FORMAT_VERSION);
        out.usize(payload.len());
        out.u32(crc32(&payload));
        out.bytes(&[0u8; 12]);
        out.bytes(&payload);
        let back = decode(&out.into_bytes()).unwrap();
        assert_states_equal(&state, &back);
    }

    #[test]
    fn write_prunes_to_two_and_load_latest_falls_back_past_corruption() {
        let dir = tmpdir("prune");
        for v in [3u64, 5, 9] {
            write(&dir, &sample_state(v)).unwrap();
        }
        let names = list_checkpoints(&dir).unwrap();
        assert_eq!(
            names.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![5, 9],
            "older checkpoints pruned down to two"
        );
        // Clean load picks the newest.
        let out = load_latest(&dir).unwrap();
        assert_eq!(out.loaded.as_ref().unwrap().0.snapshot_version, 9);
        assert!(out.skipped.is_empty());
        // Corrupt the newest: load falls back to version 5 and reports it.
        let newest = checkpoint_path(&dir, 9);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let out = load_latest(&dir).unwrap();
        assert_eq!(out.loaded.as_ref().unwrap().0.snapshot_version, 5);
        assert_eq!(out.skipped.len(), 1);
        // Corrupt both: nothing loads, both reported, no error.
        let older = checkpoint_path(&dir, 5);
        let mut bytes = fs::read(&older).unwrap();
        bytes[40] ^= 0x01;
        fs::write(&older, &bytes).unwrap();
        let out = load_latest(&dir).unwrap();
        assert!(out.loaded.is_none());
        assert_eq!(out.skipped.len(), 2);
        // A newer-format checkpoint is a hard error, not a skip.
        let mut bytes = fs::read(&older).unwrap();
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        fs::write(checkpoint_path(&dir, 11), &bytes).unwrap();
        assert!(matches!(
            load_latest(&dir),
            Err(PersistError::UnsupportedVersion { found: 9, .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_latest_on_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join(format!("gf-ckpt-none-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let out = load_latest(&dir).unwrap();
        assert!(out.loaded.is_none() && out.skipped.is_empty());
    }

    #[test]
    fn cross_section_mismatch_is_corrupt() {
        // Prefs from a *different* matrix shape must be rejected even though
        // both sections are individually well-formed.
        let mut state = sample_state(1);
        let mut b = MatrixBuilder::new(2, 2, RatingScale::one_to_five());
        b.push(0, 0, 1.0).unwrap();
        b.push(1, 1, 5.0).unwrap();
        let small = b.build().unwrap();
        state.prefs = PrefIndex::build(&small);
        let bytes = encode(&state).unwrap();
        assert!(matches!(decode(&bytes), Err(PersistError::Corrupt(_))));
    }
}
