//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every WAL record and checkpoint payload. Table-driven, built at
//! compile time; matches zlib's `crc32()` on every input.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value, plus zlib-verified fixtures.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut buf = b"the quick brown fox".to_vec();
        let clean = crc32(&buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32(&buf), clean, "flip at {byte}:{bit} undetected");
                buf[byte] ^= 1 << bit;
            }
        }
    }
}
