//! FNV-1a 64-bit state digests — the fingerprint the crash-recovery
//! harness compares across process boundaries.
//!
//! A digest is order-sensitive and framed: every field is folded in with
//! its width, and variable-length runs are preceded by their length, so
//! `[1,2]+[3]` and `[1]+[2,3]` hash differently. Two serving processes
//! agree on the digest iff they agree bit-for-bit on the hashed state
//! (up to 64-bit collision odds, irrelevant for a test oracle).

use gf_core::{FormationResult, RatingMatrix};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher over structured state.
#[derive(Debug, Clone)]
pub struct StateDigest {
    hash: u64,
}

impl Default for StateDigest {
    fn default() -> Self {
        StateDigest::new()
    }
}

impl StateDigest {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        StateDigest { hash: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Folds an `f64`'s raw bit pattern (bit-for-bit, `-0.0 != 0.0`).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Folds a length-prefixed `u32` run.
    pub fn u32_slice(&mut self, slice: &[u32]) -> &mut Self {
        self.usize(slice.len());
        for &v in slice {
            self.u32(v);
        }
        self
    }

    /// Folds a length-prefixed `u64` run.
    pub fn u64_slice(&mut self, slice: &[u64]) -> &mut Self {
        self.usize(slice.len());
        for &v in slice {
            self.u64(v);
        }
        self
    }

    /// Folds a length-prefixed `f64` run (raw bit patterns).
    pub fn f64_slice(&mut self, slice: &[f64]) -> &mut Self {
        self.usize(slice.len());
        for &v in slice {
            self.f64(v);
        }
        self
    }

    /// Folds the full CSR of a rating matrix: dimensions, scale and
    /// every row's `(item, score)` pairs.
    pub fn matrix(&mut self, m: &RatingMatrix) -> &mut Self {
        let (offsets, items, scores) = m.csr_parts();
        self.u32(m.n_users());
        self.u32(m.n_items());
        self.f64(m.scale().min());
        self.f64(m.scale().max());
        self.usize(offsets.len());
        for &o in offsets {
            self.usize(o);
        }
        self.u32_slice(items);
        self.f64_slice(scores)
    }

    /// Folds an emitted formation: objective, bucket count, and each
    /// group's members, top-`k` list and satisfaction.
    pub fn formation(&mut self, f: &FormationResult) -> &mut Self {
        self.f64(f.objective);
        self.usize(f.n_buckets);
        self.usize(f.grouping.groups.len());
        for g in &f.grouping.groups {
            self.u32_slice(&g.members);
            self.usize(g.top_k.len());
            for &(item, score) in &g.top_k {
                self.u32(item);
                self.f64(score);
            }
            self.f64(g.satisfaction);
        }
        self
    }

    /// The digest value so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }

    /// The digest as a fixed-width lowercase hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(StateDigest::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            StateDigest::new().bytes(b"a").finish(),
            0xaf63_dc4c_8601_ec8c
        );
        assert_eq!(
            StateDigest::new().bytes(b"foobar").finish(),
            0x85944171f73967e8
        );
    }

    #[test]
    fn framing_distinguishes_split_points() {
        let mut a = StateDigest::new();
        a.u32_slice(&[1, 2]).u32_slice(&[3]);
        let mut b = StateDigest::new();
        b.u32_slice(&[1]).u32_slice(&[2, 3]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut d = StateDigest::new();
        d.u64(0);
        assert_eq!(d.hex().len(), 16);
        assert_eq!(d.hex(), format!("{:016x}", d.finish()));
    }

    #[test]
    fn negative_zero_differs_from_zero() {
        let mut a = StateDigest::new();
        a.f64(0.0);
        let mut b = StateDigest::new();
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
