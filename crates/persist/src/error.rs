//! Error type shared by the WAL, checkpoint and codec layers.

use std::fmt;
use std::io;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PersistError>;

/// Everything that can go wrong while persisting or recovering state.
#[derive(Debug)]
pub enum PersistError {
    /// An OS-level I/O failure, with the operation that hit it.
    Io {
        /// What the crate was doing (e.g. `"append wal record"`).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The bytes on disk do not decode: bad magic, CRC mismatch, impossible
    /// lengths, or restored state that fails `gf-core`'s validation.
    Corrupt(String),
    /// The file's format version is newer than this build understands.
    /// Deliberately **not** skipped by recovery: an operator downgrading a
    /// binary should see this, not a silent fall-back to an older
    /// checkpoint (see `docs/OPERATIONS.md`).
    UnsupportedVersion {
        /// The version found in the file header.
        found: u32,
        /// The highest version this build supports.
        supported: u32,
    },
}

impl PersistError {
    pub(crate) fn io(context: impl Into<String>) -> impl FnOnce(io::Error) -> PersistError {
        let context = context.into();
        move |source| PersistError::Io { context, source }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context, source } => write!(f, "{context}: {source}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "format version {found} is newer than the supported {supported}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<gf_core::GfError> for PersistError {
    fn from(e: gf_core::GfError) -> Self {
        PersistError::Corrupt(format!("restored state failed validation: {e}"))
    }
}

impl From<PersistError> for gf_core::GfError {
    fn from(e: PersistError) -> Self {
        gf_core::GfError::Persist(e.to_string())
    }
}
