//! The byte codec under the WAL and checkpoint formats: fixed-width
//! little-endian primitives over growable buffers, with a bounds-checked
//! reader that never trusts an on-disk length.
//!
//! Floats are always carried as their raw `f64` bit patterns so a
//! round trip is bit-for-bit lossless (NaN payloads included); `usize`
//! values travel as `u64` so the format is identical across word sizes.

use crate::error::{PersistError, Result};

/// Append-only encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends `slice.len()` as a `u64`, then every element.
    pub fn u32_slice(&mut self, slice: &[u32]) {
        self.usize(slice.len());
        for &v in slice {
            self.u32(v);
        }
    }

    /// Appends `slice.len()` as a `u64`, then every element.
    pub fn u64_slice(&mut self, slice: &[u64]) {
        self.usize(slice.len());
        for &v in slice {
            self.u64(v);
        }
    }

    /// Appends `slice.len()` as a `u64`, then every element's bit pattern.
    pub fn f64_slice(&mut self, slice: &[f64]) {
        self.usize(slice.len());
        for &v in slice {
            self.f64(v);
        }
    }

    /// Appends `slice.len()` as a `u64`, then every element as a `u64`.
    pub fn usize_slice(&mut self, slice: &[usize]) {
        self.usize(slice.len());
        for &v in slice {
            self.usize(v);
        }
    }

    /// Pads with zero bytes to the next multiple of `align`.
    pub fn pad_to(&mut self, align: usize) {
        while self.buf.len() % align != 0 {
            self.buf.push(0);
        }
    }
}

/// Bounds-checked decoder over a byte slice. Every read validates the
/// remaining length first — a corrupt length can never panic, over-read,
/// or force an absurd allocation (element counts are checked against the
/// bytes actually present before any `Vec` is sized).
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn short(&self, what: &str, need: usize) -> PersistError {
        PersistError::Corrupt(format!(
            "truncated {what}: need {need} bytes, {} remain at offset {}",
            self.remaining(),
            self.pos
        ))
    }

    /// Consumes `len` raw bytes.
    pub fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(self.short(what, len));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self, what: &str) -> Result<usize> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("{what} {v} overflows usize")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn count(&mut self, what: &str, elem_size: usize) -> Result<usize> {
        let n = self.usize(what)?;
        match n.checked_mul(elem_size) {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(PersistError::Corrupt(format!(
                "{what}: {n} elements of {elem_size} bytes exceed the {} remaining",
                self.remaining()
            ))),
        }
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self, what: &str) -> Result<Vec<u32>> {
        let n = self.count(what, 4)?;
        (0..n).map(|_| self.u32(what)).collect()
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64_vec(&mut self, what: &str) -> Result<Vec<u64>> {
        let n = self.count(what, 8)?;
        (0..n).map(|_| self.u64(what)).collect()
    }

    /// Reads a length-prefixed `f64` vector (raw bit patterns).
    pub fn f64_vec(&mut self, what: &str) -> Result<Vec<f64>> {
        let n = self.count(what, 8)?;
        (0..n).map(|_| self.f64(what)).collect()
    }

    /// Reads a length-prefixed `usize` vector (stored as `u64`s).
    pub fn usize_vec(&mut self, what: &str) -> Result<Vec<usize>> {
        let n = self.count(what, 8)?;
        (0..n).map(|_| self.usize(what)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.u32_slice(&[1, 2, 3]);
        w.usize_slice(&[0, usize::MAX]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64("e").unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.u32_vec("f").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.usize_vec("g").unwrap(), vec![0, usize::MAX]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(r.u64("x"), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn absurd_length_prefix_does_not_allocate() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.f64_vec("v"), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn padding_aligns() {
        let mut w = Writer::new();
        w.u8(1);
        w.pad_to(8);
        assert_eq!(w.len(), 8);
        w.pad_to(8);
        assert_eq!(w.len(), 8);
    }
}
