//! Property-based tests for the baseline substrate: Kendall-Tau as a
//! metric, clustering contracts, and the pipeline's GroupFormer contract.

use gf_baselines::distance::DistanceMatrix;
use gf_baselines::kendall::{
    count_inversions, count_inversions_naive, kendall_tau, kendall_tau_normalized,
};
use gf_baselines::kmeans::{kmeans, kmeans_threaded};
use gf_baselines::kmedoids::kmedoids;
use gf_baselines::{BaselineFormer, ClusterStrategy, RandomFormer};
use gf_core::{Aggregation, FormationConfig, GroupFormer, PrefIndex, Semantics};
use gf_datasets::SynthConfig;
use proptest::prelude::*;

fn permutation(m: usize) -> impl Strategy<Value = Vec<u32>> {
    Just((0..m as u32).collect::<Vec<u32>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast inversion counting matches the naive oracle.
    #[test]
    fn inversions_match_naive(seq in proptest::collection::vec(0u32..50, 0..60)) {
        let naive = count_inversions_naive(&seq);
        let mut scratch = seq.clone();
        prop_assert_eq!(count_inversions(&mut scratch), naive);
    }

    /// Kendall-Tau over permutations is a metric: identity, symmetry,
    /// triangle inequality, and the m(m-1)/2 maximum.
    #[test]
    fn kendall_is_a_metric(
        (a, b, c) in (2usize..9).prop_flat_map(|m| (permutation(m), permutation(m), permutation(m)))
    ) {
        let ab = kendall_tau(&a, &b);
        let ba = kendall_tau(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(kendall_tau(&a, &a), 0);
        let bc = kendall_tau(&b, &c);
        let ac = kendall_tau(&a, &c);
        prop_assert!(ac <= ab + bc);
        let m = a.len() as u64;
        prop_assert!(ab <= m * (m - 1) / 2);
        let norm = kendall_tau_normalized(&a, &b);
        prop_assert!((0.0..=1.0).contains(&norm));
    }

    /// Reversing a ranking yields the maximum distance.
    #[test]
    fn reversal_is_max(a in (2usize..12).prop_flat_map(permutation)) {
        let rev: Vec<u32> = a.iter().rev().copied().collect();
        let m = a.len() as u64;
        prop_assert_eq!(kendall_tau(&a, &rev), m * (m - 1) / 2);
    }

    /// Clustering contracts: every user assigned, at most k clusters,
    /// deterministic in the seed.
    #[test]
    fn clustering_contracts(n in 2u32..30, m in 2u32..8, k in 1usize..6, seed in 0u64..50) {
        let d = SynthConfig::tiny(n, m).generate();
        let km = kmeans(&d.matrix, k, 20, seed);
        prop_assert_eq!(km.assignment.len(), n as usize);
        prop_assert!(km.groups().len() <= k.min(n as usize));
        prop_assert_eq!(
            km.assignment.clone(),
            kmeans(&d.matrix, k, 20, seed).assignment
        );

        let prefs = PrefIndex::build(&d.matrix);
        let dist = DistanceMatrix::kendall_tau(&d.matrix, &prefs, Default::default(), 2);
        let md = kmedoids(&dist, k, 20, seed);
        prop_assert_eq!(md.assignment.len(), n as usize);
        prop_assert!(md.groups().len() <= k.min(n as usize));
        let total: usize = md.groups().iter().map(Vec::len).sum();
        prop_assert_eq!(total, n as usize);
    }

    /// The threaded k-means assignment pass is bit-for-bit identical to
    /// the sequential one across thread counts {2, 7} and auto (0), for
    /// any population size, cluster count and seed — each user's nearest
    /// centroid is a pure function of the centroids, so splitting the
    /// pass over workers must not change anything.
    #[test]
    fn kmeans_threaded_matches_sequential(
        n in 1u32..30,
        m in 2u32..8,
        k in 1usize..6,
        seed in 0u64..50,
    ) {
        let d = SynthConfig::tiny(n, m).generate();
        let sequential = kmeans(&d.matrix, k, 15, seed);
        for threads in [2usize, 7, 0] {
            let threaded = kmeans_threaded(&d.matrix, k, 15, seed, threads);
            prop_assert_eq!(&sequential.assignment, &threaded.assignment,
                "threads={}", threads);
            prop_assert_eq!(sequential.iterations, threaded.iterations,
                "threads={}", threads);
        }
    }

    /// The distance matrix is symmetric with a zero diagonal, and parallel
    /// construction agrees bit-for-bit with single-threaded construction
    /// across thread counts {2, 7} and auto (0), down to n = 1.
    #[test]
    fn distance_matrix_symmetric(n in 1u32..18, m in 2u32..6) {
        let d = SynthConfig::tiny(n, m).generate();
        let prefs = PrefIndex::build(&d.matrix);
        let one = DistanceMatrix::kendall_tau(&d.matrix, &prefs, Default::default(), 1);
        for threads in [2usize, 7, 0] {
            let t = DistanceMatrix::kendall_tau(&d.matrix, &prefs, Default::default(), threads);
            for a in 0..n {
                prop_assert_eq!(one.get(a, a), 0.0);
                for b in 0..n {
                    prop_assert_eq!(one.get(a, b), one.get(b, a));
                    prop_assert_eq!(one.get(a, b), t.get(a, b), "threads={}", threads);
                    prop_assert!((0.0..=1.0).contains(&one.get(a, b)));
                }
            }
        }
    }

    /// Both baseline strategies and the random anchor satisfy the
    /// GroupFormer contract on arbitrary inputs.
    #[test]
    fn formers_contract(
        n in 2u32..25,
        m in 2u32..8,
        ell in 1usize..6,
        k in 1usize..4,
        lm in any::<bool>(),
    ) {
        let d = SynthConfig::tiny(n, m).generate();
        let prefs = PrefIndex::build(&d.matrix);
        let sem = if lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let cfg = FormationConfig::new(sem, Aggregation::Min, k, ell);
        let formers: Vec<Box<dyn GroupFormer>> = vec![
            Box::new(BaselineFormer::new().with_strategy(ClusterStrategy::KendallMedoids).with_max_iter(15)),
            Box::new(BaselineFormer::new().with_strategy(ClusterStrategy::RatingKMeans).with_max_iter(15)),
            Box::new(RandomFormer::new()),
        ];
        for former in formers {
            let r = former.form(&d.matrix, &prefs, &cfg).unwrap();
            r.grouping.validate(n, ell).unwrap();
            let recomputed = gf_core::recompute_objective(
                &d.matrix, &r.grouping, sem, cfg.aggregation, cfg.policy, k,
            );
            prop_assert!((recomputed - r.objective).abs() < 1e-9, "{}", former.name(&cfg));
        }
    }
}
