//! The `Baseline-LM` / `Baseline-AV` pipelines.
//!
//! Cluster first (ignoring semantics), then — exactly as the paper
//! describes — "once these groups are formed, for each group, we compute
//! the top-k item list and respective group satisfaction scores
//! (using Min/Max/Sum aggregation) based on LM or AV semantics."

use crate::distance::DistanceMatrix;
use crate::kmeans::kmeans_threaded;
use crate::kmedoids::{kmedoids, Clustering};
use gf_core::{
    FormationConfig, FormationResult, Group, GroupFormer, GroupRecommender, Grouping, PrefIndex,
    RatingMatrix, Result,
};

/// Which clustering backend the baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterStrategy {
    /// Exact pairwise Kendall-Tau + k-medoids. Θ(n²·m log m) setup — the
    /// quality-experiment path (hundreds of users).
    KendallMedoids,
    /// Lloyd's k-means on sparse rating vectors — the scalability path.
    RatingKMeans,
    /// `KendallMedoids` when `n <= pivot`, else `RatingKMeans`.
    Auto {
        /// User-count threshold for switching strategies.
        pivot: u32,
    },
}

impl Default for ClusterStrategy {
    fn default() -> Self {
        ClusterStrategy::Auto { pivot: 1_000 }
    }
}

/// The paper's baseline group former (adapted from Ntoutsi et al. \[22\]).
#[derive(Debug, Clone, Copy)]
pub struct BaselineFormer {
    strategy: ClusterStrategy,
    /// Iteration cap; the paper sets 100.
    max_iter: usize,
    seed: u64,
    /// Raw thread knob (0 = auto); resolved by `gf_core::resolve_threads`.
    n_threads: usize,
}

impl Default for BaselineFormer {
    fn default() -> Self {
        BaselineFormer::new()
    }
}

impl BaselineFormer {
    /// A baseline with the paper's defaults (auto strategy, 100 iterations,
    /// auto worker threads).
    pub fn new() -> Self {
        BaselineFormer {
            strategy: ClusterStrategy::default(),
            max_iter: 100,
            seed: 0xba5e_0001,
            n_threads: 0,
        }
    }

    /// Overrides the clustering strategy.
    pub fn with_strategy(mut self, strategy: ClusterStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the iteration cap.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for the parallel passes (the Kendall-Tau pairwise
    /// distance matrix and the k-means assignment loop). `0` = auto
    /// (`available_parallelism`); the knob is stored raw and resolved in
    /// one place, [`gf_core::resolve_threads`], when the work size is
    /// known — never clamped here.
    pub fn with_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    fn cluster(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Clustering {
        let use_medoids = match self.strategy {
            ClusterStrategy::KendallMedoids => true,
            ClusterStrategy::RatingKMeans => false,
            ClusterStrategy::Auto { pivot } => matrix.n_users() <= pivot,
        };
        if use_medoids {
            let dist = DistanceMatrix::kendall_tau(matrix, prefs, cfg.policy, self.n_threads);
            kmedoids(&dist, cfg.ell, self.max_iter, self.seed)
        } else {
            kmeans_threaded(matrix, cfg.ell, self.max_iter, self.seed, self.n_threads)
        }
    }
}

impl GroupFormer for BaselineFormer {
    fn name(&self, cfg: &FormationConfig) -> String {
        format!("Baseline-{}-{}", cfg.semantics.tag(), cfg.aggregation.tag())
    }

    fn form(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult> {
        cfg.validate(matrix)?;
        let clustering = self.cluster(matrix, prefs, cfg);
        let rec = GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy);
        let mut groups = Vec::with_capacity(clustering.n_clusters);
        for mut members in clustering.groups() {
            members.sort_unstable();
            let top_k = rec.top_k(&members, cfg.k);
            let scores: Vec<f64> = top_k.iter().map(|&(_, s)| s).collect();
            let satisfaction = cfg.aggregation.apply(&scores);
            groups.push(Group {
                members,
                top_k,
                satisfaction,
            });
        }
        let n_groups = groups.len();
        let grouping = Grouping::new(groups);
        debug_assert!(grouping.validate(matrix.n_users(), cfg.ell).is_ok());
        let objective = grouping.objective();
        Ok(FormationResult {
            grouping,
            objective,
            n_buckets: n_groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, GreedyFormer, Semantics};
    use gf_datasets::SynthConfig;

    fn structured() -> (RatingMatrix, PrefIndex) {
        let d = SynthConfig::yahoo_music()
            .with_users(120)
            .with_items(60)
            .with_user_noise(0.15)
            .generate();
        let p = PrefIndex::build(&d.matrix);
        (d.matrix, p)
    }

    #[test]
    fn baseline_names() {
        let b = BaselineFormer::new();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10);
        assert_eq!(b.name(&cfg), "Baseline-LM-MIN");
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 5, 10);
        assert_eq!(b.name(&cfg), "Baseline-AV-SUM");
    }

    #[test]
    fn baseline_produces_valid_grouping() {
        let (m, p) = structured();
        for strategy in [
            ClusterStrategy::KendallMedoids,
            ClusterStrategy::RatingKMeans,
        ] {
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 8);
            let r = BaselineFormer::new()
                .with_strategy(strategy)
                .with_max_iter(30)
                .form(&m, &p, &cfg)
                .unwrap();
            r.grouping.validate(m.n_users(), 8).unwrap();
            assert!(r.grouping.len() <= 8);
        }
    }

    #[test]
    fn grd_beats_baseline_on_clustered_data() {
        // The paper's headline quality findings, in miniature, each on the
        // metric the paper reports for it: under LM the *objective* of GRD
        // dominates the baseline (Figures 1-2); under AV the *average group
        // satisfaction over the top-k list* does (Figure 3). (The raw AV
        // objective is size-dominated: a clustering that merely balances
        // groups can sum more member ratings — Example 4 of the paper shows
        // why reasoning about the AV objective is tricky.)
        let (m, p) = structured();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 10);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let base = BaselineFormer::new()
            .with_max_iter(50)
            .form(&m, &p, &cfg)
            .unwrap();
        assert!(
            grd.objective >= base.objective,
            "LM: GRD {} < baseline {}",
            grd.objective,
            base.objective
        );

        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, 3, 10);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let base = BaselineFormer::new()
            .with_max_iter(50)
            .form(&m, &p, &cfg)
            .unwrap();
        let avg = |g: &FormationResult| {
            gf_core::avg_group_satisfaction(
                &m,
                &g.grouping,
                Semantics::AggregateVoting,
                cfg.policy,
                cfg.k,
            )
        };
        assert!(
            avg(&grd) >= avg(&base),
            "AV: GRD avg {} below baseline avg {}",
            avg(&grd),
            avg(&base)
        );
    }

    #[test]
    fn auto_strategy_switches_on_population_size() {
        let (m, p) = structured();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 5);
        // Force the pivot below n: must take the k-means path and still work.
        let r = BaselineFormer::new()
            .with_strategy(ClusterStrategy::Auto { pivot: 10 })
            .with_max_iter(20)
            .form(&m, &p, &cfg)
            .unwrap();
        r.grouping.validate(m.n_users(), 5).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let (m, p) = structured();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 3, 6);
        let a = BaselineFormer::new()
            .with_seed(3)
            .form(&m, &p, &cfg)
            .unwrap();
        let b = BaselineFormer::new()
            .with_seed(3)
            .form(&m, &p, &cfg)
            .unwrap();
        assert_eq!(a.grouping, b.grouping);
    }

    #[test]
    fn single_group_budget() {
        let (m, p) = structured();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Max, 5, 1);
        let r = BaselineFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.grouping.len(), 1);
        assert_eq!(r.grouping.groups[0].members.len(), m.n_users() as usize);
    }
}
