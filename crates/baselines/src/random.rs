//! Random partition baseline — the zero-information anchor.
//!
//! Any serious group formation algorithm must beat a uniformly random
//! balanced partition. This former exists so experiments can report how
//! much of the baseline's quality comes from clustering at all versus from
//! merely *having* ℓ balanced groups.

use gf_core::{
    FormationConfig, FormationResult, Group, GroupFormer, GroupRecommender, Grouping, PrefIndex,
    RatingMatrix, Result,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniformly random balanced partition into at most `ell` groups.
#[derive(Debug, Clone, Copy)]
pub struct RandomFormer {
    seed: u64,
}

impl Default for RandomFormer {
    fn default() -> Self {
        RandomFormer { seed: 0xda7a_0001 }
    }
}

impl RandomFormer {
    /// A random former with the default seed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl GroupFormer for RandomFormer {
    fn name(&self, cfg: &FormationConfig) -> String {
        format!("Random-{}-{}", cfg.semantics.tag(), cfg.aggregation.tag())
    }

    fn form(
        &self,
        matrix: &RatingMatrix,
        _prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult> {
        cfg.validate(matrix)?;
        let n = matrix.n_users();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut users: Vec<u32> = (0..n).collect();
        for i in (1..users.len()).rev() {
            users.swap(i, rng.gen_range(0..=i));
        }
        let ell = cfg.ell.min(n as usize);
        let mut member_lists: Vec<Vec<u32>> = vec![Vec::new(); ell];
        for (pos, u) in users.into_iter().enumerate() {
            member_lists[pos % ell].push(u);
        }
        let rec = GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy);
        let mut groups = Vec::with_capacity(ell);
        for mut members in member_lists {
            if members.is_empty() {
                continue;
            }
            members.sort_unstable();
            let top_k = rec.top_k(&members, cfg.k);
            let scores: Vec<f64> = top_k.iter().map(|&(_, s)| s).collect();
            let satisfaction = cfg.aggregation.apply(&scores);
            groups.push(Group {
                members,
                top_k,
                satisfaction,
            });
        }
        let grouping = Grouping::new(groups);
        let objective = grouping.objective();
        Ok(FormationResult {
            grouping,
            objective,
            n_buckets: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, GreedyFormer, Semantics};
    use gf_datasets::SynthConfig;

    #[test]
    fn random_partition_is_valid_and_balanced() {
        let d = SynthConfig::tiny(23, 8).generate();
        let p = PrefIndex::build(&d.matrix);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 5);
        let r = RandomFormer::new().form(&d.matrix, &p, &cfg).unwrap();
        r.grouping.validate(23, 5).unwrap();
        let sizes = r.grouping.sizes();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = SynthConfig::tiny(15, 6).generate();
        let p = PrefIndex::build(&d.matrix);
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 2, 4);
        let a = RandomFormer::new()
            .with_seed(1)
            .form(&d.matrix, &p, &cfg)
            .unwrap();
        let b = RandomFormer::new()
            .with_seed(1)
            .form(&d.matrix, &p, &cfg)
            .unwrap();
        let c = RandomFormer::new()
            .with_seed(2)
            .form(&d.matrix, &p, &cfg)
            .unwrap();
        assert_eq!(a.grouping, b.grouping);
        assert_ne!(a.grouping, c.grouping);
    }

    #[test]
    fn greedy_beats_random_on_structured_data() {
        let d = SynthConfig::yahoo_music()
            .with_users(150)
            .with_items(60)
            .with_user_noise(0.15)
            .generate();
        let p = PrefIndex::build(&d.matrix);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 10);
        let grd = GreedyFormer::new().form(&d.matrix, &p, &cfg).unwrap();
        let rnd = RandomFormer::new().form(&d.matrix, &p, &cfg).unwrap();
        assert!(
            grd.objective > rnd.objective,
            "greedy {} should beat random {}",
            grd.objective,
            rnd.objective
        );
    }

    #[test]
    fn ell_exceeding_n_caps_at_n() {
        let d = SynthConfig::tiny(4, 3).generate();
        let p = PrefIndex::build(&d.matrix);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 100);
        let r = RandomFormer::new().form(&d.matrix, &p, &cfg).unwrap();
        assert_eq!(r.grouping.len(), 4);
    }
}
