//! K-medoids clustering over a precomputed distance matrix.
//!
//! The paper applies "K-means clustering" to Kendall-Tau distances; K-means
//! proper needs a vector space, so over a pure distance matrix the standard
//! realization is k-medoids (Voronoi iteration): assign every point to its
//! nearest medoid, then recenter each cluster on the member minimizing the
//! within-cluster distance sum. Matches the paper's cap of 100 iterations.

use crate::distance::DistanceMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `assignment[u]` = cluster index of user `u`.
    pub assignment: Vec<u32>,
    /// Number of clusters actually populated.
    pub n_clusters: usize,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl Clustering {
    /// Materializes the clusters as member lists (empty clusters dropped,
    /// members ascending).
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); self.n_clusters];
        for (u, &c) in self.assignment.iter().enumerate() {
            groups[c as usize].push(u as u32);
        }
        groups.retain(|g| !g.is_empty());
        groups
    }
}

/// Runs k-medoids over `dist`, aiming for `k` clusters.
///
/// Seeding is k-means++-style: the first medoid is drawn uniformly, each
/// further medoid with probability proportional to squared distance from
/// the nearest existing medoid. Deterministic in `seed`.
pub fn kmedoids(dist: &DistanceMatrix, k: usize, max_iter: usize, seed: u64) -> Clustering {
    let n = dist.len();
    assert!(k >= 1, "need at least one cluster");
    if n == 0 {
        return Clustering {
            assignment: vec![],
            n_clusters: 0,
            iterations: 0,
        };
    }
    let k = k.min(n);
    let mut rng = SmallRng::seed_from_u64(seed);

    // k-means++ seeding on the distance matrix.
    let mut medoids: Vec<u32> = Vec::with_capacity(k);
    medoids.push(rng.gen_range(0..n) as u32);
    let mut nearest_sq: Vec<f64> = (0..n)
        .map(|u| {
            let d = dist.get(u as u32, medoids[0]);
            d * d
        })
        .collect();
    while medoids.len() < k {
        let total: f64 = nearest_sq.iter().sum();
        let next = if total <= 1e-12 {
            // All points coincide with existing medoids; pick any non-medoid.
            (0..n as u32).find(|u| !medoids.contains(u))
        } else {
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = None;
            for (u, &w) in nearest_sq.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    chosen = Some(u as u32);
                    break;
                }
            }
            chosen.or(Some((n - 1) as u32))
        };
        let Some(next) = next else { break };
        medoids.push(next);
        #[allow(clippy::needless_range_loop)] // `u` is a point id
        for u in 0..n {
            let d = dist.get(u as u32, next);
            nearest_sq[u] = nearest_sq[u].min(d * d);
        }
    }

    let mut assignment = vec![0u32; n];
    let mut iterations = 0usize;
    for _ in 0..max_iter.max(1) {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // `u` is a point id
        for u in 0..n {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, &m) in medoids.iter().enumerate() {
                let d = dist.get(u as u32, m);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[u] != best as u32 {
                assignment[u] = best as u32;
                changed = true;
            }
        }
        // Update step: recenter each cluster on its best medoid.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); medoids.len()];
        for (u, &c) in assignment.iter().enumerate() {
            members[c as usize].push(u as u32);
        }
        let mut moved = false;
        for (c, cluster) in members.iter().enumerate() {
            if cluster.is_empty() {
                continue;
            }
            let mut best = medoids[c];
            let mut best_total = f64::INFINITY;
            for &candidate in cluster {
                let total = dist.total_distance(candidate, cluster);
                if total < best_total {
                    best_total = total;
                    best = candidate;
                }
            }
            if best != medoids[c] {
                medoids[c] = best;
                moved = true;
            }
        }
        if !changed && !moved {
            break;
        }
    }

    Clustering {
        n_clusters: medoids.len(),
        assignment,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs on a line.
    fn two_blobs() -> DistanceMatrix {
        let coords = [0.0f64, 0.1, 0.2, 10.0, 10.1, 10.2];
        DistanceMatrix::from_fn(coords.len(), |a, b| {
            (coords[a as usize] - coords[b as usize]).abs()
        })
    }

    #[test]
    fn separates_obvious_blobs() {
        let d = two_blobs();
        let c = kmedoids(&d, 2, 100, 1);
        assert_eq!(c.assignment.len(), 6);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[1], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_eq!(c.assignment[4], c.assignment[5]);
        assert_ne!(c.assignment[0], c.assignment[3]);
    }

    #[test]
    fn groups_materialize_every_user_once() {
        let d = two_blobs();
        let c = kmedoids(&d, 3, 100, 2);
        let groups = c.groups();
        let mut all: Vec<u32> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn k_capped_at_n() {
        let d = DistanceMatrix::from_fn(3, |a, b| (a as f64 - b as f64).abs());
        let c = kmedoids(&d, 10, 100, 3);
        assert!(c.groups().len() <= 3);
    }

    #[test]
    fn deterministic_in_seed() {
        let d = two_blobs();
        let a = kmedoids(&d, 2, 100, 7);
        let b = kmedoids(&d, 2, 100, 7);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn identical_points_converge_quickly() {
        let d = DistanceMatrix::from_fn(5, |_, _| 0.0);
        let c = kmedoids(&d, 2, 100, 4);
        assert!(c.iterations <= 2);
        assert_eq!(c.assignment.len(), 5);
    }

    #[test]
    fn k_one_puts_everyone_together() {
        let d = two_blobs();
        let c = kmedoids(&d, 1, 100, 5);
        assert!(c.assignment.iter().all(|&a| a == 0));
        assert_eq!(c.groups().len(), 1);
    }
}
