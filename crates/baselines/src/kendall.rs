//! Kendall-Tau distance between user rankings.
//!
//! The baseline measures `dist(u, u')` as the Kendall-Tau distance between
//! the two users' rankings of **all** items, "induced by the ratings they
//! provide" (Section 7). Each user's ranking is made a total order the same
//! way everywhere in this workspace: score descending, ties broken by
//! ascending item id, with unrated items imputed by the
//! [`MissingPolicy`].
//!
//! Between two total orders the distance is the number of discordant pairs,
//! counted in O(m log m) by merge-sort inversion counting (a naive O(m²)
//! reference implementation is kept for tests).

use gf_core::alg::bucket::personal_top_k;
use gf_core::{MissingPolicy, PrefIndex, RatingMatrix};

/// Counts inversions in `seq` (pairs `i < j` with `seq[i] > seq[j]`) by
/// merge sort. O(len log len). The input is consumed as scratch space.
pub fn count_inversions(seq: &mut [u32]) -> u64 {
    let mut buf = vec![0u32; seq.len()];
    sort_count(seq, &mut buf)
}

fn sort_count(seq: &mut [u32], buf: &mut [u32]) -> u64 {
    let n = seq.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = seq.split_at_mut(mid);
    let mut inv = sort_count(left, buf) + sort_count(right, buf);
    // Merge while counting cross inversions.
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[o] = left[i];
            i += 1;
        } else {
            inv += (left.len() - i) as u64;
            buf[o] = right[j];
            j += 1;
        }
        o += 1;
    }
    while i < left.len() {
        buf[o] = left[i];
        i += 1;
        o += 1;
    }
    while j < right.len() {
        buf[o] = right[j];
        j += 1;
        o += 1;
    }
    seq.copy_from_slice(&buf[..n]);
    inv
}

/// Naive O(m²) inversion count — the test oracle.
pub fn count_inversions_naive(seq: &[u32]) -> u64 {
    let mut inv = 0u64;
    for i in 0..seq.len() {
        for j in (i + 1)..seq.len() {
            if seq[i] > seq[j] {
                inv += 1;
            }
        }
    }
    inv
}

/// Kendall-Tau distance between two rankings, given as item sequences
/// (best first). Both must be permutations of the same `0..m` item set.
pub fn kendall_tau(rank_a: &[u32], rank_b: &[u32]) -> u64 {
    debug_assert_eq!(rank_a.len(), rank_b.len());
    let m = rank_a.len();
    // Position of each item in b's ranking.
    let mut pos_b = vec![0u32; m];
    for (pos, &item) in rank_b.iter().enumerate() {
        pos_b[item as usize] = pos as u32;
    }
    // Walk a's ranking, collecting b-positions; inversions = discordances.
    let mut seq: Vec<u32> = rank_a.iter().map(|&item| pos_b[item as usize]).collect();
    count_inversions(&mut seq)
}

/// Kendall-Tau distance normalized by the number of pairs `m(m-1)/2`,
/// in `[0, 1]`.
pub fn kendall_tau_normalized(rank_a: &[u32], rank_b: &[u32]) -> f64 {
    let m = rank_a.len() as u64;
    if m < 2 {
        return 0.0;
    }
    kendall_tau(rank_a, rank_b) as f64 / ((m * (m - 1) / 2) as f64)
}

/// User `u`'s total-order ranking over all `m` items (unrated items imputed
/// under `policy`, global tie-break by item id).
pub fn full_ranking(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    policy: MissingPolicy,
    u: u32,
) -> Vec<u32> {
    let m = matrix.n_items() as usize;
    personal_top_k(matrix, prefs, policy, u, m).0
}

/// Kendall-Tau distance between two users' full rankings.
pub fn user_distance(
    matrix: &RatingMatrix,
    prefs: &PrefIndex,
    policy: MissingPolicy,
    a: u32,
    b: u32,
) -> u64 {
    let ra = full_ranking(matrix, prefs, policy, a);
    let rb = full_ranking(matrix, prefs, policy, b);
    kendall_tau(&ra, &rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::RatingScale;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_rankings_distance_zero() {
        let r = vec![2u32, 0, 1, 3];
        assert_eq!(kendall_tau(&r, &r), 0);
        assert_eq!(kendall_tau_normalized(&r, &r), 0.0);
    }

    #[test]
    fn reversed_ranking_is_max_distance() {
        let a: Vec<u32> = (0..6).collect();
        let b: Vec<u32> = (0..6).rev().collect();
        assert_eq!(kendall_tau(&a, &b), 15); // 6 choose 2
        assert_eq!(kendall_tau_normalized(&a, &b), 1.0);
    }

    #[test]
    fn single_swap_distance_one() {
        let a = vec![0u32, 1, 2, 3];
        let b = vec![1u32, 0, 2, 3];
        assert_eq!(kendall_tau(&a, &b), 1);
    }

    #[test]
    fn symmetric() {
        let a = vec![3u32, 1, 0, 2];
        let b = vec![0u32, 2, 3, 1];
        assert_eq!(kendall_tau(&a, &b), kendall_tau(&b, &a));
    }

    #[test]
    fn fast_inversions_match_naive_on_random() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let len = rng.gen_range(0..40);
            let seq: Vec<u32> = (0..len).map(|_| rng.gen_range(0..30)).collect();
            let naive = count_inversions_naive(&seq);
            let mut scratch = seq.clone();
            assert_eq!(count_inversions(&mut scratch), naive, "{seq:?}");
        }
    }

    #[test]
    fn triangle_inequality_holds_for_permutation_metric() {
        // Kendall-Tau over total orders is a metric.
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..50 {
            let m = 8usize;
            let perm = |rng: &mut SmallRng| {
                let mut p: Vec<u32> = (0..m as u32).collect();
                for i in (1..m).rev() {
                    p.swap(i, rng.gen_range(0..=i));
                }
                p
            };
            let (a, b, c) = (perm(&mut rng), perm(&mut rng), perm(&mut rng));
            let ab = kendall_tau(&a, &b);
            let bc = kendall_tau(&b, &c);
            let ac = kendall_tau(&a, &c);
            assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
        }
    }

    #[test]
    fn user_distance_reflects_preference_disagreement() {
        // u0 and u1 agree; u2 is reversed.
        let m = RatingMatrix::from_dense(
            &[&[5.0, 3.0, 1.0][..], &[4.0, 3.0, 2.0], &[1.0, 3.0, 5.0]],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let prefs = PrefIndex::build(&m);
        let d01 = user_distance(&m, &prefs, MissingPolicy::Min, 0, 1);
        let d02 = user_distance(&m, &prefs, MissingPolicy::Min, 0, 2);
        assert_eq!(d01, 0);
        assert_eq!(d02, 3); // complete reversal of 3 items
    }

    #[test]
    fn sparse_users_get_full_rankings() {
        let m = RatingMatrix::from_triples(
            2,
            5,
            vec![(0, 4, 5.0), (1, 0, 5.0)],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let prefs = PrefIndex::build(&m);
        let r0 = full_ranking(&m, &prefs, MissingPolicy::Min, 0);
        assert_eq!(r0.len(), 5);
        assert_eq!(r0[0], 4);
        let r1 = full_ranking(&m, &prefs, MissingPolicy::Min, 1);
        assert_eq!(r1[0], 0);
        assert!(user_distance(&m, &prefs, MissingPolicy::Min, 0, 1) > 0);
    }
}
