//! Pairwise user distance matrices.
//!
//! Stores the upper triangle of the symmetric `n x n` Kendall-Tau distance
//! matrix in condensed form (n(n-1)/2 entries). Rows are computed in
//! parallel with scoped threads — no extra dependency needed.

use crate::kendall;
use gf_core::{MissingPolicy, PrefIndex, RatingMatrix};

/// Condensed symmetric pairwise distance matrix over `n` users.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Upper triangle, row-major: entry `(i, j)` with `i < j` lives at
    /// `i*n - i*(i+1)/2 + (j - i - 1)`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Number of users.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero users.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The distance between users `a` and `b` (0 when `a == b`).
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> f64 {
        let (a, b) = (a as usize, b as usize);
        if a == b {
            return 0.0;
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        self.data[self.index(i, j)]
    }

    /// Builds the pairwise normalized Kendall-Tau distance matrix with
    /// `n_threads` scoped worker threads (`0` = auto, see
    /// [`gf_core::resolve_threads`]).
    ///
    /// Θ(n²·m log m) — only feasible for quality-experiment sizes; the
    /// scalable baseline path uses [`crate::kmeans`] instead.
    pub fn kendall_tau(
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        policy: MissingPolicy,
        n_threads: usize,
    ) -> Self {
        let n = matrix.n_users() as usize;
        if n < 2 {
            // No pairs to measure. Also guards the condensed-size formula:
            // `n * (n - 1) / 2` would underflow `usize` at n = 0.
            return DistanceMatrix {
                n,
                data: Vec::new(),
            };
        }
        // Precompute all full rankings once: n * m memory.
        let rankings: Vec<Vec<u32>> = (0..matrix.n_users())
            .map(|u| kendall::full_ranking(matrix, prefs, policy, u))
            .collect();
        let mut data = vec![0.0f64; n * (n - 1) / 2];
        // One unit of work per condensed row; the workspace-wide knob
        // convention (0 = auto) is resolved in exactly one place.
        let threads = gf_core::resolve_threads(n_threads, n - 1);

        // Partition the rows i in 0..n-1 round-robin across threads; each
        // thread writes disjoint row slices of the condensed vector.
        let mut slices: Vec<&mut [f64]> = Vec::with_capacity(n.saturating_sub(1));
        let mut rest: &mut [f64] = &mut data;
        for i in 0..n.saturating_sub(1) {
            let (row, tail) = rest.split_at_mut(n - i - 1);
            slices.push(row);
            rest = tail;
        }
        let mut per_thread: Vec<Vec<(usize, &mut [f64])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, row) in slices.into_iter().enumerate() {
            per_thread[i % threads].push((i, row));
        }

        std::thread::scope(|scope| {
            for work in per_thread {
                let rankings = &rankings;
                scope.spawn(move || {
                    for (i, row) in work {
                        for (off, cell) in row.iter_mut().enumerate() {
                            let j = i + 1 + off;
                            *cell = kendall::kendall_tau_normalized(&rankings[i], &rankings[j]);
                        }
                    }
                });
            }
        });

        DistanceMatrix { n, data }
    }

    /// Builds a matrix from an arbitrary symmetric distance closure
    /// (single-threaded; used by tests and small experiments).
    pub fn from_fn(n: usize, mut dist: impl FnMut(u32, u32) -> f64) -> Self {
        if n < 2 {
            return DistanceMatrix {
                n,
                data: Vec::new(),
            };
        }
        let mut data = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(dist(i as u32, j as u32));
            }
        }
        DistanceMatrix { n, data }
    }

    /// Sum of distances from `point` to each member of `others`.
    pub fn total_distance(&self, point: u32, others: &[u32]) -> f64 {
        others.iter().map(|&o| self.get(point, o)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::RatingScale;

    #[test]
    fn from_fn_indexing() {
        let d = DistanceMatrix::from_fn(4, |a, b| (a + b) as f64);
        assert_eq!(d.len(), 4);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(1, 0), 1.0);
        assert_eq!(d.get(2, 3), 5.0);
        assert_eq!(d.get(3, 3), 0.0);
    }

    #[test]
    fn kendall_matrix_matches_pairwise_calls() {
        let m = RatingMatrix::from_dense(
            &[
                &[5.0, 3.0, 1.0, 2.0][..],
                &[4.0, 3.0, 2.0, 1.0],
                &[1.0, 3.0, 5.0, 4.0],
                &[2.0, 2.0, 2.0, 2.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let prefs = PrefIndex::build(&m);
        for threads in [1, 2, 4] {
            let d = DistanceMatrix::kendall_tau(&m, &prefs, MissingPolicy::Min, threads);
            for a in 0..4u32 {
                for b in 0..4u32 {
                    let want = if a == b {
                        0.0
                    } else {
                        let ra = crate::kendall::full_ranking(&m, &prefs, MissingPolicy::Min, a);
                        let rb = crate::kendall::full_ranking(&m, &prefs, MissingPolicy::Min, b);
                        crate::kendall::kendall_tau_normalized(&ra, &rb)
                    };
                    assert!(
                        (d.get(a, b) - want).abs() < 1e-12,
                        "threads={threads} ({a},{b}): {} vs {want}",
                        d.get(a, b)
                    );
                }
            }
        }
    }

    #[test]
    fn single_user_matrix_is_empty_not_panicking() {
        // Regression: the condensed allocation `n * (n - 1) / 2` used to
        // evaluate `n - 1` before the n < 2 guard existed; with n = 1
        // rankings were built for nothing, and a hypothetical n = 0 (which
        // MatrixBuilder rejects, hence no direct constructor here) would
        // underflow usize. `from_fn(0, …)` covers the degenerate shape.
        let m = RatingMatrix::from_dense(&[&[3.0, 1.0][..]], RatingScale::one_to_five()).unwrap();
        let prefs = PrefIndex::build(&m);
        for threads in [0usize, 1, 7] {
            let d = DistanceMatrix::kendall_tau(&m, &prefs, MissingPolicy::Min, threads);
            assert_eq!(d.len(), 1);
            assert!(!d.is_empty());
            assert_eq!(d.get(0, 0), 0.0);
        }
        let zero = DistanceMatrix::from_fn(0, |_, _| unreachable!());
        assert!(zero.is_empty());
        assert_eq!(zero.len(), 0);
    }

    #[test]
    fn two_user_matrix_has_one_entry() {
        let m =
            RatingMatrix::from_dense(&[&[5.0, 1.0][..], &[1.0, 5.0]], RatingScale::one_to_five())
                .unwrap();
        let prefs = PrefIndex::build(&m);
        for threads in [1usize, 2, 7] {
            let d = DistanceMatrix::kendall_tau(&m, &prefs, MissingPolicy::Min, threads);
            assert_eq!(d.len(), 2);
            assert_eq!(d.get(0, 1), 1.0); // fully reversed rankings
        }
    }

    #[test]
    fn thread_counts_agree_on_edge_sizes() {
        // threads ∈ {1, 2, 7} must agree bit-for-bit for n ∈ {1, 2, 17}.
        for n in [1u32, 2, 17] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|u| (0..4).map(|i| 1.0 + ((u + i * 3) % 5) as f64).collect())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
            let prefs = PrefIndex::build(&m);
            let one = DistanceMatrix::kendall_tau(&m, &prefs, MissingPolicy::Min, 1);
            for threads in [2usize, 7] {
                let t = DistanceMatrix::kendall_tau(&m, &prefs, MissingPolicy::Min, threads);
                assert_eq!(t.data, one.data, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn total_distance() {
        let d = DistanceMatrix::from_fn(3, |_, _| 2.0);
        assert_eq!(d.total_distance(0, &[1, 2]), 4.0);
        assert_eq!(d.total_distance(0, &[0]), 0.0);
    }
}
