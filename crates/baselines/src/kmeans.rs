//! Sparse-aware Lloyd's k-means over rating vectors.
//!
//! The scalable baseline path: users are their sparse rating vectors
//! (missing = 0), centroids are dense. Distances use the expansion
//! `||x - c||² = ||x||² - 2⟨x, c⟩ + ||c||²`, so an assignment pass costs
//! O(Σ_u d_u · ℓ) instead of O(n · m · ℓ). Seeding is k-means++ on a
//! sampled candidate set. Deterministic in the seed.
//!
//! The `O(nnz · ℓ)` **assignment pass** — the slowest part of the
//! fig4(c)/fig6(c) sweeps at large ℓ — runs on scoped worker threads over
//! disjoint user ranges ([`kmeans_threaded`], knob convention of
//! [`gf_core::resolve_threads`]). Each user's assignment is a pure
//! function of the centroids, so the threaded pass is **bit-for-bit
//! identical** to the sequential one regardless of the thread count
//! (property-tested in `tests/prop_baselines.rs`); seeding and the
//! centroid update stay sequential (both are O(nnz) and carry the
//! RNG/accumulation order).

use crate::kmedoids::Clustering;
use gf_core::{resolve_threads, RatingMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runs k-means over the users of `matrix`, aiming for `k` clusters.
/// Single-threaded; see [`kmeans_threaded`] for the parallel variant.
pub fn kmeans(matrix: &RatingMatrix, k: usize, max_iter: usize, seed: u64) -> Clustering {
    kmeans_threaded(matrix, k, max_iter, seed, 1)
}

/// [`kmeans`] with the assignment pass parallelized over `n_threads`
/// scoped workers (`0` = auto via `available_parallelism`, always clamped
/// to the population size). Identical output for every thread count.
pub fn kmeans_threaded(
    matrix: &RatingMatrix,
    k: usize,
    max_iter: usize,
    seed: u64,
    n_threads: usize,
) -> Clustering {
    let n = matrix.n_users() as usize;
    let m = matrix.n_items() as usize;
    assert!(k >= 1, "need at least one cluster");
    if n == 0 {
        return Clustering {
            assignment: vec![],
            n_clusters: 0,
            iterations: 0,
        };
    }
    let k = k.min(n);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Squared norms of the user vectors.
    let user_sq: Vec<f64> = (0..matrix.n_users())
        .map(|u| matrix.user_scores(u).iter().map(|s| s * s).sum())
        .collect();

    // k-means++ seeding from user points.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut centroid_sq: Vec<f64> = Vec::with_capacity(k);
    let to_dense = |u: u32| -> Vec<f64> {
        let mut v = vec![0.0f64; m];
        for (i, s) in matrix.user_ratings(u) {
            v[i as usize] = s;
        }
        v
    };
    let dist_sq_to = |u: u32, c: &[f64], c_sq: f64| -> f64 {
        let mut dot = 0.0;
        for (i, s) in matrix.user_ratings(u) {
            dot += s * c[i as usize];
        }
        (user_sq[u as usize] - 2.0 * dot + c_sq).max(0.0)
    };

    let first = rng.gen_range(0..n) as u32;
    centroids.push(to_dense(first));
    centroid_sq.push(user_sq[first as usize]);
    let mut nearest: Vec<f64> = (0..n)
        .map(|u| dist_sq_to(u as u32, &centroids[0], centroid_sq[0]))
        .collect();
    #[allow(clippy::needless_range_loop)] // `u` is a user id fed to closures
    while centroids.len() < k {
        let total: f64 = nearest.iter().sum();
        let pick = if total <= 1e-12 {
            rng.gen_range(0..n) as u32
        } else {
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = (n - 1) as u32;
            for (u, &w) in nearest.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    chosen = u as u32;
                    break;
                }
            }
            chosen
        };
        let c = to_dense(pick);
        let c_sq = user_sq[pick as usize];
        for u in 0..n {
            let d = dist_sq_to(u as u32, &c, c_sq);
            if d < nearest[u] {
                nearest[u] = d;
            }
        }
        centroids.push(c);
        centroid_sq.push(c_sq);
    }

    let workers = resolve_threads(n_threads, n);
    let mut assignment = vec![0u32; n];
    let mut iterations = 0usize;
    for _ in 0..max_iter.max(1) {
        iterations += 1;
        // Assignment: every user's nearest centroid is a pure function of
        // the centroids, so the pass splits into disjoint user ranges —
        // workers write non-overlapping slices of `assignment` and the
        // result is identical to the sequential loop.
        let changed = if workers <= 1 {
            assign_range(&mut assignment, 0, &dist_sq_to, &centroids, &centroid_sq)
        } else {
            let ranges = gf_core::threads::even_ranges(n, workers);
            let mut changed = false;
            std::thread::scope(|scope| {
                let mut rest: &mut [u32] = &mut assignment;
                let mut handles = Vec::with_capacity(workers);
                for r in &ranges {
                    let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
                    rest = tail;
                    let (dist_sq_to, centroids, centroid_sq) =
                        (&dist_sq_to, &centroids, &centroid_sq);
                    let start = r.start;
                    handles.push(scope.spawn(move || {
                        assign_range(chunk, start, dist_sq_to, centroids, centroid_sq)
                    }));
                }
                for h in handles {
                    changed |= h.join().expect("assignment worker panicked");
                }
            });
            changed
        };
        if !changed && iterations > 1 {
            break;
        }
        // Update.
        let mut counts = vec![0usize; k];
        for centroid in &mut centroids {
            centroid.iter_mut().for_each(|v| *v = 0.0);
        }
        for u in 0..matrix.n_users() {
            let c = assignment[u as usize] as usize;
            counts[c] += 1;
            for (i, s) in matrix.user_ratings(u) {
                centroids[c][i as usize] += s;
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue; // keep the stale centroid; cluster may repopulate
            }
            let inv = 1.0 / counts[c] as f64;
            centroid.iter_mut().for_each(|v| *v *= inv);
        }
        for c in 0..k {
            centroid_sq[c] = centroids[c].iter().map(|v| v * v).sum();
        }
    }

    Clustering {
        n_clusters: k,
        assignment,
        iterations,
    }
}

/// Assigns each user in `chunk` (global ids `start..start + chunk.len()`)
/// to its nearest centroid; returns whether any assignment changed.
fn assign_range<F: Fn(u32, &[f64], f64) -> f64>(
    chunk: &mut [u32],
    start: usize,
    dist_sq_to: &F,
    centroids: &[Vec<f64>],
    centroid_sq: &[f64],
) -> bool {
    let mut changed = false;
    for (off, slot) in chunk.iter_mut().enumerate() {
        let u = (start + off) as u32;
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = dist_sq_to(u, centroid, centroid_sq[c]);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        if *slot != best as u32 {
            *slot = best as u32;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::RatingScale;
    use gf_datasets::SynthConfig;

    fn blocky() -> RatingMatrix {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|u| {
                if u < 5 {
                    vec![5.0, 5.0, 4.0, 1.0, 1.0, 1.0]
                } else {
                    vec![1.0, 1.0, 1.0, 5.0, 5.0, 4.0]
                }
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
    }

    #[test]
    fn separates_taste_blocks() {
        let m = blocky();
        let c = kmeans(&m, 2, 100, 1);
        for u in 1..5 {
            assert_eq!(c.assignment[u], c.assignment[0]);
        }
        for u in 6..10 {
            assert_eq!(c.assignment[u], c.assignment[5]);
        }
        assert_ne!(c.assignment[0], c.assignment[5]);
    }

    #[test]
    fn handles_sparse_input() {
        let d = SynthConfig::yahoo_music()
            .with_users(200)
            .with_items(100)
            .generate();
        let c = kmeans(&d.matrix, 10, 30, 2);
        assert_eq!(c.assignment.len(), 200);
        let groups = c.groups();
        assert!(!groups.is_empty() && groups.len() <= 10);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn deterministic_in_seed() {
        let m = blocky();
        assert_eq!(
            kmeans(&m, 2, 50, 9).assignment,
            kmeans(&m, 2, 50, 9).assignment
        );
    }

    #[test]
    fn k_one_trivial() {
        let m = blocky();
        let c = kmeans(&m, 1, 10, 3);
        assert!(c.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn k_capped_at_n() {
        let m = blocky();
        let c = kmeans(&m, 100, 10, 4);
        assert!(c.groups().len() <= 10);
    }

    #[test]
    fn threaded_matches_sequential() {
        let d = SynthConfig::yahoo_music()
            .with_users(150)
            .with_items(40)
            .generate();
        let sequential = kmeans(&d.matrix, 7, 25, 11);
        for threads in [2usize, 3, 7, 0] {
            let threaded = kmeans_threaded(&d.matrix, 7, 25, 11, threads);
            assert_eq!(sequential.assignment, threaded.assignment, "t={threads}");
            assert_eq!(sequential.iterations, threaded.iterations, "t={threads}");
        }
    }

    #[test]
    fn converges_before_cap_on_easy_data() {
        let m = blocky();
        let c = kmeans(&m, 2, 100, 5);
        assert!(c.iterations < 100);
    }
}
