//! # gf-baselines — semantics-agnostic baseline group formation
//!
//! The paper's baselines (`Baseline-LM`, `Baseline-AV`, Section 7,
//! adapted from Ntoutsi et al. \[22\]) form groups by *similarity clustering*
//! that ignores the group recommendation semantics:
//!
//! 1. measure the Kendall-Tau distance between every pair of users, over
//!    their rankings of **all** items (not just the top-`k`);
//! 2. cluster the users into `ℓ` groups (the paper says "K-means", capped
//!    at 100 iterations);
//! 3. only then compute each group's top-`k` list and satisfaction under
//!    LM or AV.
//!
//! Exact pairwise Kendall-Tau is Θ(n² · m log m) and infeasible at the
//! paper's 100,000-user scalability sizes, so two strategies are provided:
//!
//! * [`kmedoids`] over the exact Kendall-Tau [`distance::DistanceMatrix`] —
//!   used at quality-experiment sizes (hundreds of users), and
//! * [`kmeans`] — Lloyd's algorithm directly on the sparse rating vectors —
//!   used at scalability sizes.
//!
//! [`BaselineFormer`] wires either strategy behind the same
//! [`GroupFormer`](gf_core::GroupFormer) interface as the greedy
//! algorithms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod distance;
pub mod kendall;
pub mod kmeans;
pub mod kmedoids;
pub mod pipeline;
pub mod random;

pub use distance::DistanceMatrix;
pub use pipeline::{BaselineFormer, ClusterStrategy};
pub use random::RandomFormer;
