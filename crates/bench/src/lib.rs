//! # gf-bench — shared harness for the per-figure benchmark binaries
//!
//! Every table and figure of the paper's evaluation (Section 7) has a
//! dedicated bench target (see `benches/`). This library holds the shared
//! plumbing: scaled experiment sizes, dataset preparation mirroring the
//! paper's pre-processing, and algorithm line-ups.
//!
//! ## Scale
//!
//! The paper's full sizes (200,000 users, 136,736 items, …) make a complete
//! `cargo bench` run take a long while. The `GF_BENCH_SCALE` environment
//! variable selects the regime:
//!
//! * `quick` (default) — shapes preserved, sizes divided so the whole suite
//!   finishes in a few minutes;
//! * `paper` — the sizes from the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use gf_baselines::{BaselineFormer, ClusterStrategy};
use gf_core::{FormationConfig, GroupFormer, MissingPolicy, PrefIndex, RatingMatrix};
use gf_datasets::{sample, SynthConfig};
use gf_eval::experiment::{run_timed, RunRecord};
use gf_exact::{LocalSearch, LocalSearchConfig};
use gf_recsys::{complete_matrix_threaded, BiasModel};

/// Benchmark scale regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes (default) — same shapes, minutes not hours.
    Quick,
    /// The paper's sizes.
    Paper,
}

impl Scale {
    /// Reads `GF_BENCH_SCALE` (`quick` | `paper`).
    pub fn from_env() -> Scale {
        match std::env::var("GF_BENCH_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Divides a paper-scale quantity under `Quick`.
    pub fn shrink(self, paper_value: usize, divisor: usize) -> usize {
        match self {
            Scale::Paper => paper_value,
            Scale::Quick => (paper_value / divisor).max(1),
        }
    }
}

/// A prepared experimental instance.
pub struct Instance {
    /// Display name.
    pub name: String,
    /// The rating matrix the algorithms run on.
    pub matrix: RatingMatrix,
    /// Preference index built on that matrix.
    pub prefs: PrefIndex,
}

/// Prepares a *quality-experiment* slice, mirroring the paper's setup: a
/// synthetic corpus shaped like `preset`, sliced to `n_users x n_items`
/// (random users × densest items) and completed with predicted ratings
/// (bias model, quantized to whole stars) — the "user provided or system
/// predicted" preference matrix of Section 2.1.
pub fn quality_instance(
    preset: SynthConfig,
    n_users: usize,
    n_items: usize,
    seed: u64,
) -> Instance {
    // Generate a corpus comfortably larger than the slice.
    let corpus = preset
        .with_users((n_users as u32) * 3)
        .with_items((n_items as u32) * 3)
        .with_seed(seed)
        .generate();
    let slice = sample::experimental_slice(&corpus.matrix, n_users, n_items, seed ^ 0x51)
        .expect("slice within corpus bounds");
    let bias = BiasModel::fit(&slice, 25.0);
    // Auto-threaded completion: bit-for-bit identical to sequential.
    let full = complete_matrix_threaded(&slice, &bias, Some(1.0), 0).expect("completion");
    let prefs = PrefIndex::build(&full);
    Instance {
        name: format!("{}-{}x{}", corpus.name, n_users, n_items),
        matrix: full,
        prefs,
    }
}

/// Prepares a *scalability* instance: the sparse corpus itself, no
/// completion (missing ratings handled by `MissingPolicy::Min`), as at
/// 100k+ users a dense matrix would not fit in memory — see DESIGN.md.
pub fn scalability_instance(
    preset: SynthConfig,
    n_users: u32,
    n_items: u32,
    seed: u64,
) -> Instance {
    let corpus = preset
        .with_items(n_items)
        .with_users(n_users)
        .with_seed(seed)
        .generate();
    let prefs = PrefIndex::build(&corpus.matrix);
    Instance {
        name: format!("{}-{}x{}", corpus.name, n_users, n_items),
        matrix: corpus.matrix,
        prefs,
    }
}

/// The GRD greedy algorithm for a config.
pub fn grd() -> Box<dyn GroupFormer> {
    Box::new(gf_core::GreedyFormer::new())
}

/// The sharded/parallel greedy: partitions the population into one shard
/// per worker thread (resolved from `FormationConfig::n_threads`, `0` =
/// auto) and runs a full GRD per shard concurrently. This is the path that
/// makes the `GF_BENCH_SCALE=paper` fig4/fig6 sweeps CI-friendly.
pub fn grd_sharded() -> Box<dyn GroupFormer> {
    Box::new(gf_core::ShardedFormer::new())
}

/// The paper's clustering baseline, with an iteration cap suitable for
/// benches (the paper's own cap is 100; quality sizes converge well before).
pub fn baseline(max_iter: usize) -> Box<dyn GroupFormer> {
    Box::new(BaselineFormer::new().with_max_iter(max_iter))
}

/// The scalable k-means-only baseline (used in the scalability figures).
pub fn baseline_kmeans(max_iter: usize) -> Box<dyn GroupFormer> {
    Box::new(
        BaselineFormer::new()
            .with_strategy(ClusterStrategy::RatingKMeans)
            .with_max_iter(max_iter),
    )
}

/// The `OPT~` local-search proxy (swaps enabled only for small n, where the
/// O(n²) swap pass stays cheap).
pub fn opt_proxy(n_users: u32) -> Box<dyn GroupFormer> {
    Box::new(LocalSearch::with_config(LocalSearchConfig {
        max_rounds: 12,
        allow_swaps: n_users <= 400,
    }))
}

/// Runs one algorithm, panicking on configuration errors (bench inputs are
/// static and correct by construction).
pub fn run(
    former: &dyn GroupFormer,
    inst: &Instance,
    cfg: &FormationConfig,
    repeats: usize,
) -> RunRecord {
    run_timed(former, &inst.matrix, &inst.prefs, cfg, repeats).expect("bench run")
}

/// The default quality-experiment parameters of Section 7.1:
/// 200 users, 100 items, 10 groups, k = 5.
pub struct QualityDefaults {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Group budget ℓ.
    pub ell: usize,
    /// Recommended list length.
    pub k: usize,
    /// Repeat count for timing (the paper averages 3 runs).
    pub repeats: usize,
}

impl QualityDefaults {
    /// Section 7.1 defaults (identical in both scale regimes — they are
    /// already small).
    pub fn get() -> Self {
        QualityDefaults {
            n_users: 200,
            n_items: 100,
            ell: 10,
            k: 5,
            repeats: 3,
        }
    }
}

/// The default scalability parameters of Section 7.2: 100,000 users,
/// 10,000 items, 10 groups, k = 5 (divided by 10 under `Quick`).
pub struct ScalabilityDefaults {
    /// Number of users.
    pub n_users: u32,
    /// Number of items.
    pub n_items: u32,
    /// Group budget ℓ.
    pub ell: usize,
    /// Recommended list length.
    pub k: usize,
    /// Baseline k-means iteration cap.
    pub kmeans_iters: usize,
}

impl ScalabilityDefaults {
    /// Section 7.2 defaults under the given scale.
    pub fn get(scale: Scale) -> Self {
        ScalabilityDefaults {
            n_users: scale.shrink(100_000, 10) as u32,
            n_items: scale.shrink(10_000, 10) as u32,
            ell: 10,
            k: 5,
            kmeans_iters: 10,
        }
    }
}

/// Missing-rating policy used across the benches.
pub fn bench_policy() -> MissingPolicy {
    MissingPolicy::Min
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, Semantics};

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // (Does not set the variable; other tests must not either.)
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.shrink(1000, 10), 100);
        assert_eq!(Scale::Paper.shrink(1000, 10), 1000);
        assert_eq!(Scale::Quick.shrink(5, 10), 1);
    }

    #[test]
    fn quality_instance_is_dense_and_shaped() {
        let inst = quality_instance(SynthConfig::yahoo_music(), 60, 30, 1);
        assert_eq!(inst.matrix.n_users(), 60);
        assert_eq!(inst.matrix.n_items(), 30);
        assert_eq!(inst.matrix.density(), 1.0);
    }

    #[test]
    fn scalability_instance_stays_sparse() {
        let inst = scalability_instance(SynthConfig::yahoo_music(), 300, 400, 2);
        assert!(inst.matrix.density() < 0.5);
        assert_eq!(inst.matrix.n_users(), 300);
    }

    #[test]
    fn lineup_runs_end_to_end() {
        let inst = quality_instance(SynthConfig::yahoo_music(), 50, 25, 3);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Max, 3, 5);
        for former in [grd(), baseline(20), opt_proxy(50)] {
            let rec = run(former.as_ref(), &inst, &cfg, 1);
            assert!(rec.objective > 0.0, "{}", rec.algo);
        }
    }

    #[test]
    fn sharded_lineup_runs_end_to_end() {
        let inst = scalability_instance(SynthConfig::yahoo_music(), 200, 60, 4);
        let cfg =
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 8).with_threads(0);
        let rec = run(grd_sharded().as_ref(), &inst, &cfg, 1);
        assert!(rec.objective > 0.0, "{}", rec.algo);
    }
}
