//! Persistent-connection sweep over the event-driven transport: a real
//! [`gf_serve::Server`] on a loopback socket, swept at 100 → 1k → 10k
//! keep-alive connections of interleaved `/v1/rate` + `/v1/group` +
//! `/v1/stats` traffic via [`gf_serve::loadgen`] — the same harness the
//! `tests/load.rs` sweeps and the `conn_sweep` example use.
//!
//! The sweep points do their own wall-clock timing (one pass per point;
//! percentile math lives in the harness) and print the
//! `conns=… p50=…us p99=…us rps=…` lines EXPERIMENTS.md quotes; a small
//! criterion-tracked `request_latency_1conn` bench rides along so the
//! per-PR guard sees a stable socket-latency series.
//!
//! Scale: the top sweep point is 10k connections at `GF_BENCH_SCALE=paper`
//! and 400 at `quick`, always clamped to the process fd budget.

use criterion::{criterion_group, criterion_main, Criterion};
use gf_bench::Scale;
use gf_core::{Aggregation, FormationConfig, Semantics};
use gf_datasets::SynthConfig;
use gf_serve::loadgen::{fd_budget, run_sweep, SweepConfig};
use gf_serve::{ServeConfig, ServeState, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const N_USERS: u32 = 500;
const N_ITEMS: u32 = 60;

fn start_server() -> ServerHandle {
    let corpus = SynthConfig::yahoo_music()
        .with_users(N_USERS)
        .with_items(N_ITEMS)
        .generate();
    let state = ServeState::new(
        corpus.matrix,
        ServeConfig::new(
            FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10).with_threads(0),
        )
        .with_batch_window(Duration::from_millis(1)),
    )
    .expect("initial formation");
    // Default transport: epoll on Linux — the path the sweep targets.
    Server::bind("127.0.0.1:0", state)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn conn_sweep_benches(c: &mut Criterion) {
    let scale = Scale::from_env();
    let server = start_server();

    // The sweep proper: self-timed (one pass per point is the
    // measurement — holding 10k sockets open is the workload, and
    // repeating it per criterion sample would dwarf the run budget).
    let budget = fd_budget().saturating_sub(256);
    let top = scale.shrink(10_000, 25);
    for (conns, reqs) in [(top / 100, 20), (top / 10, 10), (top, 3)] {
        let conns = conns.clamp(8, budget);
        let report = run_sweep(
            server.addr(),
            &SweepConfig {
                connections: conns,
                requests_per_conn: reqs,
                threads: 0,
                users: N_USERS,
                items: N_ITEMS,
            },
        )
        .expect("sweep point");
        assert_eq!(report.errors, 0, "sweep saw bad statuses");
        println!("conn-sweep: {}", report.summary());
    }

    // Criterion-tracked single-connection request latency, for the
    // regression guard: one keep-alive socket, lockstep GET /v1/health.
    let mut g = c.benchmark_group(format!("conn-sweep-{N_USERS}x{N_ITEMS}"));
    g.sample_size(12);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut buf = [0u8; 4096];
    g.bench_function("request_latency_1conn", |b| {
        b.iter(|| {
            stream
                .write_all(b"GET /v1/health HTTP/1.1\r\n\r\n")
                .expect("write");
            // Health bodies are tiny: one read gets the whole response.
            let n = stream.read(&mut buf).expect("read");
            assert!(n > 0, "server closed the bench connection");
        })
    });
    g.finish();
    drop(stream);
    server.stop();
}

criterion_group!(benches, conn_sweep_benches);
criterion_main!(benches);
