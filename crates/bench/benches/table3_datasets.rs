//! Table 3 — dataset descriptions.
//!
//! Paper values: Yahoo! Music 200,000 users × 136,736 items; MovieLens
//! 71,567 users × 10,681 items. We regenerate the table from the synthetic
//! stand-ins (full shapes under `GF_BENCH_SCALE=paper`, reduced under the
//! default `quick`).

use gf_bench::Scale;
use gf_datasets::{DatasetStats, SynthConfig};
use gf_eval::Table;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new(
        "Table 3: dataset descriptions (paper: Yahoo! 200000x136736, MovieLens 71567x10681)",
        &[
            "dataset",
            "# users",
            "# items",
            "# ratings",
            "density",
            "min r/user",
        ],
    );
    let presets = [
        (
            SynthConfig::yahoo_music()
                .with_users(scale.shrink(200_000, 40) as u32)
                .with_items(scale.shrink(136_736, 40) as u32),
            "yahoo-music-synth",
        ),
        (
            SynthConfig::movielens()
                .with_users(scale.shrink(71_567, 40) as u32)
                .with_items(scale.shrink(10_681, 40) as u32),
            "movielens-synth",
        ),
        (SynthConfig::flickr_poi(), "flickr-poi-synth"),
    ];
    for (preset, name) in presets {
        let data = preset.generate();
        let stats = DatasetStats::compute(name, &data.matrix);
        table.push_row(vec![
            name.to_string(),
            stats.n_users.to_string(),
            stats.n_items.to_string(),
            stats.n_ratings.to_string(),
            format!("{:.5}", stats.density),
            stats.min_ratings_per_user.to_string(),
        ]);
    }
    println!("{table}");
    println!("(scale regime: {scale:?}; set GF_BENCH_SCALE=paper for full sizes)");
}
