//! Cold vs incremental background refresh at serving scale.
//!
//! The serving layer's background pass can re-form the whole population
//! (`RefreshMode::Cold`) or patch only the dirty users' buckets through
//! the standing `IncrementalFormer` (`RefreshMode::Incremental`). This
//! bench drives both through the real `ServeState` machinery — journal
//! drain, batched matrix/pref patching, re-formation, snapshot install —
//! with 64-update batches, plus the raw core-level former refresh, so
//! EXPERIMENTS.md can record the cold-vs-incremental ratio per PR.
//!
//! * `refresh_64_cold` — one bounded pass, full re-formation.
//! * `refresh_64_incremental` — one bounded pass through the standing
//!   former (steady state; the one-off former init is priced separately).
//! * `refresh_64_admissions` — the same bounded pass where all 64 updates
//!   **admit never-seen users** (`GrowthPolicy::Grow`): what a population
//!   onboarding wave costs vs the same-size dirty-only batch above.
//! * `former_init` — building the standing former from scratch (what the
//!   first incremental pass after a cold one pays).
//! * `former_refresh_64` — the core-level refresh alone: bucket moves +
//!   capped reselection + tail maintenance, no serve-layer overhead.
//!
//! Sizes follow `serve_throughput`: 50k users x 5k items at
//! `GF_BENCH_SCALE=paper`, 2k x 200 at `quick`.

use criterion::{criterion_group, criterion_main, Criterion};
use gf_bench::Scale;
use gf_core::{
    Aggregation, FormationConfig, GrowthPolicy, IncrementalFormer, PrefIndex, RatingDelta,
    RefreshMode, Semantics,
};
use gf_datasets::SynthConfig;
use gf_serve::{ServeConfig, ServeState};
use std::sync::Arc;
use std::time::Duration;

const BATCH: u32 = 64;

fn serve_state(
    matrix: &gf_core::RatingMatrix,
    formation: FormationConfig,
    refresh: RefreshMode,
) -> Arc<ServeState> {
    ServeState::new(
        matrix.clone(),
        ServeConfig::new(formation.with_refresh(refresh))
            .with_batch_window(Duration::from_millis(2)),
    )
    .expect("initial formation")
}

fn incremental_refresh_benches(c: &mut Criterion) {
    let scale = Scale::from_env();
    let n_users = scale.shrink(50_000, 25) as u32;
    let n_items = scale.shrink(5_000, 25) as u32;
    let corpus = SynthConfig::yahoo_music()
        .with_users(n_users)
        .with_items(n_items)
        .generate();
    let formation =
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10).with_threads(0);

    let mut g = c.benchmark_group(format!("incremental-refresh-{n_users}x{n_items}"));
    g.sample_size(10);

    // A deterministic update stream shared by all variants.
    let mut cursor = 0u32;
    let mut next_update = move || {
        cursor = cursor.wrapping_add(7919);
        (
            cursor % n_users,
            cursor % n_items,
            1.0 + (cursor % 5) as f64,
        )
    };

    for (name, mode) in [
        ("refresh_64_cold", RefreshMode::Cold),
        ("refresh_64_incremental", RefreshMode::Incremental),
    ] {
        let state = serve_state(&corpus.matrix, formation, mode);
        // Prime: the incremental state's former initializes on the first
        // pass, outside the measured region.
        let (u, i, s) = next_update();
        state.rate(u, i, s).unwrap();
        state.flush().unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    let (u, i, s) = next_update();
                    state.rate(u, i, s).unwrap();
                }
                state.flush().unwrap();
            })
        });
    }

    // Admission batches: every update in the pass names a never-seen
    // user (on an existing item), so the refresh pays bucket admission +
    // tail splicing for the whole batch — the population-growth analogue
    // of `refresh_64_incremental` for EXPERIMENTS.md to compare.
    {
        let state = serve_state(
            &corpus.matrix,
            formation.with_growth(GrowthPolicy::unbounded()),
            RefreshMode::Incremental,
        );
        let (u, i, s) = next_update();
        state.rate(u, i, s).unwrap();
        state.flush().unwrap();
        let mut next_user = n_users;
        g.bench_function("refresh_64_admissions", |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    let (_, i, s) = next_update();
                    state.rate(next_user, i, s).unwrap();
                    next_user += 1;
                }
                state.flush().unwrap();
            })
        });
    }

    // Core-level numbers, free of serve-layer clones and locking.
    let mut matrix = corpus.matrix.clone();
    let mut prefs = PrefIndex::build(&matrix);
    g.bench_function("former_init", |b| {
        b.iter(|| IncrementalFormer::new(&matrix, &prefs, formation).expect("init"))
    });
    let mut former = IncrementalFormer::new(&matrix, &prefs, formation).expect("init");
    g.bench_function("former_refresh_64", |b| {
        b.iter(|| {
            let updates: Vec<(u32, u32, f64)> = (0..BATCH).map(|_| next_update()).collect();
            let outcomes = matrix.upsert_batch(&updates).unwrap();
            let users: Vec<u32> = updates.iter().map(|&(u, _, _)| u).collect();
            prefs.patch_users(&matrix, &users);
            let deltas: Vec<RatingDelta> = updates
                .iter()
                .zip(outcomes)
                .map(|(&(u, i, s), o)| RatingDelta::from_upsert(u, i, s, o))
                .collect();
            former.refresh(&matrix, &prefs, &deltas).expect("refresh");
        })
    });

    g.finish();
}

criterion_group!(benches, incremental_refresh_benches);
criterion_main!(benches);
