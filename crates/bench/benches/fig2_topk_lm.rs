//! Figure 2(a, b) — objective value vs top-k under LM on the Yahoo!-shaped
//! data (defaults 200 users, 100 items, 10 groups), k ∈ {5, 10, 15, 20, 25}.
//!
//! 2(a) uses Min aggregation — the objective *decreases* with k (the bottom
//! item only gets worse); 2(b) uses Sum — the objective *increases* with k
//! (more items accrue), with a flattening rate of increase.

use gf_bench::{baseline, grd, opt_proxy, quality_instance, run, QualityDefaults};
use gf_core::{Aggregation, FormationConfig, Semantics};
use gf_datasets::SynthConfig;
use gf_eval::table::fmt_f;
use gf_eval::Table;

fn main() {
    let d = QualityDefaults::get();
    let inst = quality_instance(SynthConfig::yahoo_music(), d.n_users, d.n_items, 21);
    for (agg, label, shape) in [
        (
            Aggregation::Min,
            "Fig 2(a): Min-aggregation",
            "decreases with k",
        ),
        (
            Aggregation::Sum,
            "Fig 2(b): Sum-aggregation",
            "increases with k",
        ),
    ] {
        let mut table = Table::new(
            &format!("{label} — objective vs top-k (LM, Yahoo!, 200x100, 10 groups)"),
            &["k", "GRD-LM", "Baseline-LM", "OPT~-LM"],
        );
        for k in [5usize, 10, 15, 20, 25] {
            let cfg = FormationConfig::new(Semantics::LeastMisery, agg, k, d.ell);
            let g = run(grd().as_ref(), &inst, &cfg, 1);
            let b = run(baseline(50).as_ref(), &inst, &cfg, 1);
            let o = run(opt_proxy(inst.matrix.n_users()).as_ref(), &inst, &cfg, 1);
            table.push_row(vec![
                k.to_string(),
                fmt_f(g.objective),
                fmt_f(b.objective),
                fmt_f(o.objective),
            ]);
        }
        println!("{table}");
        println!("paper shape: objective {shape}; GRD ~= OPT~ > Baseline.\n");
    }
}
