//! Figure 4(a–c) — running time of group formation under LM
//! (Min-aggregation) on the Yahoo!-shaped corpus, varying # users
//! {1k … 200k}, # items {10k … 100k} and # groups {10 … 10k}.
//! Defaults: 100,000 users, 10,000 items, 10 groups, k = 5
//! (÷10 under the default `GF_BENCH_SCALE=quick`).
//!
//! Paper shape: GRD-LM-MIN is linear in users and groups, insensitive to
//! items, and always far below the clustering baseline, which grows
//! super-linearly in users and is sensitive to items.
//!
//! Beyond the paper: the `SHARD-GRD` column runs the same greedy per
//! user-shard on all cores ([`gf_core::ShardedFormer`], auto thread count),
//! which is what lets the `GF_BENCH_SCALE=paper` sweep complete in
//! CI-friendly time; the plain GRD column itself uses threaded Step-1
//! bucket building (`n_threads = 0` = auto).

use gf_bench::{
    baseline_kmeans, grd, grd_sharded, run, scalability_instance, ScalabilityDefaults, Scale,
};
use gf_core::{Aggregation, FormationConfig, Semantics};
use gf_datasets::SynthConfig;
use gf_eval::table::fmt_duration;
use gf_eval::Table;

/// The baseline's centroid storage is ℓ×m floats; skip hopeless points.
fn baseline_feasible(ell: usize, m: u32) -> bool {
    (ell as u64) * (m as u64) <= 50_000_000
}

fn main() {
    let scale = Scale::from_env();
    let d = ScalabilityDefaults::get(scale);
    let cfg0 =
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, d.k, d.ell).with_threads(0);

    // Figure 4(a): vary # users.
    let mut table = Table::new(
        &format!(
            "Fig 4(a): run time vs # users (LM-Min, items={}, groups=10, k=5, scale {scale:?})",
            d.n_items
        ),
        &[
            "# users",
            "GRD-LM-MIN",
            "SHARD-GRD-LM-MIN",
            "Baseline-LM-MIN",
        ],
    );
    for n in [1_000u32, 10_000, 100_000, 200_000] {
        let n = scale.shrink(n as usize, 10) as u32;
        let inst = scalability_instance(SynthConfig::yahoo_music(), n, d.n_items, 51);
        let g = run(grd().as_ref(), &inst, &cfg0, 1);
        let s = run(grd_sharded().as_ref(), &inst, &cfg0, 1);
        let b = run(baseline_kmeans(d.kmeans_iters).as_ref(), &inst, &cfg0, 1);
        table.push_row(vec![
            n.to_string(),
            fmt_duration(g.elapsed),
            fmt_duration(s.elapsed),
            fmt_duration(b.elapsed),
        ]);
    }
    println!("{table}");

    // Figure 4(b): vary # items.
    let mut table = Table::new(
        &format!(
            "Fig 4(b): run time vs # items (LM-Min, users={}, groups=10, k=5)",
            d.n_users
        ),
        &[
            "# items",
            "GRD-LM-MIN",
            "SHARD-GRD-LM-MIN",
            "Baseline-LM-MIN",
        ],
    );
    for m in [10_000u32, 25_000, 50_000, 100_000] {
        let m = scale.shrink(m as usize, 10) as u32;
        let inst = scalability_instance(SynthConfig::yahoo_music(), d.n_users, m, 52);
        let g = run(grd().as_ref(), &inst, &cfg0, 1);
        let s = run(grd_sharded().as_ref(), &inst, &cfg0, 1);
        let b = run(baseline_kmeans(d.kmeans_iters).as_ref(), &inst, &cfg0, 1);
        table.push_row(vec![
            m.to_string(),
            fmt_duration(g.elapsed),
            fmt_duration(s.elapsed),
            fmt_duration(b.elapsed),
        ]);
    }
    println!("{table}");

    // Figure 4(c): vary # groups.
    let inst = scalability_instance(SynthConfig::yahoo_music(), d.n_users, d.n_items, 53);
    let mut table = Table::new(
        &format!(
            "Fig 4(c): run time vs # groups (LM-Min, users={}, items={}, k=5)",
            d.n_users, d.n_items
        ),
        &[
            "# groups",
            "GRD-LM-MIN",
            "SHARD-GRD-LM-MIN",
            "Baseline-LM-MIN",
        ],
    );
    for ell in [10usize, 100, 1_000, 10_000] {
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, d.k, ell)
            .with_threads(0);
        let g = run(grd().as_ref(), &inst, &cfg, 1);
        let s = run(grd_sharded().as_ref(), &inst, &cfg, 1);
        let b = if baseline_feasible(ell, inst.matrix.n_items()) {
            fmt_duration(run(baseline_kmeans(d.kmeans_iters).as_ref(), &inst, &cfg, 1).elapsed)
        } else {
            "(skipped: centroids too large)".to_string()
        };
        table.push_row(vec![
            ell.to_string(),
            fmt_duration(g.elapsed),
            fmt_duration(s.elapsed),
            b,
        ]);
    }
    println!("{table}");
    println!("paper shape: GRD linear in users/groups, flat in items; baseline dominates it.");
}
