//! Figure 1(a–c) — objective value under LM / Max-aggregation on the
//! Yahoo!-shaped data, varying # users, # items and # groups (one at a
//! time; defaults 200 users, 100 items, 10 groups, k = 5).
//!
//! Series: `GRD-LM-MAX`, `Baseline-LM-MAX`, `OPT~-LM-MAX` (local-search
//! proxy for the paper's CPLEX optimum — see DESIGN.md).
//!
//! Paper shape to reproduce: GRD tracks OPT closely and beats the baseline
//! throughout; the objective *decreases* with more users, *increases* with
//! more items and with more groups.

use gf_bench::{baseline, grd, opt_proxy, quality_instance, run, QualityDefaults};
use gf_core::{Aggregation, FormationConfig, Semantics};
use gf_datasets::SynthConfig;
use gf_eval::table::fmt_f;
use gf_eval::Table;

fn sweep(title: &str, xs: &[usize], make: impl Fn(usize) -> (gf_bench::Instance, FormationConfig)) {
    let mut table = Table::new(
        title,
        &["x", "GRD-LM-MAX", "Baseline-LM-MAX", "OPT~-LM-MAX"],
    );
    for &x in xs {
        let (inst, cfg) = make(x);
        let g = run(grd().as_ref(), &inst, &cfg, 1);
        let b = run(baseline(50).as_ref(), &inst, &cfg, 1);
        let o = run(opt_proxy(inst.matrix.n_users()).as_ref(), &inst, &cfg, 1);
        table.push_row(vec![
            x.to_string(),
            fmt_f(g.objective),
            fmt_f(b.objective),
            fmt_f(o.objective),
        ]);
    }
    println!("{table}");
}

fn main() {
    let d = QualityDefaults::get();
    let cfg0 = FormationConfig::new(Semantics::LeastMisery, Aggregation::Max, d.k, d.ell);

    // Figure 1(a): vary # users.
    sweep(
        "Fig 1(a): objective vs # users (items=100, groups=10, k=5, LM-Max, Yahoo!)",
        &[200, 400, 600, 800, 1000],
        |n| {
            (
                quality_instance(SynthConfig::yahoo_music(), n, d.n_items, 11),
                cfg0,
            )
        },
    );

    // Figure 1(b): vary # items.
    sweep(
        "Fig 1(b): objective vs # items (users=200, groups=10, k=5, LM-Max, Yahoo!)",
        &[100, 200, 300, 400, 500],
        |m| {
            (
                quality_instance(SynthConfig::yahoo_music(), d.n_users, m, 12),
                cfg0,
            )
        },
    );

    // Figure 1(c): vary # groups.
    sweep(
        "Fig 1(c): objective vs # groups (users=200, items=100, k=5, LM-Max, Yahoo!)",
        &[10, 15, 20, 25, 30],
        |ell| {
            (
                quality_instance(SynthConfig::yahoo_music(), d.n_users, d.n_items, 13),
                FormationConfig::new(Semantics::LeastMisery, Aggregation::Max, d.k, ell),
            )
        },
    );
    println!("paper shape: objective falls with users, rises with items and groups;");
    println!("GRD ~= OPT~ > Baseline on every point.");
}
