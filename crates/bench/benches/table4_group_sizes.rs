//! Table 4 — distribution of group sizes (five-number summary averaged
//! over 3 sampled runs): 200 users, 100 items, ℓ = 10, k = 5, for
//! GRD-{LM,AV}-{MAX,SUM} on both dataset shapes.
//!
//! Paper shape: groups are balanced overall; AV groups are larger/more
//! uniform than LM (coarser hash keys), and `-MAX` keys produce more
//! uniform groups than `-SUM` keys (which also match all k scores).

use gf_bench::{grd, run, QualityDefaults};
use gf_core::{Aggregation, FormationConfig, PrefIndex, Semantics};
use gf_datasets::{sample, SynthConfig};
use gf_eval::{FiveNumber, Table};

fn main() {
    let d = QualityDefaults::get();
    let mut table = Table::new(
        "Table 4: distribution of average group size (3 runs, 200x100, l=10, k=5)",
        &["semantics", "algo", "min", "Q1", "median", "Q3", "max"],
    );
    for sem in [Semantics::LeastMisery, Semantics::AggregateVoting] {
        for agg in [Aggregation::Max, Aggregation::Sum] {
            let mut summaries = Vec::new();
            for run_ix in 0..3u64 {
                // Fresh random 200-user sample per run, as in the paper.
                // A tightly clustered population (the paper's corpus after
                // CF completion had strong taste clusters): hash keys must
                // actually collide for the size distribution to be
                // meaningful.
                let corpus = SynthConfig::yahoo_music()
                    .with_users(600)
                    .with_items(300)
                    .with_user_noise(0.05)
                    .with_seed(40 + run_ix)
                    .generate();
                let slice =
                    sample::experimental_slice(&corpus.matrix, d.n_users, d.n_items, 40 + run_ix)
                        .expect("slice");
                let prefs = PrefIndex::build(&slice);
                let inst = gf_bench::Instance {
                    name: "table4".into(),
                    matrix: slice,
                    prefs,
                };
                let cfg = FormationConfig::new(sem, agg, d.k, d.ell);
                let rec = run(grd().as_ref(), &inst, &cfg, 1);
                let sizes: Vec<f64> = rec.group_sizes.iter().map(|&s| s as f64).collect();
                summaries.push(FiveNumber::compute(&sizes).expect("non-empty grouping"));
            }
            let avg = FiveNumber::average(&summaries).unwrap();
            table.push_row(vec![
                sem.tag().to_string(),
                format!("GRD-{}-{}", sem.tag(), agg.tag()),
                format!("{:.2}", avg.min),
                format!("{:.2}", avg.q1),
                format!("{:.2}", avg.median),
                format!("{:.2}", avg.q3),
                format!("{:.2}", avg.max),
            ]);
        }
    }
    println!("{table}");
    println!(
        "paper reference (LM): MAX 11.33/15.75/18.5/23.58/31.33, SUM 8.33/11.5/13.66/19.33/39.33"
    );
    println!(
        "paper reference (AV): MAX 20.33/22.4/25.4/28.66/30.33, SUM 14.33/19.35/22.5/25.95/33.75"
    );
    println!("shape: AV sizes larger and tighter than LM; MAX tighter than SUM.");
}
