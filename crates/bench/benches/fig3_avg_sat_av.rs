//! Figure 3(a–d) — average group satisfaction over the recommended top-k
//! itemset under AV / Min-aggregation on the MovieLens-shaped data, varying
//! # users, # items, # groups and k (defaults 200 users, 100 items, 10
//! groups, k = 5).
//!
//! Paper shape: with k = 5 on a 1–5 scale the per-group score is bounded by
//! 25 and GRD-AV-MIN stays close to that bound, beating the baseline; the
//! metric falls with users, rises with items/groups, and grows with k
//! (aggregating over more items).

use gf_bench::{baseline, bench_policy, grd, opt_proxy, quality_instance, run, QualityDefaults};
use gf_core::{avg_group_satisfaction, Aggregation, FormationConfig, GroupFormer, Semantics};
use gf_datasets::SynthConfig;
use gf_eval::table::fmt_f;
use gf_eval::Table;

fn avg_sat(former: &dyn GroupFormer, inst: &gf_bench::Instance, cfg: &FormationConfig) -> f64 {
    let result = former
        .form(&inst.matrix, &inst.prefs, cfg)
        .expect("bench run");
    avg_group_satisfaction(
        &inst.matrix,
        &result.grouping,
        cfg.semantics,
        bench_policy(),
        cfg.k,
    )
}

fn sweep(title: &str, xs: &[usize], make: impl Fn(usize) -> (gf_bench::Instance, FormationConfig)) {
    let mut table = Table::new(
        title,
        &["x", "GRD-AV-MIN", "Baseline-AV-MIN", "OPT~-AV-MIN"],
    );
    for &x in xs {
        let (inst, cfg) = make(x);
        table.push_row(vec![
            x.to_string(),
            fmt_f(avg_sat(grd().as_ref(), &inst, &cfg)),
            fmt_f(avg_sat(baseline(50).as_ref(), &inst, &cfg)),
            fmt_f(avg_sat(
                opt_proxy(inst.matrix.n_users()).as_ref(),
                &inst,
                &cfg,
            )),
        ]);
    }
    println!("{table}");
}

fn main() {
    let d = QualityDefaults::get();
    let cfg0 = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, d.k, d.ell);
    let _ = run(
        grd().as_ref(),
        &quality_instance(SynthConfig::movielens(), 50, 25, 30),
        &cfg0,
        1,
    );

    sweep(
        "Fig 3(a): avg satisfaction vs # users (MovieLens, AV-Min, items=100, groups=10, k=5)",
        &[200, 400, 600, 800, 1000],
        |n| {
            (
                quality_instance(SynthConfig::movielens(), n, d.n_items, 31),
                cfg0,
            )
        },
    );
    sweep(
        "Fig 3(b): avg satisfaction vs # items (MovieLens, AV-Min, users=200, groups=10, k=5)",
        &[100, 200, 300, 400, 500],
        |m| {
            (
                quality_instance(SynthConfig::movielens(), d.n_users, m, 32),
                cfg0,
            )
        },
    );
    sweep(
        "Fig 3(c): avg satisfaction vs # groups (MovieLens, AV-Min, users=200, items=100, k=5)",
        &[10, 15, 20, 25, 30],
        |ell| {
            (
                quality_instance(SynthConfig::movielens(), d.n_users, d.n_items, 33),
                FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, d.k, ell),
            )
        },
    );
    sweep(
        "Fig 3(d): avg satisfaction vs top-k (MovieLens, AV-Min, users=200, items=100, groups=10)",
        &[5, 10, 15, 20, 25],
        |k| {
            (
                quality_instance(SynthConfig::movielens(), d.n_users, d.n_items, 34),
                FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, k, d.ell),
            )
        },
    );
    println!("paper shape: values near the k*5 bound; GRD > Baseline on every point;");
    println!("falls with users, rises with items, groups and k.");
}
