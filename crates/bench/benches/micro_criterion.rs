//! Criterion micro-benchmarks backing the complexity claims of Sections
//! 4.3 and 5.1: GRD formation is O(n·k + ℓ·log n) after the preference
//! index build, Kendall-Tau is O(m log m), group top-k is linear in the
//! members' ratings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gf_baselines::kendall::kendall_tau;
use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, GroupRecommender, PrefIndex, Semantics,
};
use gf_datasets::SynthConfig;

fn bench_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("grd_formation");
    group.sample_size(10);
    for n in [1_000u32, 4_000] {
        let data = SynthConfig::yahoo_music()
            .with_users(n)
            .with_items(1_000)
            .generate();
        let prefs = PrefIndex::build(&data.matrix);
        for (label, sem) in [
            ("GRD-LM-MIN", Semantics::LeastMisery),
            ("GRD-AV-MIN", Semantics::AggregateVoting),
        ] {
            let cfg = FormationConfig::new(sem, Aggregation::Min, 5, 10);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    GreedyFormer::new()
                        .form(&data.matrix, &prefs, &cfg)
                        .unwrap()
                        .objective
                })
            });
        }
    }
    group.finish();
}

fn bench_pref_index(c: &mut Criterion) {
    let data = SynthConfig::yahoo_music()
        .with_users(4_000)
        .with_items(1_000)
        .generate();
    c.bench_function("pref_index_build_4k_users", |b| {
        b.iter(|| PrefIndex::build(&data.matrix).n_users())
    });
}

fn bench_group_topk(c: &mut Criterion) {
    let data = SynthConfig::yahoo_music()
        .with_users(500)
        .with_items(2_000)
        .generate();
    let members: Vec<u32> = (0..500).collect();
    let mut group = c.benchmark_group("group_top_k_500_members");
    for sem in [Semantics::LeastMisery, Semantics::AggregateVoting] {
        let rec = GroupRecommender::new(&data.matrix, sem);
        group.bench_function(sem.tag(), |b| b.iter(|| rec.top_k(&members, 5).len()));
    }
    group.finish();
}

fn bench_kendall(c: &mut Criterion) {
    let mut group = c.benchmark_group("kendall_tau");
    for m in [1_000usize, 10_000] {
        let a: Vec<u32> = (0..m as u32).collect();
        let mut b_rank: Vec<u32> = (0..m as u32).rev().collect();
        // Perturb so it is not the pure worst case.
        b_rank.swap(0, m / 2);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| kendall_tau(&a, &b_rank))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_formation,
    bench_pref_index,
    bench_group_topk,
    bench_kendall
);
criterion_main!(benches);
