//! Ablation: what belongs in the Step-1 hash key?
//!
//! Section 4 argues `GRD-LM` must key on the *full top-k item sequence
//! plus rating(s)* — not on the bottom item alone (Example 3), and not on
//! the sequence alone (scores matter under LM). Section 5 argues AV should
//! key on the sequence only. This ablation quantifies both choices by
//! forming groups with each keying and evaluating all of them under the
//! *same* LM objective:
//!
//! * `sequence+score` — the paper's LM keys (via GRD-LM);
//! * `sequence-only`  — the AV keys (via GRD-AV), rescored under LM;
//! * `budget-splitting` — our surplus-splitting extension on top of GRD-LM.

use gf_bench::{bench_policy, quality_instance, QualityDefaults};
use gf_core::{
    recompute_objective, Aggregation, FormationConfig, GreedyFormer, GroupFormer, Semantics,
};
use gf_datasets::SynthConfig;
use gf_eval::table::fmt_f;
use gf_eval::Table;

fn main() {
    let d = QualityDefaults::get();
    let inst = quality_instance(SynthConfig::yahoo_music(), d.n_users, d.n_items, 81);
    let mut table = Table::new(
        "Ablation: hash-key design, evaluated under the LM objective (200x100, l=10)",
        &[
            "aggregation",
            "sequence+score (GRD-LM)",
            "sequence-only (AV keys)",
            "GRD-LM + splitting",
        ],
    );
    for agg in [Aggregation::Min, Aggregation::Max, Aggregation::Sum] {
        let lm_cfg = FormationConfig::new(Semantics::LeastMisery, agg, d.k, d.ell);
        let av_cfg = FormationConfig::new(Semantics::AggregateVoting, agg, d.k, d.ell);

        let lm = GreedyFormer::new()
            .form(&inst.matrix, &inst.prefs, &lm_cfg)
            .unwrap();
        // Form with AV's coarser keys, then score the same grouping under LM.
        let av_formed = GreedyFormer::new()
            .form(&inst.matrix, &inst.prefs, &av_cfg)
            .unwrap();
        let av_rescored = recompute_objective(
            &inst.matrix,
            &av_formed.grouping,
            Semantics::LeastMisery,
            agg,
            bench_policy(),
            d.k,
        );
        let split = GreedyFormer::new()
            .with_surplus_splitting(true)
            .form(&inst.matrix, &inst.prefs, &lm_cfg)
            .unwrap();

        table.push_row(vec![
            agg.to_string(),
            fmt_f(lm.objective),
            fmt_f(av_rescored),
            fmt_f(split.objective),
        ]);
    }
    println!("{table}");
    println!("expected: sequence+score >= sequence-only under LM (scores belong in LM keys);");
    println!("splitting only helps when Step 1 yields fewer buckets than the budget.");

    // Second panel: bucket counts, the Section-5 observation.
    let mut table = Table::new(
        "Ablation: intermediate-group (hash key) counts, LM vs AV keys",
        &["aggregation", "LM keys", "AV keys"],
    );
    for agg in [Aggregation::Min, Aggregation::Max, Aggregation::Sum] {
        let lm_cfg = FormationConfig::new(Semantics::LeastMisery, agg, d.k, d.ell);
        let av_cfg = FormationConfig::new(Semantics::AggregateVoting, agg, d.k, d.ell);
        let lm = GreedyFormer::new()
            .form(&inst.matrix, &inst.prefs, &lm_cfg)
            .unwrap();
        let av = GreedyFormer::new()
            .form(&inst.matrix, &inst.prefs, &av_cfg)
            .unwrap();
        table.push_row(vec![
            agg.to_string(),
            lm.n_buckets.to_string(),
            av.n_buckets.to_string(),
        ]);
    }
    println!("{table}");
    println!("expected: AV keys never produce more buckets than LM keys (Section 5).");

    // Third panel: on tie-dense data (binary-ish ratings, many duplicate
    // profiles) the key designs genuinely diverge — completed star-rating
    // slices rarely separate them because users sharing a top-k sequence
    // usually share the quantized scores too.
    let m = gf_datasets::adversarial::tie_dense(200, 8, 17);
    let prefs = gf_core::PrefIndex::build(&m);
    let mut table = Table::new(
        "Ablation (tie-dense 200x8): LM objective and bucket counts per key design",
        &[
            "aggregation",
            "GRD-LM obj",
            "AV-keys obj",
            "LM buckets",
            "AV buckets",
        ],
    );
    for agg in [Aggregation::Min, Aggregation::Sum] {
        let lm_cfg = FormationConfig::new(Semantics::LeastMisery, agg, 3, d.ell);
        let av_cfg = FormationConfig::new(Semantics::AggregateVoting, agg, 3, d.ell);
        let lm = GreedyFormer::new().form(&m, &prefs, &lm_cfg).unwrap();
        let av_formed = GreedyFormer::new().form(&m, &prefs, &av_cfg).unwrap();
        let av_rescored = recompute_objective(
            &m,
            &av_formed.grouping,
            Semantics::LeastMisery,
            agg,
            bench_policy(),
            3,
        );
        table.push_row(vec![
            agg.to_string(),
            fmt_f(lm.objective),
            fmt_f(av_rescored),
            lm.n_buckets.to_string(),
            av_formed.n_buckets.to_string(),
        ]);
    }
    println!("{table}");
    println!("expected: LM keys strictly out-bucket AV keys and win the LM objective here.");
}
