//! Figure 7(a–c) — the AMT user study, simulated (see
//! `gf_eval::userstudy` for the substitution notes).
//!
//! Paper values to compare against: 7(a) ≈ 80% of evaluators prefer
//! GRD-LM-MIN (83.3% for SUM); 7(b)/7(c) GRD beats the baseline on average
//! satisfaction for every sample, with the largest margin on *dissimilar*
//! users.

use gf_eval::{Table, UserStudy, UserStudyConfig};

fn main() {
    let study = UserStudy::new(UserStudyConfig::default());
    let out = study.run();

    let mut votes = Table::new(
        "Fig 7(a): % of evaluators preferring each method (paper: 80/20 MIN, 83.3/16.7 SUM)",
        &["aggregation", "GRD-LM %", "Baseline-LM %"],
    );
    for v in &out.votes {
        votes.push_row(vec![
            v.aggregation.to_string(),
            format!("{:.1}", v.grd_pct),
            format!("{:.1}", v.baseline_pct),
        ]);
    }
    println!("{votes}");

    for (agg, fig) in [("MIN", "Fig 7(b)"), ("SUM", "Fig 7(c)")] {
        let mut table = Table::new(
            &format!("{fig}: average satisfaction ± stderr (GRD-LM-{agg} vs Baseline-LM-{agg})"),
            &["sample", "GRD mean", "GRD ±", "Baseline mean", "Baseline ±"],
        );
        for h in out.hits.iter().filter(|h| h.aggregation.tag() == agg) {
            table.push_row(vec![
                h.kind.label().to_string(),
                format!("{:.2}", h.grd_mean),
                format!("{:.2}", h.grd_stderr),
                format!("{:.2}", h.baseline_mean),
                format!("{:.2}", h.baseline_stderr),
            ]);
        }
        println!("{table}");
    }
    println!("paper shape: GRD preferred ~4:1; GRD mean > baseline mean everywhere,");
    println!("largest gap on dissimilar users, smallest on similar users.");
}
