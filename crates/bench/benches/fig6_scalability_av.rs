//! Figure 6(a–c) — running time of group formation under AV
//! (Min-aggregation), varying # users, # items and # groups; the AV
//! counterpart of Figure 4.
//!
//! Paper shape: same trends as LM with a slightly higher constant for GRD
//! (AV aggregates the satisfaction of every member), and a baseline that is
//! insensitive to the semantics (clustering ignores them).
//!
//! As in Figure 4, the `SHARD-GRD` column is the parallel sharded path
//! ([`gf_core::ShardedFormer`]) that keeps the `GF_BENCH_SCALE=paper`
//! sweep CI-friendly, and the plain GRD column uses auto-threaded Step-1
//! bucket building.

use gf_bench::{
    baseline_kmeans, grd, grd_sharded, run, scalability_instance, ScalabilityDefaults, Scale,
};
use gf_core::{Aggregation, FormationConfig, Semantics};
use gf_datasets::SynthConfig;
use gf_eval::table::fmt_duration;
use gf_eval::Table;

fn baseline_feasible(ell: usize, m: u32) -> bool {
    (ell as u64) * (m as u64) <= 50_000_000
}

fn main() {
    let scale = Scale::from_env();
    let d = ScalabilityDefaults::get(scale);
    let cfg0 = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, d.k, d.ell)
        .with_threads(0);

    let mut table = Table::new(
        &format!(
            "Fig 6(a): run time vs # users (AV-Min, items={}, groups=10, k=5, scale {scale:?})",
            d.n_items
        ),
        &[
            "# users",
            "GRD-AV-MIN",
            "SHARD-GRD-AV-MIN",
            "Baseline-AV-MIN",
        ],
    );
    for n in [1_000u32, 10_000, 100_000, 200_000] {
        let n = scale.shrink(n as usize, 10) as u32;
        let inst = scalability_instance(SynthConfig::yahoo_music(), n, d.n_items, 71);
        let g = run(grd().as_ref(), &inst, &cfg0, 1);
        let s = run(grd_sharded().as_ref(), &inst, &cfg0, 1);
        let b = run(baseline_kmeans(d.kmeans_iters).as_ref(), &inst, &cfg0, 1);
        table.push_row(vec![
            n.to_string(),
            fmt_duration(g.elapsed),
            fmt_duration(s.elapsed),
            fmt_duration(b.elapsed),
        ]);
    }
    println!("{table}");

    let mut table = Table::new(
        &format!(
            "Fig 6(b): run time vs # items (AV-Min, users={}, groups=10, k=5)",
            d.n_users
        ),
        &[
            "# items",
            "GRD-AV-MIN",
            "SHARD-GRD-AV-MIN",
            "Baseline-AV-MIN",
        ],
    );
    for m in [10_000u32, 25_000, 50_000, 100_000] {
        let m = scale.shrink(m as usize, 10) as u32;
        let inst = scalability_instance(SynthConfig::yahoo_music(), d.n_users, m, 72);
        let g = run(grd().as_ref(), &inst, &cfg0, 1);
        let s = run(grd_sharded().as_ref(), &inst, &cfg0, 1);
        let b = run(baseline_kmeans(d.kmeans_iters).as_ref(), &inst, &cfg0, 1);
        table.push_row(vec![
            m.to_string(),
            fmt_duration(g.elapsed),
            fmt_duration(s.elapsed),
            fmt_duration(b.elapsed),
        ]);
    }
    println!("{table}");

    let inst = scalability_instance(SynthConfig::yahoo_music(), d.n_users, d.n_items, 73);
    let mut table = Table::new(
        &format!(
            "Fig 6(c): run time vs # groups (AV-Min, users={}, items={}, k=5)",
            d.n_users, d.n_items
        ),
        &[
            "# groups",
            "GRD-AV-MIN",
            "SHARD-GRD-AV-MIN",
            "Baseline-AV-MIN",
        ],
    );
    for ell in [10usize, 100, 1_000, 10_000] {
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, d.k, ell)
            .with_threads(0);
        let g = run(grd().as_ref(), &inst, &cfg, 1);
        let s = run(grd_sharded().as_ref(), &inst, &cfg, 1);
        let b = if baseline_feasible(ell, inst.matrix.n_items()) {
            fmt_duration(run(baseline_kmeans(d.kmeans_iters).as_ref(), &inst, &cfg, 1).elapsed)
        } else {
            "(skipped: centroids too large)".to_string()
        };
        table.push_row(vec![
            ell.to_string(),
            fmt_duration(g.elapsed),
            fmt_duration(s.elapsed),
            b,
        ]);
    }
    println!("{table}");
    println!("paper shape: like Fig 4 with a higher GRD constant under AV.");
}
