//! Background-refresh cost vs grouping-registry size.
//!
//! A multi-grouping server rebuilds the matrix and preference index
//! **once** per pass and then fans the same delta batch out to every
//! named grouping's standing former. This bench pins how that fan-out
//! scales: the same 64-update batch driven through the real `ServeState`
//! machinery with 1, 2 and 4 registered groupings of *different*
//! aggregation semantics (least-misery, average, consensus,
//! leader-weighted), so EXPERIMENTS.md can record the marginal cost of
//! each extra grouping per PR.
//!
//! * `refresh_64_x1` — the registry is just `default` (LM/min); the
//!   baseline `incremental_refresh::refresh_64_incremental` shape.
//! * `refresh_64_x2` — + `av` (AV/sum).
//! * `refresh_64_x4` — + `cons` (consensus λ=0.5/min) and `ldr`
//!   (leader-weighted/max): the crash-harness registry plus one.
//! * `register_grouping` — `form_named` of one extra grouping on a
//!   standing state: what a live `POST /grouping` pays at scale (a full
//!   formation; the matrix/prefs are shared, never copied).
//!
//! Sizes follow `incremental_refresh`: 50k users x 5k items at
//! `GF_BENCH_SCALE=paper`, 2k x 200 at `quick`.

use criterion::{criterion_group, criterion_main, Criterion};
use gf_bench::Scale;
use gf_core::{Aggregation, FormationConfig, RefreshMode, Semantics};
use gf_datasets::SynthConfig;
use gf_serve::{ServeConfig, ServeState};
use std::sync::Arc;
use std::time::Duration;

const BATCH: u32 = 64;

/// The registry the sweep grows through, in registration order.
fn extra_groupings(base: FormationConfig) -> [(&'static str, FormationConfig); 3] {
    let mut av = base;
    av.semantics = Semantics::AggregateVoting;
    av.aggregation = Aggregation::Sum;
    let mut cons = base;
    cons.semantics = Semantics::Consensus { lambda: 0.5 };
    let mut ldr = base;
    ldr.semantics = Semantics::LeaderWeighted;
    ldr.aggregation = Aggregation::Max;
    [("av", av), ("cons", cons), ("ldr", ldr)]
}

fn multi_grouping_refresh_benches(c: &mut Criterion) {
    let scale = Scale::from_env();
    let n_users = scale.shrink(50_000, 25) as u32;
    let n_items = scale.shrink(5_000, 25) as u32;
    let corpus = SynthConfig::yahoo_music()
        .with_users(n_users)
        .with_items(n_items)
        .generate();
    let base = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10)
        .with_threads(0)
        .with_refresh(RefreshMode::Incremental);

    let mut g = c.benchmark_group(format!("multi-grouping-refresh-{n_users}x{n_items}"));
    g.sample_size(10);

    // A deterministic update stream shared by all registry sizes.
    let mut cursor = 0u32;
    let mut next_update = move || {
        cursor = cursor.wrapping_add(7919);
        (
            cursor % n_users,
            cursor % n_items,
            1.0 + (cursor % 5) as f64,
        )
    };

    let extras = extra_groupings(base);
    for registry_size in [1usize, 2, 4] {
        let mut cfg = ServeConfig::new(base).with_batch_window(Duration::from_millis(2));
        for (name, fc) in extras.iter().take(registry_size - 1) {
            cfg = cfg.with_grouping(*name, *fc);
        }
        let state = ServeState::new(corpus.matrix.clone(), cfg).expect("initial formation");
        // Prime: every grouping's standing former initializes on the
        // first pass, outside the measured region.
        let (u, i, s) = next_update();
        state.rate(u, i, s).unwrap();
        state.flush().unwrap();
        g.bench_function(format!("refresh_64_x{registry_size}"), |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    let (u, i, s) = next_update();
                    state.rate(u, i, s).unwrap();
                }
                state.flush().unwrap();
            })
        });
    }

    // What a live `POST /grouping` costs: one full formation of a new
    // named grouping over the standing (shared) matrix + prefs.
    {
        let state: Arc<ServeState> = ServeState::new(
            corpus.matrix.clone(),
            ServeConfig::new(base).with_batch_window(Duration::ZERO),
        )
        .expect("initial formation");
        let (_, register) = extras[0];
        g.bench_function("register_grouping", |b| {
            b.iter(|| state.form_named("extra", register).expect("form_named"))
        });
    }

    g.finish();
}

criterion_group!(benches, multi_grouping_refresh_benches);
criterion_main!(benches);
