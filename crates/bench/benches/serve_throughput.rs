//! Serve-layer throughput — the operations `gf-serve` performs per
//! request, measured in-process so the numbers capture the serving
//! machinery (snapshot reads, journal writes, incremental passes, batched
//! formation) rather than socket overhead.
//!
//! * `group_lookup` / `recommend` — the lock-free read path under a
//!   current snapshot (`GET /group/{u}`, `GET /recommend/{g}`).
//! * `rate_enqueue` — accepting one `POST /rate` into the journal
//!   (validation + journal push, no re-formation).
//! * `refresh_pass_64` — one bounded background pass applying 64 pending
//!   updates: incremental matrix/pref patching plus the re-formation.
//! * `cold_rebuild` — what the same refresh would cost without the
//!   incremental path (full `PrefIndex::build` + formation), for the
//!   ratio the serving layer exists to win.
//! * `form_coalesced_8` — eight concurrent same-config `/form` requests
//!   answered by one batched formation run.

use criterion::{criterion_group, criterion_main, Criterion};
use gf_bench::Scale;
use gf_core::{Aggregation, FormationConfig, GroupFormer, PrefIndex, Semantics, ShardedFormer};
use gf_datasets::SynthConfig;
use gf_serve::http::route;
use gf_serve::{HttpRequest, ServeConfig, ServeState};
use std::sync::Arc;
use std::time::Duration;

fn get(state: &ServeState, path: String) -> u16 {
    route(
        state,
        &HttpRequest {
            method: "GET".into(),
            path,
            query: String::new(),
            body: String::new(),
            keep_alive: true,
        },
    )
    .0
}

fn serve_benches(c: &mut Criterion) {
    let scale = Scale::from_env();
    let n_users = scale.shrink(50_000, 25) as u32;
    let n_items = scale.shrink(5_000, 25) as u32;
    let corpus = SynthConfig::yahoo_music()
        .with_users(n_users)
        .with_items(n_items)
        .generate();
    let formation =
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10).with_threads(0);
    let make_state = || {
        ServeState::new(
            corpus.matrix.clone(),
            ServeConfig::new(formation).with_batch_window(Duration::from_millis(2)),
        )
        .expect("initial formation")
    };

    let mut g = c.benchmark_group(format!("serve-{n_users}x{n_items}"));
    g.sample_size(12);

    let state = make_state();
    let mut u = 0u32;
    g.bench_function("group_lookup", |b| {
        b.iter(|| {
            u = (u + 7919) % n_users;
            assert_eq!(get(&state, format!("/group/{u}")), 200);
        })
    });
    let groups = state.snapshot().default_grouping().formation.grouping.len();
    let mut gi = 0usize;
    g.bench_function("recommend", |b| {
        b.iter(|| {
            gi = (gi + 3) % groups;
            assert_eq!(get(&state, format!("/recommend/{gi}")), 200);
        })
    });

    let mut i = 0u32;
    g.bench_function("rate_enqueue", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            state
                .rate(i % n_users, i % n_items, 1.0 + (i % 5) as f64)
                .unwrap();
        })
    });
    state.flush().unwrap();

    g.bench_function("refresh_pass_64", |b| {
        b.iter(|| {
            for j in 0..64u32 {
                i = i.wrapping_add(j | 1);
                state
                    .rate(i % n_users, i % n_items, 1.0 + (i % 5) as f64)
                    .unwrap();
            }
            state.flush().unwrap();
        })
    });

    let snapshot = state.snapshot();
    g.bench_function("cold_rebuild", |b| {
        b.iter(|| {
            let prefs = PrefIndex::build(&snapshot.matrix);
            ShardedFormer::new()
                .form(&snapshot.matrix, &prefs, &formation)
                .unwrap()
        })
    });

    g.bench_function("form_coalesced_8", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || state.form(formation).unwrap())
                })
                .collect();
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(outcomes.iter().filter(|o| o.leader).count() <= 8);
        })
    });

    g.finish();
}

criterion_group!(benches, serve_benches);
criterion_main!(benches);
