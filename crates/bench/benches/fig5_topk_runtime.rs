//! Figure 5(a–d) — running time vs top-k, k ∈ {5, 25, 125, 625}, for
//! GRD-LM-MIN, GRD-LM-SUM, GRD-AV-MIN and GRD-AV-SUM against their
//! baselines (Yahoo!-shaped corpus; scalability defaults).
//!
//! Paper shape: neither GRD nor the baseline is very sensitive to k (only
//! the final group's top-k extraction depends on it), and GRD stays well
//! below the baseline throughout.

use gf_bench::{baseline_kmeans, grd, run, scalability_instance, ScalabilityDefaults, Scale};
use gf_core::{Aggregation, FormationConfig, Semantics};
use gf_datasets::SynthConfig;
use gf_eval::table::fmt_duration;
use gf_eval::Table;

fn main() {
    let scale = Scale::from_env();
    let d = ScalabilityDefaults::get(scale);
    let inst = scalability_instance(SynthConfig::yahoo_music(), d.n_users, d.n_items, 61);
    let panels = [
        ("Fig 5(a)", Semantics::LeastMisery, Aggregation::Min),
        ("Fig 5(b)", Semantics::LeastMisery, Aggregation::Sum),
        ("Fig 5(c)", Semantics::AggregateVoting, Aggregation::Min),
        ("Fig 5(d)", Semantics::AggregateVoting, Aggregation::Sum),
    ];
    for (fig, sem, agg) in panels {
        let grd_name = format!("GRD-{}-{}", sem.tag(), agg.tag());
        let base_name = format!("Baseline-{}-{}", sem.tag(), agg.tag());
        let mut table = Table::new(
            &format!(
                "{fig}: run time vs top-k ({} users, {} items, 10 groups)",
                d.n_users, d.n_items
            ),
            &["k", &grd_name, &base_name],
        );
        for k in [5usize, 25, 125, 625] {
            let cfg = FormationConfig::new(sem, agg, k, d.ell);
            let g = run(grd().as_ref(), &inst, &cfg, 1);
            let b = run(baseline_kmeans(d.kmeans_iters).as_ref(), &inst, &cfg, 1);
            table.push_row(vec![
                k.to_string(),
                fmt_duration(g.elapsed),
                fmt_duration(b.elapsed),
            ]);
        }
        println!("{table}");
    }
    println!("paper shape: mild growth in k for all algorithms; GRD << Baseline.");
}
