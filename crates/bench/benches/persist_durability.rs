//! Durability-layer costs: checkpoint encode/write, checkpoint load, and
//! WAL append under both sync modes, plus the replay-side scan rate.
//!
//! These price the three knobs `docs/OPERATIONS.md` asks operators to
//! trade off:
//!
//! * `checkpoint_write` — freeze-and-persist one full serving snapshot
//!   (encode + fsync + atomic rename); bounds how cheap a short
//!   `--checkpoint-interval-ms` can be.
//! * `checkpoint_load` — decode + verify the newest checkpoint; the fixed
//!   part of every warm restart.
//! * `wal_append_always` / `wal_append_interval` — the per-`/rate` tax of
//!   `--wal-sync always` (fsync before ack) vs `interval` (buffered).
//! * `wal_scan_4096` — decode + CRC-check 4096 journal records; the
//!   variable part of a warm restart (replay applies on top of this).
//!
//! Sizes follow `incremental_refresh`: 50k users x 5k items at
//! `GF_BENCH_SCALE=paper`, 2k x 200 at `quick`. Group keys are distinct
//! from the `bench_guard.sh` hot-path keys on purpose.

use criterion::{criterion_group, criterion_main, Criterion};
use gf_bench::Scale;
use gf_core::{Aggregation, FormationConfig, Semantics};
use gf_datasets::SynthConfig;
use gf_persist::checkpoint::{self, CheckpointGrouping, CheckpointState};
use gf_persist::wal::{self, SyncMode, Wal};
use gf_serve::{ServeConfig, ServeState};
use std::path::PathBuf;
use std::time::Duration;

const SCAN_RECORDS: u64 = 4096;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gf-bench-persist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn persist_durability_benches(c: &mut Criterion) {
    let scale = Scale::from_env();
    let n_users = scale.shrink(50_000, 25) as u32;
    let n_items = scale.shrink(5_000, 25) as u32;
    let corpus = SynthConfig::yahoo_music()
        .with_users(n_users)
        .with_items(n_items)
        .generate();
    let formation =
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 5, 10).with_threads(0);
    // A real serving snapshot supplies the formation + prefs a live
    // checkpoint would carry.
    let state = ServeState::new(
        corpus.matrix.clone(),
        ServeConfig::new(formation).with_batch_window(Duration::ZERO),
    )
    .expect("initial formation");
    let snap = state.snapshot();
    let default = snap.default_grouping();
    let ck = CheckpointState {
        snapshot_version: snap.version,
        wal_seq: 0,
        applied: 0,
        users_admitted: 0,
        items_admitted: 0,
        matrix: corpus.matrix.clone(),
        prefs: (*snap.prefs).clone(),
        groupings: vec![CheckpointGrouping {
            name: "default".to_string(),
            version: default.version,
            config: default.config,
            formation: default.formation.clone(),
            former: None,
        }],
        feedback: gf_core::OnlineEval::default(),
    };

    let mut g = c.benchmark_group(format!("persist-durability-{n_users}x{n_items}"));
    g.sample_size(10);

    let ck_dir = tmpdir("checkpoint");
    g.bench_function("checkpoint_write", |b| {
        b.iter(|| checkpoint::write(&ck_dir, &ck).expect("write checkpoint"))
    });
    g.bench_function("checkpoint_load", |b| {
        b.iter(|| {
            checkpoint::load_latest(&ck_dir)
                .expect("load")
                .loaded
                .expect("checkpoint present")
        })
    });

    let mut cursor = 0u32;
    let mut next_update = move || {
        cursor = cursor.wrapping_add(7919);
        (
            cursor % n_users,
            cursor % n_items,
            1.0 + (cursor % 5) as f64,
        )
    };

    for (name, sync) in [
        ("wal_append_always", SyncMode::Always),
        (
            "wal_append_interval",
            SyncMode::Interval(Duration::from_millis(50)),
        ),
    ] {
        let dir = tmpdir(name);
        let (mut w, _) = Wal::open(&dir, sync).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| w.append(&[next_update()]).expect("append"))
        });
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let scan_dir = tmpdir("scan");
    let (mut w, _) = Wal::open(&scan_dir, SyncMode::Interval(Duration::from_secs(1))).unwrap();
    for _ in 0..SCAN_RECORDS {
        w.append(&[next_update()]).unwrap();
    }
    w.sync().unwrap();
    drop(w);
    g.bench_function(format!("wal_scan_{SCAN_RECORDS}"), |b| {
        b.iter(|| {
            let scanned = wal::scan(&scan_dir).expect("scan");
            assert_eq!(scanned.records.len() as u64, SCAN_RECORDS);
            scanned
        })
    });
    let _ = std::fs::remove_dir_all(&scan_dir);
    let _ = std::fs::remove_dir_all(&ck_dir);

    g.finish();
}

criterion_group!(benches, persist_durability_benches);
criterion_main!(benches);
