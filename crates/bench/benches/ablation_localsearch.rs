//! Ablation: how much optimality gap does local search close, at what cost?
//!
//! On instances small enough for the exact DP we can measure the true gap:
//! `GRD ≤ GRD+LS ≤ OPT`. This justifies using `OPT~` (local search) as the
//! optimum proxy at the paper's 200-user calibration scale, and measures
//! the value of swap moves over relocate-only search.

use gf_bench::quality_instance;
use gf_core::{Aggregation, FormationConfig, GreedyFormer, GroupFormer, Semantics};
use gf_datasets::SynthConfig;
use gf_eval::table::{fmt_duration, fmt_f};
use gf_eval::Table;
use gf_exact::{LocalSearch, LocalSearchConfig, PartitionDp};
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Ablation: greedy vs local search vs exact DP (14 users, 20 items, l=4, k=3)",
        &["algo", "objective", "gap to OPT", "time"],
    );
    let inst = quality_instance(SynthConfig::yahoo_music(), 14, 20, 91);
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 4);

    let timed = |former: &dyn GroupFormer| {
        let start = Instant::now();
        let r = former.form(&inst.matrix, &inst.prefs, &cfg).unwrap();
        (r.objective, start.elapsed())
    };

    let (opt_obj, opt_time) = timed(&PartitionDp::new());
    let runs: Vec<(&str, f64, std::time::Duration)> = vec![
        {
            let (o, t) = timed(&GreedyFormer::new());
            ("GRD-LM-MIN", o, t)
        },
        {
            let ls = LocalSearch::with_config(LocalSearchConfig {
                max_rounds: 12,
                allow_swaps: false,
            });
            let (o, t) = timed(&ls);
            ("GRD + LS (relocate only)", o, t)
        },
        {
            let (o, t) = timed(&LocalSearch::new());
            ("GRD + LS (relocate + swap)", o, t)
        },
    ];
    for (name, obj, time) in runs {
        table.push_row(vec![
            name.to_string(),
            fmt_f(obj),
            fmt_f(opt_obj - obj),
            fmt_duration(time),
        ]);
    }
    table.push_row(vec![
        "OPT (partition DP)".to_string(),
        fmt_f(opt_obj),
        "0".to_string(),
        fmt_duration(opt_time),
    ]);
    println!("{table}");

    // Gap closure across many random small instances.
    let mut closed = 0usize;
    let mut total = 0usize;
    let mut grd_gap_sum = 0.0;
    let mut ls_gap_sum = 0.0;
    for seed in 0..20u64 {
        let inst = quality_instance(SynthConfig::yahoo_music(), 10, 12, 100 + seed);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        let opt = PartitionDp::new()
            .form(&inst.matrix, &inst.prefs, &cfg)
            .unwrap()
            .objective;
        let grd = GreedyFormer::new()
            .form(&inst.matrix, &inst.prefs, &cfg)
            .unwrap()
            .objective;
        let ls = LocalSearch::new()
            .form(&inst.matrix, &inst.prefs, &cfg)
            .unwrap()
            .objective;
        grd_gap_sum += opt - grd;
        ls_gap_sum += opt - ls;
        total += 1;
        if (opt - ls).abs() < 1e-9 {
            closed += 1;
        }
    }
    println!(
        "over {total} random 10-user instances: mean GRD gap {:.3}, mean LS gap {:.3}, \
         LS matched OPT on {closed}/{total}",
        grd_gap_sum / total as f64,
        ls_gap_sum / total as f64
    );
}
