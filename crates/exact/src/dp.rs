//! Exact set-partition dynamic programming.
//!
//! `f[j][S]` = the best objective achievable by partitioning the user set
//! `S` into at most `j` non-empty groups. Transition: peel off the block
//! containing the lowest-indexed user of `S` (canonical, so each partition
//! is considered once):
//!
//! `f[j][S] = max over blocks B ⊆ S with low(S) ∈ B of score(B) + f[j-1][S \ B]`
//!
//! Time O(ℓ·3ⁿ + 2ⁿ·cost(score)), memory O(ℓ·2ⁿ) — the reference optimum
//! for n ≲ 16 users, which covers the paper's calibration range in spirit
//! (their CPLEX runs topped out at 200 users only with multi-minute runtimes;
//! see DESIGN.md for the substitution notes).

use crate::scorer::MaskScorer;
use gf_core::{
    FormationConfig, FormationResult, GfError, GroupFormer, Grouping, PrefIndex, RatingMatrix,
    Result,
};

/// Exact optimal group formation by subset DP.
#[derive(Debug, Clone, Copy)]
pub struct PartitionDp {
    /// Hard cap on users; the DP refuses larger instances rather than
    /// consuming exponential memory. Default 16.
    pub max_users: u32,
}

impl Default for PartitionDp {
    fn default() -> Self {
        PartitionDp { max_users: 16 }
    }
}

impl PartitionDp {
    /// A DP solver with the default 16-user cap.
    pub fn new() -> Self {
        Self::default()
    }
}

impl GroupFormer for PartitionDp {
    fn name(&self, cfg: &FormationConfig) -> String {
        format!("OPT-{}-{}", cfg.semantics.tag(), cfg.aggregation.tag())
    }

    fn form(
        &self,
        matrix: &RatingMatrix,
        _prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult> {
        cfg.validate(matrix)?;
        let n = matrix.n_users() as usize;
        if n > self.max_users as usize || n > 24 {
            return Err(GfError::InvalidGrouping(format!(
                "PartitionDp handles at most {} users; got {n} (use BranchAndBound or \
                 LocalSearch for larger instances)",
                self.max_users.min(24)
            )));
        }
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let size = 1usize << n;
        let mut scorer = MaskScorer::new(matrix, cfg);

        // Score every non-empty subset once.
        let mut score = vec![0.0f64; size];
        for (mask, slot) in score.iter_mut().enumerate().skip(1) {
            *slot = scorer.score(mask as u64);
        }

        let ell_cap = cfg.ell.min(n);
        // f[mask] for the current j; choice[j][mask] = block peeled at (j, mask).
        let mut prev = vec![f64::NEG_INFINITY; size]; // j = 1
        prev[0] = 0.0;
        for (mask, slot) in prev.iter_mut().enumerate().skip(1) {
            *slot = score[mask];
        }
        let mut choices: Vec<Vec<u64>> = Vec::with_capacity(ell_cap);
        choices.push((0..size).map(|m| m as u64).collect()); // j=1: whole set is the block

        for _j in 2..=ell_cap {
            let mut cur = vec![f64::NEG_INFINITY; size];
            cur[0] = 0.0;
            let mut choice = vec![0u64; size];
            for mask in 1..size {
                let mask_u = mask as u64;
                let low = mask_u & mask_u.wrapping_neg(); // lowest set bit
                                                          // Enumerate submasks of `rest` and attach `low` to each.
                let rest = mask_u & !low;
                let mut best = score[mask]; // block = whole set
                let mut best_block = mask_u;
                let mut sub = rest;
                loop {
                    // block = low | sub, remainder = mask \ block
                    let block = low | sub;
                    let rem = mask_u & !block;
                    if rem != 0 {
                        let cand = score[block as usize] + prev[rem as usize];
                        if cand > best {
                            best = cand;
                            best_block = block;
                        }
                    }
                    if sub == 0 {
                        break;
                    }
                    sub = (sub - 1) & rest;
                }
                cur[mask] = best;
                choice[mask] = best_block;
            }
            choices.push(choice);
            prev = cur;
        }

        // Backtrack from (ell_cap, full).
        let mut groups = Vec::new();
        let mut mask = full;
        let mut j = ell_cap;
        while mask != 0 {
            let block = if j >= 1 {
                choices[j - 1][mask as usize]
            } else {
                mask
            };
            groups.push(scorer.group(block));
            mask &= !block;
            j = j.saturating_sub(1);
        }
        // Highest-satisfaction groups first, for stable presentation.
        groups.sort_by(|a, b| {
            b.satisfaction
                .total_cmp(&a.satisfaction)
                .then(a.members.cmp(&b.members))
        });
        let grouping = Grouping::new(groups);
        debug_assert!(grouping.validate(matrix.n_users(), cfg.ell).is_ok());
        let objective = grouping.objective();
        Ok(FormationResult {
            grouping,
            objective,
            n_buckets: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::brute_force;
    use gf_core::{Aggregation, RatingScale, Semantics};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn reproduces_paper_optima() {
        let (m, p) = example1();
        // k=1 LM-Min, ℓ=3: OPT = 12.
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 12.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(21);
        for trial in 0..30 {
            let n = rng.gen_range(2..7u32);
            let m = rng.gen_range(2..5u32);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(1..=5) as f64).collect())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let mat = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
            let prefs = PrefIndex::build(&mat);
            let sem = if trial % 2 == 0 {
                Semantics::LeastMisery
            } else {
                Semantics::AggregateVoting
            };
            let agg = Aggregation::paper_set()[trial % 3];
            let k = 1 + trial % 2;
            let ell = 1 + trial % 4;
            let cfg = FormationConfig::new(sem, agg, k, ell);
            let dp = PartitionDp::new().form(&mat, &prefs, &cfg).unwrap();
            let bf = brute_force(&mat, &prefs, &cfg).unwrap();
            assert!(
                (dp.objective - bf.objective).abs() < 1e-9,
                "trial {trial} ({sem} {agg} k={k} ell={ell}): DP {} vs BF {}",
                dp.objective,
                bf.objective
            );
            dp.grouping.validate(n, ell).unwrap();
        }
    }

    #[test]
    fn dominates_every_partition_it_outputs() {
        let (m, p) = example1();
        for ell in 1..=6usize {
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, ell);
            let r = PartitionDp::new().form(&m, &p, &cfg).unwrap();
            r.grouping.validate(6, ell).unwrap();
            // More budget can only help.
            if ell > 1 {
                let prev_cfg =
                    FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, ell - 1);
                let prev = PartitionDp::new().form(&m, &p, &prev_cfg).unwrap();
                assert!(r.objective >= prev.objective - 1e-9);
            }
        }
    }

    #[test]
    fn rejects_oversized_instances() {
        let rows: Vec<Vec<f64>> = (0..20).map(|_| vec![3.0, 4.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        assert!(PartitionDp::new().form(&m, &p, &cfg).is_err());
    }

    #[test]
    fn opt_name() {
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Sum, 5, 10);
        assert_eq!(PartitionDp::new().name(&cfg), "OPT-AV-SUM");
    }
}
