//! The Appendix-A integer program, with CPLEX LP export.
//!
//! The paper solves optimal group formation by handing an IP to CPLEX. The
//! formulation in Appendix A uses products of decision variables (e.g.
//! `y_jg × sc(g, j)` where `sc(g, j)` itself depends on the membership
//! variables), so a solver-ready model needs the standard big-M
//! linearization. [`IpModel`] builds that linearized model for the `k = 1`
//! case — the case the paper's NP-hardness proof reduces to, and where
//! Min/Max/Sum aggregation coincide (Section 2.3) — and exports it in CPLEX
//! LP format so anyone with a MIP solver can replicate the paper's OPT
//! pipeline verbatim. For `k > 1` use the in-crate exact solvers
//! ([`PartitionDp`](crate::PartitionDp), [`BranchAndBound`](crate::BranchAndBound)).
//!
//! Variables (mirroring Appendix A):
//! * `u_{i,g} ∈ {0,1}` — user `i` belongs to group `g`;
//! * `y_{j,g} ∈ {0,1}` — item `j` is the (single) item recommended to `g`;
//! * `z_g ≥ 0` — the satisfaction of group `g` (the linearized stand-in
//!   for `y_jg × sc(g, j)`).
//!
//! Constraints:
//! * every user in exactly one group; every group picks exactly one item;
//! * **LM**: `z_g ≤ sc(i, j) + M(1 - u_{i,g}) + M(1 - y_{j,g})` for all
//!   `i, j, g` — the group score is at most the rating of each member for
//!   the chosen item;
//! * **AV**: `z_g ≤ Σ_i sc(i, j)·u_{i,g} + M(1 - y_{j,g})` for all `j, g`;
//! * `z_g ≤ M·Σ_i u_{i,g}` — empty groups contribute nothing.

use gf_core::{
    FormationConfig, GfError, GroupRecommender, Grouping, MissingPolicy, RatingMatrix, Result,
    Semantics,
};
use std::fmt::Write as _;

/// A linearized instance of the Appendix-A IP (k = 1).
#[derive(Debug, Clone)]
pub struct IpModel {
    semantics: Semantics,
    n_users: u32,
    n_items: u32,
    ell: usize,
    big_m: f64,
    /// Dense `n x m` preference scores with the missing policy applied.
    scores: Vec<f64>,
}

impl IpModel {
    /// Builds the model for a `k = 1` configuration.
    pub fn build(matrix: &RatingMatrix, cfg: &FormationConfig) -> Result<Self> {
        cfg.validate(matrix)?;
        if cfg.k != 1 {
            return Err(GfError::InvalidK { k: cfg.k });
        }
        if !cfg.semantics.is_decomposable() {
            // Appendix A linearizes the LM/AV scores only; the moment-based
            // semantics (std-dev, leader weighting) are not big-M linear.
            return Err(GfError::InvalidGrouping(format!(
                "IpModel supports the paper semantics (LM/AV); got {}",
                cfg.semantics
            )));
        }
        let n = matrix.n_users();
        let m = matrix.n_items();
        let mut scores = Vec::with_capacity(n as usize * m as usize);
        for u in 0..n {
            for i in 0..m {
                scores.push(effective_score(matrix, cfg.policy, u, i));
            }
        }
        let big_m = match cfg.semantics {
            Semantics::LeastMisery => matrix.scale().max() + 1.0,
            Semantics::AggregateVoting => n as f64 * matrix.scale().max() + 1.0,
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                unreachable!("rejected above")
            }
        };
        Ok(IpModel {
            semantics: cfg.semantics,
            n_users: n,
            n_items: m,
            ell: cfg.ell,
            big_m,
            scores,
        })
    }

    #[inline]
    fn score(&self, u: u32, i: u32) -> f64 {
        self.scores[u as usize * self.n_items as usize + i as usize]
    }

    /// Number of decision variables (`u`, `y` and `z`).
    pub fn n_variables(&self) -> usize {
        let (n, m, l) = (self.n_users as usize, self.n_items as usize, self.ell);
        n * l + m * l + l
    }

    /// Number of constraints emitted into the LP.
    pub fn n_constraints(&self) -> usize {
        let (n, m, l) = (self.n_users as usize, self.n_items as usize, self.ell);
        let semantic = match self.semantics {
            Semantics::LeastMisery => n * m * l,
            Semantics::AggregateVoting => m * l,
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                unreachable!("build() rejects non-paper semantics")
            }
        };
        // assignment (n) + item choice (l) + semantic + empty-group guard (l)
        n + l + semantic + l
    }

    /// Serializes the model in CPLEX LP format.
    pub fn to_lp_string(&self) -> String {
        let (n, m, l) = (self.n_users, self.n_items, self.ell);
        let big_m = self.big_m;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "\\ Group formation ({} semantics, k = 1, {} users, {} items, {} groups)",
            self.semantics, n, m, l
        );
        let _ = writeln!(
            out,
            "\\ Appendix A of 'From Group Recommendations to Group Formation'"
        );
        out.push_str("Maximize\n obj:");
        for g in 0..l {
            let _ = write!(out, " {} z_{g}", if g == 0 { "" } else { "+" });
        }
        out.push_str("\nSubject To\n");
        // Each user in exactly one group.
        for u in 0..n {
            let _ = write!(out, " assign_u{u}:");
            for g in 0..l {
                let _ = write!(out, " {} x_{u}_{g}", if g == 0 { "" } else { "+" });
            }
            out.push_str(" = 1\n");
        }
        // Each group chooses exactly one item.
        for g in 0..l {
            let _ = write!(out, " choose_g{g}:");
            for j in 0..m {
                let _ = write!(out, " {} y_{j}_{g}", if j == 0 { "" } else { "+" });
            }
            out.push_str(" = 1\n");
        }
        // Semantic constraints.
        match self.semantics {
            Semantics::LeastMisery => {
                for g in 0..l {
                    for u in 0..n {
                        for j in 0..m {
                            // z_g + M x_ug + M y_jg <= s_uj + 2M
                            let rhs = self.score(u, j) + 2.0 * big_m;
                            let _ = writeln!(
                                out,
                                " lm_g{g}_u{u}_i{j}: z_{g} + {big_m} x_{u}_{g} + {big_m} y_{j}_{g} <= {rhs}"
                            );
                        }
                    }
                }
            }
            Semantics::AggregateVoting => {
                for g in 0..l {
                    for j in 0..m {
                        // z_g - sum_u s_uj x_ug + M y_jg <= M
                        let _ = write!(out, " av_g{g}_i{j}: z_{g}");
                        for u in 0..n {
                            let _ = write!(out, " - {} x_{u}_{g}", self.score(u, j));
                        }
                        let _ = writeln!(out, " + {big_m} y_{j}_{g} <= {big_m}");
                    }
                }
            }
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                unreachable!("build() rejects non-paper semantics")
            }
        }
        // Empty groups contribute nothing: z_g <= M * sum_u x_ug.
        for g in 0..l {
            let _ = write!(out, " nonempty_g{g}: z_{g}");
            for u in 0..n {
                let _ = write!(out, " - {big_m} x_{u}_{g}");
            }
            out.push_str(" <= 0\n");
        }
        // Bounds and binaries.
        out.push_str("Bounds\n");
        for g in 0..l {
            let _ = writeln!(out, " 0 <= z_{g} <= {big_m}");
        }
        out.push_str("Binary\n");
        for u in 0..n {
            for g in 0..l {
                let _ = writeln!(out, " x_{u}_{g}");
            }
        }
        for j in 0..m {
            for g in 0..l {
                let _ = writeln!(out, " y_{j}_{g}");
            }
        }
        out.push_str("End\n");
        out
    }

    /// Evaluates a grouping against the model: validates the assignment
    /// constraints and returns the model objective (sum over groups of the
    /// best single-item score under the semantics).
    pub fn evaluate(&self, grouping: &Grouping) -> Result<f64> {
        grouping.validate(self.n_users, self.ell)?;
        let mut total = 0.0;
        for g in &grouping.groups {
            let mut best = f64::NEG_INFINITY;
            for j in 0..self.n_items {
                let s = match self.semantics {
                    Semantics::LeastMisery => g
                        .members
                        .iter()
                        .map(|&u| self.score(u, j))
                        .fold(f64::INFINITY, f64::min),
                    Semantics::AggregateVoting => g.members.iter().map(|&u| self.score(u, j)).sum(),
                    Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                        unreachable!("build() rejects non-paper semantics")
                    }
                };
                best = best.max(s);
            }
            total += best;
        }
        Ok(total)
    }
}

/// The preference score the model uses for `(u, i)`: the rating if present,
/// otherwise the policy imputation (`Skip` has no sensible single-value
/// reading in an IP, so it imputes `r_min` like `Min`).
fn effective_score(matrix: &RatingMatrix, policy: MissingPolicy, u: u32, i: u32) -> f64 {
    matrix.get(u, i).unwrap_or(match policy {
        MissingPolicy::Min | MissingPolicy::Skip => matrix.scale().min(),
        MissingPolicy::UserMean => matrix.user_mean(u),
    })
}

/// Convenience: the model objective of the grouping produced by any former,
/// for cross-checking solver outputs against the IP's own scoring.
pub fn model_objective(
    matrix: &RatingMatrix,
    cfg: &FormationConfig,
    grouping: &Grouping,
) -> Result<f64> {
    IpModel::build(matrix, cfg)?.evaluate(grouping)
}

/// Sanity helper used by tests: the recommendation engine's objective for
/// k = 1 must agree with the IP model's objective on the same grouping.
pub fn engine_objective(matrix: &RatingMatrix, cfg: &FormationConfig, grouping: &Grouping) -> f64 {
    let rec = GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy);
    grouping
        .groups
        .iter()
        .map(|g| rec.satisfaction(&g.members, 1, cfg.aggregation))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::PartitionDp;
    use gf_core::{Aggregation, GreedyFormer, GroupFormer, PrefIndex, RatingScale};

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    fn cfg_lm() -> FormationConfig {
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3)
    }

    #[test]
    fn rejects_k_greater_than_one() {
        let (m, _) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3);
        assert!(matches!(
            IpModel::build(&m, &cfg),
            Err(GfError::InvalidK { .. })
        ));
    }

    #[test]
    fn variable_and_constraint_counts() {
        let (m, _) = example1();
        let model = IpModel::build(&m, &cfg_lm()).unwrap();
        // 6*3 x + 3*3 y + 3 z = 30 variables.
        assert_eq!(model.n_variables(), 30);
        // 6 assign + 3 choose + 6*3*3 lm + 3 nonempty = 66.
        assert_eq!(model.n_constraints(), 66);
    }

    #[test]
    fn lp_export_is_well_formed() {
        let (m, _) = example1();
        let model = IpModel::build(&m, &cfg_lm()).unwrap();
        let lp = model.to_lp_string();
        for section in ["Maximize", "Subject To", "Bounds", "Binary", "End"] {
            assert!(lp.contains(section), "missing section {section}");
        }
        // One named constraint per counted constraint.
        let named = lp.matches(':').count() - 1; // minus the objective row
        assert_eq!(named, model.n_constraints());
        assert!(lp.contains("x_0_0"));
        assert!(lp.contains("y_2_2"));
        assert!(lp.contains("z_2"));
    }

    #[test]
    fn av_lp_export_differs() {
        let (m, _) = example1();
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, 1, 2);
        let model = IpModel::build(&m, &cfg).unwrap();
        let lp = model.to_lp_string();
        assert!(lp.contains("av_g0_i0"));
        assert!(!lp.contains("lm_g0"));
    }

    #[test]
    fn evaluate_matches_engine_for_k1() {
        let (m, p) = example1();
        for sem in Semantics::all() {
            let cfg = FormationConfig::new(sem, Aggregation::Min, 1, 3);
            let model = IpModel::build(&m, &cfg).unwrap();
            let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
            let ip_obj = model.evaluate(&grd.grouping).unwrap();
            let engine = engine_objective(&m, &cfg, &grd.grouping);
            assert!(
                (ip_obj - engine).abs() < 1e-9,
                "{sem}: IP {ip_obj} vs engine {engine}"
            );
        }
    }

    #[test]
    fn optimal_grouping_scores_12_under_the_model() {
        // The appendix reports the IP solution {u1,u3,u4}, {u2,u6}, {u5} = 12.
        let (m, p) = example1();
        let cfg = cfg_lm();
        let model = IpModel::build(&m, &cfg).unwrap();
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(model.evaluate(&opt.grouping).unwrap(), 12.0);
        // And the greedy grouping scores 11 — strictly below.
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(model.evaluate(&grd.grouping).unwrap(), 11.0);
    }

    #[test]
    fn evaluate_rejects_invalid_groupings() {
        let (m, _) = example1();
        let model = IpModel::build(&m, &cfg_lm()).unwrap();
        let bad = Grouping::new(vec![]);
        assert!(model.evaluate(&bad).is_err());
    }
}
