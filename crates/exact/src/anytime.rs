//! Anytime local search — the `OPT~` proxy.
//!
//! The paper calibrates greedy quality against CPLEX optima at 200 users /
//! 100 items / 10 groups, a scale far beyond exact DP or branch-and-bound.
//! [`LocalSearch`] fills that role: it starts from the greedy solution and
//! hill-climbs with *relocate* (move one user to another / a new group) and
//! *swap* (exchange two users across groups) moves until a full pass makes
//! no progress. Deterministic, and exact-matching on every instance small
//! enough to verify against [`PartitionDp`](crate::PartitionDp) in this
//! crate's tests.

use gf_core::{
    FormationConfig, FormationResult, FxHashMap, Group, GroupFormer, GroupRecommender, Grouping,
    PrefIndex, RatingMatrix, Result,
};

/// Knobs for [`LocalSearch`].
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchConfig {
    /// Maximum full improvement passes.
    pub max_rounds: usize,
    /// Whether to try pairwise swap moves (costlier, occasionally escapes
    /// relocate-only local optima).
    pub allow_swaps: bool,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_rounds: 20,
            allow_swaps: true,
        }
    }
}

/// Hill-climbing group formation starting from the greedy solution.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSearch {
    /// Search configuration.
    pub config: LocalSearchConfig,
}

impl LocalSearch {
    /// A searcher with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the configuration.
    pub fn with_config(config: LocalSearchConfig) -> Self {
        LocalSearch { config }
    }
}

/// Satisfaction cache keyed by the (sorted) member list.
struct SatCache<'a> {
    rec: GroupRecommender<'a>,
    k: usize,
    agg: gf_core::Aggregation,
    memo: FxHashMap<Box<[u32]>, f64>,
}

impl SatCache<'_> {
    fn score(&mut self, members: &[u32]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        if let Some(&s) = self.memo.get(members) {
            return s;
        }
        let s = self.rec.satisfaction(members, self.k, self.agg);
        self.memo.insert(members.into(), s);
        s
    }
}

/// Sorted-insert and sorted-remove helpers for member lists.
fn without(members: &[u32], u: u32) -> Vec<u32> {
    members.iter().copied().filter(|&v| v != u).collect()
}

fn with(members: &[u32], u: u32) -> Vec<u32> {
    let mut v = Vec::with_capacity(members.len() + 1);
    let pos = members.partition_point(|&x| x < u);
    v.extend_from_slice(&members[..pos]);
    v.push(u);
    v.extend_from_slice(&members[pos..]);
    v
}

impl GroupFormer for LocalSearch {
    fn name(&self, cfg: &FormationConfig) -> String {
        format!("OPT~-{}-{}", cfg.semantics.tag(), cfg.aggregation.tag())
    }

    fn form(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult> {
        cfg.validate(matrix)?;
        let start = gf_core::GreedyFormer::new().form(matrix, prefs, cfg)?;
        let mut groups: Vec<Vec<u32>> = start
            .grouping
            .groups
            .iter()
            .map(|g| g.members.clone())
            .collect();
        let mut cache = SatCache {
            rec: GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy),
            k: cfg.k,
            agg: cfg.aggregation,
            memo: FxHashMap::default(),
        };
        let mut sats: Vec<f64> = groups.iter().map(|g| cache.score(g)).collect();

        const EPS: f64 = 1e-9;
        for _round in 0..self.config.max_rounds {
            let mut improved = false;

            // Relocate moves: best target for each user, applied eagerly.
            let mut gi = 0;
            while gi < groups.len() {
                let mut mi = 0;
                while mi < groups[gi].len() {
                    let u = groups[gi][mi];
                    let src_without = without(&groups[gi], u);
                    let src_now = sats[gi];
                    let src_after = cache.score(&src_without);
                    let mut best: Option<(Option<usize>, f64)> = None; // (target, delta)
                    for (ti, tgt) in groups.iter().enumerate() {
                        if ti == gi {
                            continue;
                        }
                        let tgt_with = with(tgt, u);
                        let delta = (src_after + cache.score(&tgt_with)) - (src_now + sats[ti]);
                        if delta > EPS && best.is_none_or(|(_, d)| delta > d) {
                            best = Some((Some(ti), delta));
                        }
                    }
                    // Opening a new singleton group, if budget remains and
                    // the source keeps at least one member.
                    if groups.len() < cfg.ell && groups[gi].len() > 1 {
                        let delta = (src_after + cache.score(&[u])) - src_now;
                        if delta > EPS && best.is_none_or(|(_, d)| delta > d) {
                            best = Some((None, delta));
                        }
                    }
                    if let Some((target, _)) = best {
                        groups[gi] = src_without;
                        sats[gi] = src_after;
                        match target {
                            Some(ti) => {
                                groups[ti] = with(&groups[ti], u);
                                sats[ti] = cache.score(&groups[ti]);
                            }
                            None => {
                                groups.push(vec![u]);
                                sats.push(cache.score(&[u]));
                            }
                        }
                        improved = true;
                        if groups[gi].is_empty() {
                            groups.swap_remove(gi);
                            sats.swap_remove(gi);
                            if gi >= groups.len() {
                                // The emptied group was the last one; no
                                // group was swapped into this slot.
                                break;
                            }
                            // Re-examine the group swapped into position gi.
                            mi = 0;
                            continue;
                        }
                        // Member list shifted; stay at the same index.
                        continue;
                    }
                    mi += 1;
                }
                gi += 1;
            }

            // Swap moves.
            if self.config.allow_swaps {
                'swap_outer: for ga in 0..groups.len() {
                    for gb in (ga + 1)..groups.len() {
                        for ai in 0..groups[ga].len() {
                            for bi in 0..groups[gb].len() {
                                let (u, v) = (groups[ga][ai], groups[gb][bi]);
                                let a_new = with(&without(&groups[ga], u), v);
                                let b_new = with(&without(&groups[gb], v), u);
                                let delta = (cache.score(&a_new) + cache.score(&b_new))
                                    - (sats[ga] + sats[gb]);
                                if delta > EPS {
                                    groups[ga] = a_new;
                                    groups[gb] = b_new;
                                    sats[ga] = cache.score(&groups[ga]);
                                    sats[gb] = cache.score(&groups[gb]);
                                    improved = true;
                                    continue 'swap_outer;
                                }
                            }
                        }
                    }
                }
            }

            if !improved {
                break;
            }
        }

        let rec = GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy);
        let out: Vec<Group> = groups
            .iter()
            .zip(&sats)
            .map(|(members, &satisfaction)| Group {
                members: members.clone(),
                top_k: rec.top_k(members, cfg.k),
                satisfaction,
            })
            .collect();
        let grouping = Grouping::new(out);
        debug_assert!(grouping.validate(matrix.n_users(), cfg.ell).is_ok());
        let objective = grouping.objective();
        Ok(FormationResult {
            grouping,
            objective,
            n_buckets: start.n_buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::PartitionDp;
    use gf_core::{Aggregation, GreedyFormer, RatingScale, Semantics};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn recovers_example1_optimum_from_suboptimal_greedy() {
        // Greedy scores 11; the optimum is 12. Local search must close the gap.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = LocalSearch::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 12.0);
    }

    #[test]
    fn never_worse_than_greedy() {
        let (m, p) = example1();
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                for ell in 1..=5usize {
                    let cfg = FormationConfig::new(sem, agg, 2, ell);
                    let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
                    let ls = LocalSearch::new().form(&m, &p, &cfg).unwrap();
                    assert!(
                        ls.objective >= grd.objective - 1e-9,
                        "{sem} {agg} ell={ell}: {} < {}",
                        ls.objective,
                        grd.objective
                    );
                    ls.grouping.validate(6, ell).unwrap();
                }
            }
        }
    }

    #[test]
    fn matches_exact_on_random_small_instances() {
        let mut rng = SmallRng::seed_from_u64(55);
        let mut exact_hits = 0usize;
        let mut trials = 0usize;
        for trial in 0..30 {
            let n = rng.gen_range(3..8u32);
            let m = rng.gen_range(2..5u32);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(1..=5) as f64).collect())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let mat = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
            let prefs = PrefIndex::build(&mat);
            let sem = if trial % 2 == 0 {
                Semantics::LeastMisery
            } else {
                Semantics::AggregateVoting
            };
            let cfg = FormationConfig::new(sem, Aggregation::Min, 1 + trial % 2, 1 + trial % 3);
            let opt = PartitionDp::new().form(&mat, &prefs, &cfg).unwrap();
            let ls = LocalSearch::new().form(&mat, &prefs, &cfg).unwrap();
            assert!(ls.objective <= opt.objective + 1e-9, "LS exceeded OPT?!");
            trials += 1;
            if (ls.objective - opt.objective).abs() < 1e-9 {
                exact_hits += 1;
            }
        }
        // Hill climbing is a heuristic, but on these tiny instances it
        // should find the optimum nearly always.
        assert!(
            exact_hits * 10 >= trials * 9,
            "local search matched OPT on only {exact_hits}/{trials} instances"
        );
    }

    #[test]
    fn relocate_only_mode_still_improves() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let ls = LocalSearch::with_config(LocalSearchConfig {
            max_rounds: 10,
            allow_swaps: false,
        })
        .form(&m, &p, &cfg)
        .unwrap();
        assert!(ls.objective >= 11.0);
    }

    #[test]
    fn zero_rounds_returns_greedy() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let ls = LocalSearch::with_config(LocalSearchConfig {
            max_rounds: 0,
            allow_swaps: false,
        })
        .form(&m, &p, &cfg)
        .unwrap();
        assert_eq!(ls.objective, grd.objective);
    }

    #[test]
    fn opt_proxy_name() {
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 5, 10);
        assert_eq!(LocalSearch::new().name(&cfg), "OPT~-LM-SUM");
    }
}
