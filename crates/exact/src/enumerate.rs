//! Brute-force enumeration of all set partitions — the oracle the other
//! exact solvers are tested against. Only viable for n ≲ 10.

use crate::scorer::MaskScorer;
use gf_core::{FormationConfig, FormationResult, Grouping, PrefIndex, RatingMatrix, Result};

/// Exhaustively enumerates every partition of the users into at most
/// `cfg.ell` non-empty groups and returns the best grouping.
///
/// Runtime is the restricted Bell number B(n, ℓ) — use only in tests.
pub fn brute_force(
    matrix: &RatingMatrix,
    _prefs: &PrefIndex,
    cfg: &FormationConfig,
) -> Result<FormationResult> {
    cfg.validate(matrix)?;
    let n = matrix.n_users() as usize;
    assert!(
        n <= 16,
        "brute force is a test oracle; n = {n} is too large"
    );
    let mut scorer = MaskScorer::new(matrix, cfg);

    let mut best_obj = f64::NEG_INFINITY;
    let mut best_blocks: Vec<u64> = Vec::new();
    let mut blocks: Vec<u64> = Vec::new();

    // Assign users in order; each goes to an existing block or (if budget
    // remains) opens a new one. First-touch ordering avoids enumerating
    // permutations of the same partition.
    fn recurse(
        user: usize,
        n: usize,
        ell: usize,
        blocks: &mut Vec<u64>,
        scorer: &mut MaskScorer<'_>,
        best_obj: &mut f64,
        best_blocks: &mut Vec<u64>,
    ) {
        if user == n {
            let obj: f64 = blocks.iter().map(|&b| scorer.score(b)).sum();
            if obj > *best_obj {
                *best_obj = obj;
                *best_blocks = blocks.clone();
            }
            return;
        }
        let bit = 1u64 << user;
        for slot in 0..blocks.len() {
            blocks[slot] |= bit;
            recurse(user + 1, n, ell, blocks, scorer, best_obj, best_blocks);
            blocks[slot] &= !bit;
        }
        if blocks.len() < ell {
            blocks.push(bit);
            recurse(user + 1, n, ell, blocks, scorer, best_obj, best_blocks);
            blocks.pop();
        }
    }

    recurse(
        0,
        n,
        cfg.ell,
        &mut blocks,
        &mut scorer,
        &mut best_obj,
        &mut best_blocks,
    );

    let groups = best_blocks.iter().map(|&b| scorer.group(b)).collect();
    let grouping = Grouping::new(groups);
    let objective = grouping.objective();
    Ok(FormationResult {
        grouping,
        objective,
        n_buckets: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, RatingScale, Semantics};

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn example1_optimum_is_12() {
        // Paper: OPT for k = 1, ℓ = 3 is {u1,u3,u4}, {u2,u6}, {u5} = 12.
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = brute_force(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 12.0);
        let mut groups: Vec<Vec<u32>> = r
            .grouping
            .groups
            .iter()
            .map(|g| g.members.clone())
            .collect();
        groups.sort();
        assert_eq!(groups, vec![vec![0, 2, 3], vec![1, 5], vec![4]]);
    }

    #[test]
    fn example5_optimum_is_21() {
        // Appendix B: optimal 3 groups {u2,u6}, {u3,u4}, {u1,u5} = 21.
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 4.0, 3.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 2, 3);
        let r = brute_force(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 21.0);
    }

    #[test]
    fn example2_av_true_optimum_is_16() {
        // The paper (Section 5 / Appendix A.2) exhibits the grouping
        // {u1,u3,u4}, {u2,u5,u6} with objective 14 and calls it optimal.
        // Exhaustive enumeration shows 14 is *not* optimal: the partition
        // {u1,u3,u4,u6}, {u2,u5} scores 16 (group A's AV scores are
        // i2 = 13, i1 = 10 -> bottom 10; group B's are i2 = 6, i3 = 6 ->
        // bottom 6). We verify both: the paper's grouping scores 14, and
        // the true optimum is 16. Recorded in EXPERIMENTS.md as a paper
        // discrepancy.
        let m = RatingMatrix::from_dense(
            &[
                &[3.0, 1.0, 4.0][..],
                &[1.0, 4.0, 3.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[1.0, 2.0, 3.0],
                &[3.0, 2.0, 1.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::AggregateVoting, Aggregation::Min, 2, 2);
        let r = brute_force(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 16.0);
        r.grouping.validate(6, 2).unwrap();
        // (Several partitions tie at 16, e.g. {u1,u3,u4,u6} | {u2,u5} and —
        // since u3 and u4 are identical — its u3/u4-swapped variants.)

        // The paper's exhibited grouping evaluates to exactly 14, as stated.
        use gf_core::GroupRecommender;
        let rec = GroupRecommender::new(&m, Semantics::AggregateVoting);
        let paper = rec.satisfaction(&[0, 2, 3], 2, Aggregation::Min)
            + rec.satisfaction(&[1, 4, 5], 2, Aggregation::Min);
        assert_eq!(paper, 14.0);
    }

    #[test]
    fn respects_group_budget() {
        let (m, p) = example1();
        for ell in 1..=4 {
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, ell);
            let r = brute_force(&m, &p, &cfg).unwrap();
            r.grouping.validate(6, ell).unwrap();
        }
    }
}
