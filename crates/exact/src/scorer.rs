//! Group satisfaction scoring over user bitmasks.
//!
//! The exact solvers evaluate the satisfaction of *many* candidate groups.
//! [`MaskScorer`] wraps the [`GroupRecommender`] behind a `u64` bitmask
//! interface (bit `u` = user `u` is a member) with an optional memo table,
//! so a group's score is computed at most once per solver run.

use gf_core::{Aggregation, FormationConfig, FxHashMap, Group, GroupRecommender, RatingMatrix};

/// Scores user subsets given as `u64` bitmasks (supports up to 64 users —
/// far beyond what exact solving can reach anyway).
pub struct MaskScorer<'a> {
    rec: GroupRecommender<'a>,
    k: usize,
    aggregation: Aggregation,
    memo: FxHashMap<u64, f64>,
    members_buf: Vec<u32>,
}

impl<'a> MaskScorer<'a> {
    /// Creates a scorer for the given configuration.
    pub fn new(matrix: &'a RatingMatrix, cfg: &FormationConfig) -> Self {
        MaskScorer {
            rec: GroupRecommender::new(matrix, cfg.semantics).with_policy(cfg.policy),
            k: cfg.k,
            aggregation: cfg.aggregation,
            memo: FxHashMap::default(),
            members_buf: Vec::new(),
        }
    }

    /// The members encoded by `mask`, ascending.
    pub fn members(mask: u64) -> Vec<u32> {
        let mut out = Vec::with_capacity(mask.count_ones() as usize);
        let mut rest = mask;
        while rest != 0 {
            let u = rest.trailing_zeros();
            out.push(u);
            rest &= rest - 1;
        }
        out
    }

    /// Satisfaction of the group encoded by `mask` (memoized).
    pub fn score(&mut self, mask: u64) -> f64 {
        if mask == 0 {
            return 0.0;
        }
        if let Some(&s) = self.memo.get(&mask) {
            return s;
        }
        self.members_buf.clear();
        let mut rest = mask;
        while rest != 0 {
            self.members_buf.push(rest.trailing_zeros());
            rest &= rest - 1;
        }
        let s = self
            .rec
            .satisfaction(&self.members_buf, self.k, self.aggregation);
        self.memo.insert(mask, s);
        s
    }

    /// Builds the output [`Group`] (members, top-`k`, satisfaction) for a
    /// final mask.
    pub fn group(&mut self, mask: u64) -> Group {
        let members = Self::members(mask);
        let top_k = self.rec.top_k(&members, self.k);
        let satisfaction = self.score(mask);
        Group {
            members,
            top_k,
            satisfaction,
        }
    }

    /// Number of distinct masks scored so far.
    pub fn evaluations(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{RatingScale, Semantics};

    fn cfg() -> FormationConfig {
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3)
    }

    fn example1() -> RatingMatrix {
        RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap()
    }

    #[test]
    fn members_decoding() {
        assert_eq!(MaskScorer::members(0b1), vec![0]);
        assert_eq!(MaskScorer::members(0b101010), vec![1, 3, 5]);
        assert!(MaskScorer::members(0).is_empty());
    }

    #[test]
    fn scores_paper_groups() {
        let m = example1();
        let mut s = MaskScorer::new(&m, &cfg());
        // {u3, u4} on i2: LM score 5; {u2, u6} on i3: 5; {u1, u5}: 1.
        assert_eq!(s.score(0b001100), 5.0);
        assert_eq!(s.score(0b100010), 5.0);
        assert_eq!(s.score(0b010001), 1.0);
        // {u1, u3, u4} scores 4 (the optimum's first group).
        assert_eq!(s.score(0b001101), 4.0);
    }

    #[test]
    fn memoization_counts_distinct_masks() {
        let m = example1();
        let mut s = MaskScorer::new(&m, &cfg());
        s.score(0b11);
        s.score(0b11);
        s.score(0b111);
        assert_eq!(s.evaluations(), 2);
    }

    #[test]
    fn group_materialization() {
        let m = example1();
        let mut s = MaskScorer::new(&m, &cfg());
        let g = s.group(0b001100);
        assert_eq!(g.members, vec![2, 3]);
        assert_eq!(g.top_k, vec![(1, 5.0)]);
        assert_eq!(g.satisfaction, 5.0);
    }
}
