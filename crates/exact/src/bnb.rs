//! Exact branch-and-bound group formation.
//!
//! Depth-first search assigning users one at a time to an existing group or
//! a new one (first-touch symmetry breaking: the i-th opened group is owned
//! by the lowest-indexed user in it). Two admissible upper bounds prune the
//! search:
//!
//! * **LM**: adding a user to a group can only lower (never raise) the
//!   group's satisfaction, so frozen groups are bounded by their current
//!   score; each still-unopened group is bounded by the best *personal*
//!   satisfaction among unassigned users (a group's LM satisfaction never
//!   exceeds any member's personal satisfaction).
//! * **AV**: each unassigned user can add at most their personal *potential*
//!   (their own aggregation value over their personal top-`k`) to whichever
//!   group they join.
//!
//! Exact on every instance (validated against [`PartitionDp`](crate::PartitionDp) and brute
//! force); typically much faster, handling ~20–24 users depending on
//! structure.

use crate::scorer::MaskScorer;
use gf_core::alg::bucket::personal_top_k;
use gf_core::{
    Aggregation, FormationConfig, FormationResult, GfError, GroupFormer, Grouping, PrefIndex,
    RatingMatrix, Result, Semantics,
};

/// Exact branch-and-bound solver.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Hard cap on users (memory is fine; time is exponential). Default 24.
    pub max_users: u32,
    /// Optional cap on search nodes; `None` = run to completion.
    pub node_limit: Option<u64>,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            max_users: 24,
            node_limit: None,
        }
    }
}

impl BranchAndBound {
    /// A solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }
}

struct Search<'a, 'b> {
    scorer: &'b mut MaskScorer<'a>,
    semantics: Semantics,
    ell: usize,
    n: usize,
    /// Suffix maxima (LM) of the per-user potentials, in search order.
    suffix_sorted: Vec<Vec<f64>>,
    /// Suffix sums (AV) of the per-user potentials.
    suffix_sum: Vec<f64>,
    order: Vec<u32>,
    groups: Vec<u64>,
    best_obj: f64,
    best_groups: Vec<u64>,
    nodes: u64,
    node_limit: u64,
}

impl Search<'_, '_> {
    /// Admissible upper bound on the total objective from a partial state.
    fn upper_bound(&mut self, next_user: usize) -> f64 {
        let frozen: f64 = self.groups.iter().map(|&g| self.scorer.score(g)).sum();
        match self.semantics {
            Semantics::LeastMisery => {
                // Unassigned users can only hurt frozen groups; new groups
                // are bounded by the largest remaining personal scores.
                let open_slots = self.ell - self.groups.len();
                let tail = &self.suffix_sorted[next_user];
                let gain: f64 = tail.iter().take(open_slots).sum();
                frozen + gain
            }
            Semantics::AggregateVoting => frozen + self.suffix_sum[next_user],
            Semantics::Consensus { .. } | Semantics::LeaderWeighted => {
                unreachable!("form() rejects non-paper semantics at entry")
            }
        }
    }

    fn dfs(&mut self, next_user: usize) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            return;
        }
        if next_user == self.n {
            let obj: f64 = self.groups.iter().map(|&g| self.scorer.score(g)).sum();
            if obj > self.best_obj {
                self.best_obj = obj;
                self.best_groups = self.groups.clone();
            }
            return;
        }
        if self.upper_bound(next_user) <= self.best_obj + 1e-12 {
            return;
        }
        let bit = 1u64 << self.order[next_user];
        for slot in 0..self.groups.len() {
            self.groups[slot] |= bit;
            self.dfs(next_user + 1);
            self.groups[slot] &= !bit;
        }
        if self.groups.len() < self.ell {
            self.groups.push(bit);
            self.dfs(next_user + 1);
            self.groups.pop();
        }
    }
}

impl GroupFormer for BranchAndBound {
    fn name(&self, cfg: &FormationConfig) -> String {
        format!("BNB-{}-{}", cfg.semantics.tag(), cfg.aggregation.tag())
    }

    fn form(
        &self,
        matrix: &RatingMatrix,
        prefs: &PrefIndex,
        cfg: &FormationConfig,
    ) -> Result<FormationResult> {
        cfg.validate(matrix)?;
        if !cfg.semantics.is_decomposable() {
            // The pruning bounds above are derived for LM/AV only; the
            // moment-based semantics have no admissible bound here yet.
            return Err(GfError::InvalidGrouping(format!(
                "BranchAndBound supports the paper semantics (LM/AV); got {}",
                cfg.semantics
            )));
        }
        let n = matrix.n_users() as usize;
        if n > self.max_users as usize || n > 63 {
            return Err(GfError::InvalidGrouping(format!(
                "BranchAndBound handles at most {} users; got {n}",
                self.max_users.min(63)
            )));
        }

        // Per-user potential: the aggregation applied to their own padded
        // top-k scores (for LM this equals their personal satisfaction; for
        // AV Min/Max we bound with the top-1 score, which dominates any
        // single item's contribution).
        let potential_of = |u: u32| -> f64 {
            let (_, scores) = personal_top_k(matrix, prefs, cfg.policy, u, cfg.k);
            match (cfg.semantics, cfg.aggregation) {
                (Semantics::AggregateVoting, Aggregation::Min | Aggregation::Max) => {
                    scores.first().copied().unwrap_or(0.0)
                }
                _ => cfg.aggregation.apply(&scores),
            }
        };
        // Search users in descending potential: strong incumbents early.
        let mut order: Vec<u32> = (0..matrix.n_users()).collect();
        let potentials_by_user: Vec<f64> = (0..matrix.n_users()).map(potential_of).collect();
        order.sort_by(|&a, &b| {
            potentials_by_user[b as usize]
                .total_cmp(&potentials_by_user[a as usize])
                .then(a.cmp(&b))
        });
        let potential: Vec<f64> = order
            .iter()
            .map(|&u| potentials_by_user[u as usize])
            .collect();

        // Suffix structures for the bounds.
        let mut suffix_sorted: Vec<Vec<f64>> = vec![Vec::new(); n + 1];
        for i in (0..n).rev() {
            let mut v = suffix_sorted[i + 1].clone();
            let pos = v
                .binary_search_by(|x| potential[i].total_cmp(x))
                .unwrap_or_else(|e| e);
            v.insert(pos, potential[i]); // descending order
            suffix_sorted[i] = v;
        }
        let mut suffix_sum = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            suffix_sum[i] = suffix_sum[i + 1] + potential[i];
        }

        let mut scorer = MaskScorer::new(matrix, cfg);
        // Seed the incumbent with the greedy solution: tight initial bound.
        let greedy = gf_core::GreedyFormer::new().form(matrix, prefs, cfg)?;
        let seed_groups: Vec<u64> = greedy
            .grouping
            .groups
            .iter()
            .map(|g| g.members.iter().fold(0u64, |acc, &u| acc | (1u64 << u)))
            .collect();

        let mut search = Search {
            scorer: &mut scorer,
            semantics: cfg.semantics,
            ell: cfg.ell,
            n,
            suffix_sorted,
            suffix_sum,
            order,
            groups: Vec::with_capacity(cfg.ell),
            best_obj: greedy.objective,
            best_groups: seed_groups,
            nodes: 0,
            node_limit: self.node_limit.unwrap_or(u64::MAX),
        };
        search.dfs(0);

        let best_groups = search.best_groups.clone();
        let groups = best_groups
            .into_iter()
            .filter(|&g| g != 0)
            .map(|g| scorer.group(g))
            .collect();
        let grouping = Grouping::new(groups);
        debug_assert!(grouping.validate(matrix.n_users(), cfg.ell).is_ok());
        let objective = grouping.objective();
        Ok(FormationResult {
            grouping,
            objective,
            n_buckets: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::PartitionDp;
    use gf_core::RatingScale;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn example1() -> (RatingMatrix, PrefIndex) {
        let m = RatingMatrix::from_dense(
            &[
                &[1.0, 4.0, 3.0][..],
                &[2.0, 3.0, 5.0],
                &[2.0, 5.0, 1.0],
                &[2.0, 5.0, 1.0],
                &[3.0, 1.0, 1.0],
                &[1.0, 2.0, 5.0],
            ],
            RatingScale::one_to_five(),
        )
        .unwrap();
        let p = PrefIndex::build(&m);
        (m, p)
    }

    #[test]
    fn example1_optimum() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = BranchAndBound::new().form(&m, &p, &cfg).unwrap();
        assert_eq!(r.objective, 12.0);
    }

    #[test]
    fn matches_dp_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(33);
        for trial in 0..25 {
            let n = rng.gen_range(3..9u32);
            let m = rng.gen_range(2..5u32);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(1..=5) as f64).collect())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let mat = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
            let prefs = PrefIndex::build(&mat);
            let sem = if trial % 2 == 0 {
                Semantics::LeastMisery
            } else {
                Semantics::AggregateVoting
            };
            let agg = Aggregation::paper_set()[trial % 3];
            let cfg = FormationConfig::new(sem, agg, 1 + trial % 3, 1 + trial % 4);
            let dp = PartitionDp::new().form(&mat, &prefs, &cfg).unwrap();
            let bnb = BranchAndBound::new().form(&mat, &prefs, &cfg).unwrap();
            assert!(
                (dp.objective - bnb.objective).abs() < 1e-9,
                "trial {trial}: DP {} vs BnB {}",
                dp.objective,
                bnb.objective
            );
        }
    }

    #[test]
    fn at_least_as_good_as_greedy_always() {
        let (m, p) = example1();
        for sem in Semantics::all() {
            for agg in Aggregation::paper_set() {
                for ell in 1..=4usize {
                    let cfg = FormationConfig::new(sem, agg, 2, ell);
                    let grd = gf_core::GreedyFormer::new().form(&m, &p, &cfg).unwrap();
                    let bnb = BranchAndBound::new().form(&m, &p, &cfg).unwrap();
                    assert!(
                        bnb.objective >= grd.objective - 1e-9,
                        "{sem} {agg} ell={ell}"
                    );
                }
            }
        }
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let (m, p) = example1();
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = BranchAndBound {
            max_users: 24,
            node_limit: Some(3),
        }
        .form(&m, &p, &cfg)
        .unwrap();
        // Even with a tiny budget the greedy incumbent survives.
        assert!(r.objective >= 11.0);
        r.grouping.validate(6, 3).unwrap();
    }

    #[test]
    fn handles_larger_instance_than_dp_default() {
        // 18 users with heavy duplication: BnB prunes this easily.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for u in 0..18 {
            rows.push(match u % 3 {
                0 => vec![5.0, 3.0, 1.0],
                1 => vec![1.0, 5.0, 3.0],
                _ => vec![3.0, 1.0, 5.0],
            });
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 3);
        let r = BranchAndBound::new().form(&m, &p, &cfg).unwrap();
        // Optimal: three pure groups, each scoring 5.
        assert_eq!(r.objective, 15.0);
    }

    #[test]
    fn rejects_oversized() {
        let rows: Vec<Vec<f64>> = (0..30).map(|_| vec![3.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
        let p = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, 2);
        assert!(BranchAndBound::new().form(&m, &p, &cfg).is_err());
    }
}
