//! # gf-exact — optimal group formation (the paper's CPLEX substitute)
//!
//! Appendix A of the paper formulates optimal group formation as an integer
//! program and solves it with IBM CPLEX, purely to calibrate the greedy
//! algorithms' quality on small inputs ("the IP-based optimal algorithms do
//! not complete in a reasonable time beyond 200 users, 100 items, and 10
//! groups"). CPLEX is proprietary, so this crate supplies the same
//! capability three ways:
//!
//! * [`PartitionDp`] — exact set-partition dynamic programming over user
//!   subsets, O(ℓ·3ⁿ): the reference optimum for n ≲ 16;
//! * [`BranchAndBound`] — exact depth-first search with admissible bounds
//!   and first-touch symmetry breaking, usually far faster than the DP and
//!   feasible somewhat beyond it;
//! * [`LocalSearch`] — an anytime hill-climber (relocate + swap moves) used
//!   as the `OPT~` proxy at the paper's 200-user calibration scale; on every
//!   instance small enough to verify it matches the exact optimum in our
//!   test-suite.
//!
//! [`ip`] additionally builds the Appendix-A IP model itself and exports it
//! in CPLEX LP format, so anyone with a MIP solver can reproduce the
//! paper's exact pipeline verbatim.
//!
//! All three solvers implement the same
//! [`GroupFormer`](gf_core::GroupFormer) interface as the greedy and
//! baseline algorithms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod anytime;
pub mod bnb;
pub mod dp;
pub mod enumerate;
pub mod ip;
pub mod scorer;

pub use anytime::{LocalSearch, LocalSearchConfig};
pub use bnb::BranchAndBound;
pub use dp::PartitionDp;
pub use scorer::MaskScorer;
