//! Property tests pitting the greedy algorithms against exact optima —
//! empirical verification of the paper's theorems.

use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, PrefIndex, RatingMatrix, RatingScale,
    Semantics,
};
use gf_exact::{BranchAndBound, LocalSearch, PartitionDp};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct DenseInstance {
    rows: Vec<Vec<f64>>,
}

fn dense_instance(max_users: usize, max_items: usize) -> impl Strategy<Value = DenseInstance> {
    (2..=max_users, 2..=max_items)
        .prop_flat_map(|(n, m)| {
            proptest::collection::vec(
                proptest::collection::vec((1..=5u8).prop_map(|r| r as f64), m),
                n,
            )
        })
        .prop_map(|rows| DenseInstance { rows })
}

fn matrix_of(inst: &DenseInstance) -> (RatingMatrix, PrefIndex) {
    let refs: Vec<&[f64]> = inst.rows.iter().map(|r| r.as_slice()).collect();
    let m = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
    let p = PrefIndex::build(&m);
    (m, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2 as stated in the paper: GRD-LM-MIN has absolute error at
    /// most r_max = 5. Our reproduction found this holds only when no two
    /// users share a hash key (see EXPERIMENTS.md "Discrepancies"); the
    /// test therefore conditions on distinct keys — the regime the paper's
    /// proof actually covers.
    #[test]
    fn theorem2_grd_lm_min_error_bound_distinct_keys(
        inst in dense_instance(7, 5),
        k in 1usize..4,
        ell in 1usize..5,
    ) {
        let (m, p) = matrix_of(&inst);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, k, ell);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        prop_assume!(grd.n_buckets == m.n_users() as usize); // all keys distinct
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let bound = cfg.error_bound(&m).unwrap();
        prop_assert!(grd.objective <= opt.objective + 1e-9, "greedy beat the optimum?!");
        prop_assert!(
            opt.objective - grd.objective <= bound + 1e-9,
            "Theorem 2 violated: OPT {} - GRD {} > {bound}",
            opt.objective, grd.objective
        );
    }

    /// Our split-aware selection fix restores the Theorem-2 bound
    /// *unconditionally* — duplicates and generous budgets included.
    #[test]
    fn theorem2_bound_unconditional_with_split_aware_selection(
        inst in dense_instance(7, 5),
        k in 1usize..4,
        ell in 1usize..6,
    ) {
        let (m, p) = matrix_of(&inst);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, k, ell);
        let grd = GreedyFormer::new()
            .with_split_aware_selection(true)
            .form(&m, &p, &cfg)
            .unwrap();
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let bound = cfg.error_bound(&m).unwrap();
        prop_assert!(
            opt.objective - grd.objective <= bound + 1e-9,
            "split-aware bound violated: OPT {} - GRD {} > {bound}",
            opt.objective, grd.objective
        );
    }

    /// Theorem 3 (distinct-key regime): GRD-LM-SUM within k * r_max.
    #[test]
    fn theorem3_grd_lm_sum_error_bound_distinct_keys(
        inst in dense_instance(7, 5),
        k in 1usize..4,
        ell in 1usize..5,
    ) {
        let (m, p) = matrix_of(&inst);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, k, ell);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        prop_assume!(grd.n_buckets == m.n_users() as usize);
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let bound = cfg.error_bound(&m).unwrap();
        prop_assert!(
            opt.objective - grd.objective <= bound + 1e-9,
            "Theorem 3 violated: OPT {} - GRD {} > {bound}",
            opt.objective, grd.objective
        );
    }

    /// Theorem 3 with split-aware selection: unconditional.
    #[test]
    fn theorem3_bound_unconditional_with_split_aware_selection(
        inst in dense_instance(7, 5),
        k in 1usize..4,
        ell in 1usize..6,
    ) {
        let (m, p) = matrix_of(&inst);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, k, ell);
        let grd = GreedyFormer::new()
            .with_split_aware_selection(true)
            .form(&m, &p, &cfg)
            .unwrap();
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let bound = cfg.error_bound(&m).unwrap();
        prop_assert!(
            opt.objective - grd.objective <= bound + 1e-9,
            "split-aware Theorem-3 bound violated: OPT {} - GRD {} > {bound}",
            opt.objective, grd.objective
        );
    }

    /// The LM-Max analogue the paper leaves implicit: empirically the same
    /// r_max absolute-error bound holds for GRD-LM-MAX (in the same
    /// distinct-key regime as Theorems 2–3).
    #[test]
    fn lm_max_empirical_error_bound(
        inst in dense_instance(7, 5),
        k in 1usize..4,
        ell in 1usize..5,
    ) {
        let (m, p) = matrix_of(&inst);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Max, k, ell);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        prop_assume!(grd.n_buckets == m.n_users() as usize);
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        prop_assert!(
            opt.objective - grd.objective <= m.scale().max() + 1e-9,
            "empirical LM-Max bound violated: OPT {} vs GRD {}",
            opt.objective, grd.objective
        );
    }

    /// Branch-and-bound is exact: it matches the DP on every instance,
    /// under both semantics and all aggregations.
    #[test]
    fn bnb_is_exact(
        inst in dense_instance(7, 4),
        k in 1usize..3,
        ell in 1usize..4,
        lm in any::<bool>(),
        agg_ix in 0usize..3,
    ) {
        let (m, p) = matrix_of(&inst);
        let sem = if lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let cfg = FormationConfig::new(sem, Aggregation::paper_set()[agg_ix], k, ell);
        let dp = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let bnb = BranchAndBound::new().form(&m, &p, &cfg).unwrap();
        prop_assert!((dp.objective - bnb.objective).abs() < 1e-9,
            "DP {} vs BnB {}", dp.objective, bnb.objective);
    }

    /// Local search is sandwiched between greedy and the optimum.
    #[test]
    fn local_search_sandwich(
        inst in dense_instance(6, 4),
        k in 1usize..3,
        ell in 1usize..4,
        lm in any::<bool>(),
    ) {
        let (m, p) = matrix_of(&inst);
        let sem = if lm { Semantics::LeastMisery } else { Semantics::AggregateVoting };
        let cfg = FormationConfig::new(sem, Aggregation::Min, k, ell);
        let grd = GreedyFormer::new().form(&m, &p, &cfg).unwrap();
        let ls = LocalSearch::new().form(&m, &p, &cfg).unwrap();
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        prop_assert!(ls.objective >= grd.objective - 1e-9);
        prop_assert!(ls.objective <= opt.objective + 1e-9);
        ls.grouping.validate(m.n_users(), ell).unwrap();
    }

    /// The exact optimum is monotone in the group budget.
    #[test]
    fn optimum_monotone_in_ell(inst in dense_instance(6, 4), k in 1usize..3) {
        let (m, p) = matrix_of(&inst);
        let mut prev = f64::NEG_INFINITY;
        for ell in 1..=4usize {
            let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, k, ell);
            let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
            prop_assert!(opt.objective >= prev - 1e-9);
            prev = opt.objective;
        }
    }

    /// With ell >= n the LM optimum is the all-singletons value: the sum of
    /// every user's personal satisfaction.
    #[test]
    fn optimum_with_full_budget_is_singletons(inst in dense_instance(6, 4), k in 1usize..3) {
        let (m, p) = matrix_of(&inst);
        let n = m.n_users() as usize;
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, k, n);
        let opt = PartitionDp::new().form(&m, &p, &cfg).unwrap();
        let singleton_total: f64 = (0..m.n_users())
            .map(|u| {
                let (_, scores) = p.top_k(u, k);
                Aggregation::Min.apply(scores)
            })
            .sum();
        prop_assert!((opt.objective - singleton_total).abs() < 1e-9,
            "OPT {} vs singleton total {singleton_total}", opt.objective);
    }
}
