//! End-to-end exercise of the `gf_datasets::io` loaders against checked-in
//! MovieLens-format fixtures (ROADMAP: "real data loaders in CI").
//!
//! `tests/fixtures/ratings_20users.{dat,csv}` hold the same 20-user,
//! 10-movie population in the two MovieLens layouts: `.dat`
//! (`UserID::MovieID::Rating::Timestamp`, whole stars) and `.csv`
//! (`userId,movieId,rating,timestamp` with a header row, half stars). Raw
//! ids are deliberately non-dense (users 101, 108, …, 234; movie ids up to
//! 3578) so the loaders' dense re-indexing is exercised for real.

use gf_core::{
    Aggregation, FormationConfig, GreedyFormer, GroupFormer, PrefIndex, RatingScale, Semantics,
    ShardedFormer,
};
use gf_datasets::io::{read_movielens_csv, read_movielens_dat, read_tsv, write_tsv, Loaded};
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

fn fixture(name: &str) -> BufReader<File> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    BufReader::new(File::open(&path).unwrap_or_else(|e| panic!("open {path:?}: {e}")))
}

fn load_dat() -> Loaded {
    read_movielens_dat(fixture("ratings_20users.dat"), RatingScale::one_to_five())
        .expect("fixture .dat parses")
}

fn load_csv() -> Loaded {
    read_movielens_csv(fixture("ratings_20users.csv"), RatingScale::half_star())
        .expect("fixture .csv parses")
}

#[test]
fn dat_fixture_loads_and_reindexes() {
    let loaded = load_dat();
    assert_eq!(loaded.matrix.n_users(), 20);
    assert_eq!(loaded.matrix.n_items(), 10);
    assert_eq!(loaded.matrix.nnz(), 117);
    // Raw ids survive in first-appearance order: user 101 rates first and
    // its first rated movie is 260.
    assert_eq!(loaded.user_ids[0], 101);
    assert_eq!(loaded.item_ids[0], 260);
    assert_eq!(loaded.user_ids.len(), 20);
    assert_eq!(loaded.item_ids.len(), 10);
    // Users are 101 + 7k — all distinct, none dense.
    for (k, &raw) in loaded.user_ids.iter().enumerate() {
        assert_eq!(raw, 101 + 7 * k as u64);
    }
    // First line of the file: 101::260::3.
    assert_eq!(loaded.matrix.get(0, 0), Some(3.0));
    // Every user rated 4..=8 movies.
    for u in 0..20 {
        let d = loaded.matrix.degree(u);
        assert!((4..=8).contains(&d), "user {u} has degree {d}");
    }
}

#[test]
fn csv_fixture_loads_half_stars() {
    let loaded = load_csv();
    assert_eq!(loaded.matrix.n_users(), 20);
    assert_eq!(loaded.matrix.n_items(), 10);
    assert_eq!(loaded.matrix.nnz(), 117);
    // Same population as the .dat file, in the same first-appearance order.
    let dat = load_dat();
    assert_eq!(loaded.user_ids, dat.user_ids);
    assert_eq!(loaded.item_ids, dat.item_ids);
    // Half-star ratings are present and every score sits on the 0.5 grid.
    let mut saw_half = false;
    for u in 0..loaded.matrix.n_users() {
        for (_, s) in loaded.matrix.user_ratings(u) {
            assert_eq!((s * 2.0).round(), s * 2.0, "{s} not on the half-star grid");
            if s.fract() != 0.0 {
                saw_half = true;
            }
        }
    }
    assert!(saw_half, "fixture should exercise half-star parsing");
}

#[test]
fn loaded_fixture_supports_group_formation_end_to_end() {
    // The full paper pipeline on real-format data: load -> index -> form
    // (plain and sharded) -> validate the partition.
    let loaded = load_dat();
    let prefs = PrefIndex::build(&loaded.matrix);
    let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 5);
    let plain = GreedyFormer::new()
        .form(&loaded.matrix, &prefs, &cfg)
        .unwrap();
    plain.grouping.validate(20, 5).unwrap();
    assert!(plain.objective > 0.0);
    let sharded = ShardedFormer::new()
        .with_shards(4)
        .form(&loaded.matrix, &prefs, &cfg)
        .unwrap();
    sharded.grouping.validate(20, 5).unwrap();
    // Report groups against the original MovieLens user ids.
    for g in &sharded.grouping.groups {
        for &u in &g.members {
            assert!(loaded.user_ids[u as usize] >= 101);
        }
    }
}

#[test]
fn fixture_round_trips_through_tsv() {
    let loaded = load_dat();
    let mut out = Vec::new();
    write_tsv(&loaded.matrix, &mut out).unwrap();
    let reloaded = read_tsv(std::io::Cursor::new(out), RatingScale::one_to_five()).unwrap();
    assert_eq!(loaded.matrix, reloaded.matrix);
}
