//! Property-based tests for the dataset substrate.

use gf_datasets::adversarial::{planted_x3c, tie_dense};
use gf_datasets::split::{holdout_split, user_folds};
use gf_datasets::zipf::Zipf;
use gf_datasets::SynthConfig;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator always honors shape, scale and the min-ratings floor.
    #[test]
    fn generator_invariants(
        n in 1u32..40,
        m in 1u32..30,
        seed in 0u64..1000,
        noise in 0.0f64..1.5,
    ) {
        let cfg = SynthConfig::tiny(n, m).with_seed(seed).with_user_noise(noise);
        let d = cfg.generate();
        prop_assert_eq!(d.matrix.n_users(), n);
        prop_assert_eq!(d.matrix.n_items(), m);
        for u in 0..n {
            prop_assert!(d.matrix.degree(u) >= cfg.min_ratings.min(m as usize));
            for (_, s) in d.matrix.user_ratings(u) {
                prop_assert!((1.0..=5.0).contains(&s));
                prop_assert_eq!(s, s.round()); // whole stars by default
            }
        }
    }

    /// Same seed, same dataset; different seed, (almost surely) different.
    #[test]
    fn generator_determinism(n in 2u32..20, m in 2u32..10, seed in 0u64..500) {
        let a = SynthConfig::tiny(n, m).with_seed(seed).generate();
        let b = SynthConfig::tiny(n, m).with_seed(seed).generate();
        prop_assert_eq!(a.matrix, b.matrix);
    }

    /// Folds partition the users with sizes within 1 of each other.
    #[test]
    fn folds_partition(n in 1u32..200, folds in 1usize..12, seed in 0u64..100) {
        let f = user_folds(n, folds, seed);
        prop_assert_eq!(f.len(), folds);
        let mut all: Vec<u32> = f.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let sizes: Vec<usize> = f.iter().map(Vec::len).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    /// Holdout conserves ratings and never leaks test pairs into train.
    #[test]
    fn holdout_conservation(
        n in 2u32..25,
        m in 2u32..12,
        frac in 0.0f64..0.9,
        seed in 0u64..100,
    ) {
        let d = SynthConfig::tiny(n, m).generate();
        let h = holdout_split(&d.matrix, frac, seed).unwrap();
        prop_assert_eq!(h.train.nnz() + h.test.len(), d.matrix.nnz());
        for &(u, i, r) in &h.test {
            prop_assert_eq!(d.matrix.get(u, i), Some(r));
            prop_assert_eq!(h.train.get(u, i), None);
        }
        for u in 0..n {
            if d.matrix.degree(u) > 0 {
                prop_assert!(h.train.degree(u) >= 1, "user {u} lost all train ratings");
            }
        }
    }

    /// Zipf samples stay in range and the CDF head dominates the tail.
    #[test]
    fn zipf_range_and_skew(n in 2usize..500, s_times_10 in 0u32..25) {
        let s = s_times_10 as f64 / 10.0;
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0usize;
        const DRAWS: usize = 2000;
        for _ in 0..DRAWS {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            if r < n.div_ceil(2) {
                head += 1;
            }
        }
        // The first half of the ranks always receives at least half the
        // mass (exactly half for s = 0, more for s > 0).
        prop_assert!(head * 2 >= DRAWS - DRAWS / 10, "head {head}/{DRAWS}");
    }

    /// Planted X3C instances are well-formed: binary, 3 elements per set,
    /// every element in exactly one planted cover set.
    #[test]
    fn x3c_wellformed(q in 1usize..8, extra in 0usize..6, seed in 0u64..100) {
        let inst = planted_x3c(q, extra, seed);
        prop_assert_eq!(inst.matrix.n_users(), 3 * q as u32);
        prop_assert_eq!(inst.matrix.n_items(), (q + extra) as u32);
        let t = inst.matrix.transpose();
        let mut covered = vec![0usize; 3 * q];
        for &set in &inst.cover {
            let mut ones = 0;
            for (pos, &u) in t.item_users(set).iter().enumerate() {
                if t.item_scores(set)[pos] == 1.0 {
                    ones += 1;
                    covered[u as usize] += 1;
                }
            }
            prop_assert_eq!(ones, 3);
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// Tie-dense instances only produce the two extreme ratings.
    #[test]
    fn tie_dense_is_binaryish(n in 1u32..30, m in 1u32..10, seed in 0u64..50) {
        let mat = tie_dense(n, m, seed);
        prop_assert_eq!(mat.nnz(), (n * m) as usize);
        for u in 0..n {
            for (_, s) in mat.user_ratings(u) {
                prop_assert!(s == 1.0 || s == 5.0);
            }
        }
    }
}
