//! Loaders for real rating files.
//!
//! When the actual corpora are available, these loaders remove the synthetic
//! substitution entirely:
//!
//! * [`read_movielens_dat`] — MovieLens `ratings.dat`
//!   (`UserID::MovieID::Rating::Timestamp`);
//! * [`read_movielens_csv`] — MovieLens `ratings.csv`
//!   (`userId,movieId,rating,timestamp` with a header row);
//! * [`read_netflix`] — the Netflix Prize per-movie block layout;
//! * [`read_tsv`] — generic `user \t item \t rating` (the Yahoo! Webscope
//!   layout);
//! * [`write_tsv`] — exports any matrix back to TSV.
//!
//! Raw ids are arbitrary (non-dense) integers; loaders re-index them densely
//! in first-appearance order and return the mapping so results can be
//! reported against the original ids.

use gf_core::{GfError, MatrixBuilder, RatingMatrix, RatingScale, Result};
use std::io::{BufRead, Write};

/// A loaded dataset: the dense matrix plus the original id of every dense
/// user/item index.
#[derive(Debug, Clone)]
pub struct Loaded {
    /// The re-indexed rating matrix.
    pub matrix: RatingMatrix,
    /// `user_ids[dense_index]` = original user id.
    pub user_ids: Vec<u64>,
    /// `item_ids[dense_index]` = original item id.
    pub item_ids: Vec<u64>,
}

/// A growable raw-id → dense-index remapper.
///
/// The loaders use one per axis to densify arbitrary raw ids in
/// first-appearance order — and because it **tolerates growth**, the same
/// remapper keeps working after load time: a serving deployment under
/// [`gf_core::GrowthPolicy::Grow`] can hold on to the loader's remapper
/// and keep interning the raw ids of users and items admitted at serve
/// time, so `raw id -> dense row` stays a total mapping as the population
/// grows (dense ids are append-only and never reshuffled, matching how
/// `RatingMatrix` growth appends rows).
#[derive(Debug, Clone, Default)]
pub struct IdRemapper {
    map: gf_core::FxHashMap<u64, u32>,
    ids: Vec<u64>,
}

impl IdRemapper {
    /// An empty remapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// A remapper pre-seeded with `ids` in dense order — e.g. the
    /// `user_ids`/`item_ids` of a [`Loaded`] dataset, to continue
    /// interning at serve time exactly where the loader stopped.
    pub fn from_ids(ids: Vec<u64>) -> Self {
        let map = ids
            .iter()
            .enumerate()
            .map(|(dense, &raw)| (raw, dense as u32))
            .collect();
        IdRemapper { map, ids }
    }

    /// The dense index of `raw`, interning it at the next free index if
    /// never seen.
    pub fn intern(&mut self, raw: u64) -> u32 {
        *self.map.entry(raw).or_insert_with(|| {
            let dense = self.ids.len() as u32;
            self.ids.push(raw);
            dense
        })
    }

    /// [`IdRemapper::intern`] against a cap (a
    /// [`gf_core::GrowthPolicy::Grow`] `max_users`/`max_items`): a raw id
    /// that is already mapped always resolves; a new one is admitted only
    /// while the mapping holds fewer than `cap` ids, `None` otherwise.
    pub fn intern_capped(&mut self, raw: u64, cap: u32) -> Option<u32> {
        if let Some(&dense) = self.map.get(&raw) {
            return Some(dense);
        }
        if self.ids.len() as u64 >= u64::from(cap) {
            return None;
        }
        Some(self.intern(raw))
    }

    /// The dense index of `raw`, if already interned.
    pub fn get(&self, raw: u64) -> Option<u32> {
        self.map.get(&raw).copied()
    }

    /// The raw id at `dense`, if assigned.
    pub fn raw(&self, dense: u32) -> Option<u64> {
        self.ids.get(dense as usize).copied()
    }

    /// Number of ids interned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The raw ids in dense order (what [`Loaded`] publishes).
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Consumes the remapper into its dense-ordered raw-id table.
    pub fn into_ids(self) -> Vec<u64> {
        self.ids
    }
}

fn parse_err(line_no: usize, line: &str, what: &str) -> GfError {
    GfError::InvalidGrouping(format!("line {line_no}: {what}: {line:?}"))
}

/// One parsed line: a rating record, or a structural line to skip.
enum Parsed {
    Record(u64, u64, f64),
    Skip,
}

/// Parses ratings with a caller-supplied per-line splitter. The splitter
/// returns `Some(Parsed::Record)` for data lines, `Some(Parsed::Skip)` for
/// structural lines (e.g. Netflix movie headers), `None` for malformed
/// input.
fn read_with<R: BufRead>(
    reader: R,
    scale: RatingScale,
    skip_header: bool,
    mut split: impl FnMut(&str) -> Option<Parsed>,
) -> Result<Loaded> {
    let mut users = IdRemapper::new();
    let mut items = IdRemapper::new();
    let mut triples: Vec<(u32, u32, f64)> = Vec::new();
    let mut line_no = 0usize;
    for line in reader.lines() {
        let line = line.map_err(|e| GfError::InvalidGrouping(format!("io error: {e}")))?;
        line_no += 1;
        if line_no == 1 && skip_header {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match split(trimmed) {
            Some(Parsed::Record(u, i, r)) => {
                triples.push((users.intern(u), items.intern(i), r));
            }
            Some(Parsed::Skip) => {}
            None => return Err(parse_err(line_no, trimmed, "malformed record")),
        }
    }
    if triples.is_empty() {
        return Err(GfError::EmptyMatrix);
    }
    let mut b = MatrixBuilder::new(users.len() as u32, items.len() as u32, scale);
    b.reserve(triples.len());
    for (u, i, r) in triples {
        b.push(u, i, r)?;
    }
    Ok(Loaded {
        matrix: b.build()?,
        user_ids: users.into_ids(),
        item_ids: items.into_ids(),
    })
}

/// Reads MovieLens `ratings.dat`: `UserID::MovieID::Rating::Timestamp`.
pub fn read_movielens_dat<R: BufRead>(reader: R, scale: RatingScale) -> Result<Loaded> {
    read_with(reader, scale, false, |line| {
        let mut parts = line.split("::");
        let u = parts.next()?.parse().ok()?;
        let i = parts.next()?.parse().ok()?;
        let r = parts.next()?.parse().ok()?;
        Some(Parsed::Record(u, i, r))
    })
}

/// Reads MovieLens `ratings.csv` (`userId,movieId,rating,timestamp`), with
/// header row.
pub fn read_movielens_csv<R: BufRead>(reader: R, scale: RatingScale) -> Result<Loaded> {
    read_with(reader, scale, true, |line| {
        let mut parts = line.split(',');
        let u = parts.next()?.trim().parse().ok()?;
        let i = parts.next()?.trim().parse().ok()?;
        let r = parts.next()?.trim().parse().ok()?;
        Some(Parsed::Record(u, i, r))
    })
}

/// Reads the Netflix Prize training-file layout: a `movie_id:` header line
/// opens each block, followed by `user_id,rating,date` records for that
/// movie.
pub fn read_netflix<R: BufRead>(reader: R, scale: RatingScale) -> Result<Loaded> {
    let mut current_movie: Option<u64> = None;
    read_with(reader, scale, false, move |line| {
        if let Some(header) = line.strip_suffix(':') {
            current_movie = Some(header.parse().ok()?);
            return Some(Parsed::Skip);
        }
        let movie = current_movie?; // record before any header is malformed
        let mut parts = line.split(',');
        let user = parts.next()?.trim().parse().ok()?;
        let rating = parts.next()?.trim().parse().ok()?;
        Some(Parsed::Record(user, movie, rating))
    })
}

/// Reads whitespace-separated `user item rating` records (Yahoo! Webscope
/// TSV layout).
pub fn read_tsv<R: BufRead>(reader: R, scale: RatingScale) -> Result<Loaded> {
    read_with(reader, scale, false, |line| {
        let mut parts = line.split_whitespace();
        let u = parts.next()?.parse().ok()?;
        let i = parts.next()?.parse().ok()?;
        let r = parts.next()?.parse().ok()?;
        Some(Parsed::Record(u, i, r))
    })
}

/// Writes a matrix as `user \t item \t rating` using dense indices.
pub fn write_tsv<W: Write>(matrix: &RatingMatrix, mut writer: W) -> std::io::Result<()> {
    let mut buf = std::io::BufWriter::new(&mut writer);
    for u in 0..matrix.n_users() {
        for (i, s) in matrix.user_ratings(u) {
            writeln!(buf, "{u}\t{i}\t{s}")?;
        }
    }
    buf.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn movielens_dat_round_trip() {
        let data = "1::10::5::978300760\n1::20::3::978302109\n7::10::4::978301968\n";
        let loaded = read_movielens_dat(Cursor::new(data), RatingScale::one_to_five()).unwrap();
        assert_eq!(loaded.matrix.n_users(), 2);
        assert_eq!(loaded.matrix.n_items(), 2);
        assert_eq!(loaded.user_ids, vec![1, 7]);
        assert_eq!(loaded.item_ids, vec![10, 20]);
        assert_eq!(loaded.matrix.get(0, 0), Some(5.0));
        assert_eq!(loaded.matrix.get(1, 0), Some(4.0));
        assert_eq!(loaded.matrix.get(1, 1), None);
    }

    #[test]
    fn movielens_csv_skips_header() {
        let data = "userId,movieId,rating,timestamp\n3,100,4.0,11\n3,200,2.0,12\n";
        let loaded = read_movielens_csv(Cursor::new(data), RatingScale::one_to_five()).unwrap();
        assert_eq!(loaded.matrix.nnz(), 2);
        assert_eq!(loaded.user_ids, vec![3]);
    }

    #[test]
    fn half_star_ratings_need_half_star_scale() {
        let data = "userId,movieId,rating,timestamp\n1,1,4.5,0\n";
        assert!(read_movielens_csv(Cursor::new(data), RatingScale::half_star()).is_ok());
        // 4.5 fits the 1..5 scale too; 0.5 does not:
        let data = "userId,movieId,rating,timestamp\n1,1,0.5,0\n";
        assert!(matches!(
            read_movielens_csv(Cursor::new(data), RatingScale::one_to_five()),
            Err(GfError::ScaleViolation { .. })
        ));
    }

    #[test]
    fn netflix_blocks() {
        let data = "8:\n100,4,2005-09-06\n200,3,2005-09-07\n9:\n100,5,2005-09-08\n";
        let loaded = read_netflix(Cursor::new(data), RatingScale::one_to_five()).unwrap();
        assert_eq!(loaded.matrix.n_users(), 2);
        assert_eq!(loaded.matrix.n_items(), 2);
        assert_eq!(loaded.user_ids, vec![100, 200]);
        assert_eq!(loaded.item_ids, vec![8, 9]);
        assert_eq!(loaded.matrix.get(0, 0), Some(4.0));
        assert_eq!(loaded.matrix.get(0, 1), Some(5.0));
        assert_eq!(loaded.matrix.get(1, 1), None);
    }

    #[test]
    fn netflix_record_before_header_is_malformed() {
        let data = "100,4,2005-09-06\n8:\n";
        let err = read_netflix(Cursor::new(data), RatingScale::one_to_five()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn tsv_round_trip() {
        let data = "0\t0\t5\n0\t1\t3\n1\t0\t2\n";
        let loaded = read_tsv(Cursor::new(data), RatingScale::one_to_five()).unwrap();
        let mut out = Vec::new();
        write_tsv(&loaded.matrix, &mut out).unwrap();
        let reloaded = read_tsv(Cursor::new(out), RatingScale::one_to_five()).unwrap();
        assert_eq!(loaded.matrix, reloaded.matrix);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let data = "# a comment\n\n1\t1\t4\n";
        let loaded = read_tsv(Cursor::new(data), RatingScale::one_to_five()).unwrap();
        assert_eq!(loaded.matrix.nnz(), 1);
    }

    #[test]
    fn malformed_line_is_reported_with_number() {
        let data = "1\t1\t4\nnot-a-record\n";
        let err = read_tsv(Cursor::new(data), RatingScale::one_to_five()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn id_remapper_grows_past_load_time() {
        let data = "1::10::5::978300760\n7::10::4::978301968\n";
        let loaded = read_movielens_dat(Cursor::new(data), RatingScale::one_to_five()).unwrap();
        // A serving deployment resumes interning where the loader stopped.
        let mut users = IdRemapper::from_ids(loaded.user_ids.clone());
        assert_eq!(users.len(), 2);
        assert_eq!(users.get(7), Some(1)); // existing ids keep their rows
        assert_eq!(users.intern(42), 2); // a serve-time admission appends
        assert_eq!(users.intern(42), 2); // idempotently
        assert_eq!(users.raw(2), Some(42));
        assert_eq!(users.ids(), &[1, 7, 42]);
        // Capped interning mirrors GrowthPolicy::Grow: known ids always
        // resolve, new ones only while the cap has room.
        assert_eq!(users.intern_capped(1, 3), Some(0));
        assert_eq!(users.intern_capped(99, 3), None);
        assert_eq!(users.intern_capped(99, 4), Some(3));
        assert_eq!(users.len(), 4);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            read_tsv(Cursor::new(""), RatingScale::one_to_five()),
            Err(GfError::EmptyMatrix)
        ));
    }

    #[test]
    fn duplicate_rating_detected_at_build() {
        let data = "1\t1\t4\n1\t1\t5\n";
        assert!(matches!(
            read_tsv(Cursor::new(data), RatingScale::one_to_five()),
            Err(GfError::DuplicateRating { .. })
        ));
    }
}
