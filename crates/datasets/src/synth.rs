//! Latent-factor synthetic rating generator.
//!
//! The generator substitutes for the paper's proprietary corpora. It is
//! built so that the *structural* properties the experiments depend on hold:
//!
//! * **clustered preferences** — users are noisy copies of a small number of
//!   taste archetypes, so subsets of users share top-`k` prefixes and the
//!   greedy algorithms can form non-trivial groups;
//! * **Zipf item popularity** with a densely-rated *head* (every user rates
//!   the most popular `head_items` items), mirroring the effect of the
//!   paper's pre-processing (each user ≥ 20 ratings, each item ≥ 20 raters,
//!   missing ratings predicted);
//! * **heavy-tailed per-user activity** — `min_ratings` plus an
//!   exponentially distributed surplus;
//! * **discrete 1–5 star ratings** by default (set `rating_step: None` for
//!   continuous "predicted" scores).
//!
//! All generation is deterministic in the `seed`.

use crate::zipf::Zipf;
use gf_core::{MatrixBuilder, RatingMatrix, RatingScale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated (or loaded) dataset: a named rating matrix.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (e.g. `yahoo-music-synth`).
    pub name: String,
    /// The ratings.
    pub matrix: RatingMatrix,
}

/// Configuration of the synthetic generator. Construct via a preset
/// ([`SynthConfig::yahoo_music`], [`SynthConfig::movielens`],
/// [`SynthConfig::flickr_poi`], [`SynthConfig::tiny`]) and customise with
/// the `with_*` builders.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset name stamped on the output.
    pub name: String,
    /// Number of users `n`.
    pub n_users: u32,
    /// Number of items `m`.
    pub n_items: u32,
    /// Number of user taste archetypes.
    pub n_clusters: usize,
    /// Latent dimensionality.
    pub n_factors: usize,
    /// Minimum ratings per user (the paper's pre-processing guarantees 20).
    pub min_ratings: usize,
    /// Mean of the exponential surplus of ratings beyond `min_ratings`.
    pub mean_extra: f64,
    /// The `head_items` most popular items are rated by every user.
    pub head_items: usize,
    /// Zipf exponent for tail item popularity.
    pub zipf_exponent: f64,
    /// Std of a user's deviation from their cluster archetype. Smaller
    /// values produce more users with identical top-`k` lists.
    pub user_noise: f64,
    /// Std of independent per-rating noise.
    pub rating_noise: f64,
    /// Quantization step (`Some(1.0)` = whole stars); `None` = continuous.
    pub rating_step: Option<f64>,
    /// Rating scale.
    pub scale: RatingScale,
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Shape of the Yahoo! Music snapshot in Table 3:
    /// 200,000 users × 136,736 songs, ratings 1–5, ≥ 20 ratings per user.
    pub fn yahoo_music() -> Self {
        SynthConfig {
            name: "yahoo-music-synth".into(),
            n_users: 200_000,
            n_items: 136_736,
            n_clusters: 60,
            n_factors: 8,
            min_ratings: 20,
            mean_extra: 20.0,
            head_items: 30,
            zipf_exponent: 1.0,
            user_noise: 0.25,
            rating_noise: 0.35,
            rating_step: Some(1.0),
            scale: RatingScale::one_to_five(),
            seed: 0x59a4_0001,
        }
    }

    /// Shape of MovieLens 10M in Table 3: 71,567 users × 10,681 movies
    /// (~140 ratings per user), 1–5 stars as the paper uses it.
    pub fn movielens() -> Self {
        SynthConfig {
            name: "movielens-synth".into(),
            n_users: 71_567,
            n_items: 10_681,
            n_clusters: 40,
            n_factors: 8,
            min_ratings: 20,
            mean_extra: 120.0,
            head_items: 30,
            zipf_exponent: 1.0,
            user_noise: 0.3,
            rating_noise: 0.35,
            rating_step: Some(1.0),
            scale: RatingScale::one_to_five(),
            seed: 0x314e_0002,
        }
    }

    /// Shape of the Section-7.3 user study: 50 AMT workers rating the 10
    /// most popular New York POIs, 1–5, everyone rates everything.
    pub fn flickr_poi() -> Self {
        SynthConfig {
            name: "flickr-poi-synth".into(),
            n_users: 50,
            n_items: 10,
            n_clusters: 4,
            n_factors: 4,
            min_ratings: 10,
            mean_extra: 0.0,
            head_items: 10,
            zipf_exponent: 0.8,
            user_noise: 0.35,
            rating_noise: 0.4,
            rating_step: Some(1.0),
            scale: RatingScale::one_to_five(),
            seed: 0xf11c_0003,
        }
    }

    /// A small dense instance for tests and examples.
    pub fn tiny(n_users: u32, n_items: u32) -> Self {
        SynthConfig {
            name: format!("tiny-{n_users}x{n_items}"),
            n_users,
            n_items,
            n_clusters: 3,
            n_factors: 4,
            min_ratings: n_items as usize,
            mean_extra: 0.0,
            head_items: n_items as usize,
            zipf_exponent: 1.0,
            user_noise: 0.3,
            rating_noise: 0.3,
            rating_step: Some(1.0),
            scale: RatingScale::one_to_five(),
            seed: 0x7e57_0004,
        }
    }

    /// Overrides the number of users (for sweeps).
    pub fn with_users(mut self, n: u32) -> Self {
        self.n_users = n;
        self
    }

    /// Overrides the number of items (for sweeps). Caps `head_items` and
    /// `min_ratings` so the configuration stays satisfiable.
    pub fn with_items(mut self, m: u32) -> Self {
        self.n_items = m;
        self.head_items = self.head_items.min(m as usize);
        self.min_ratings = self.min_ratings.min(m as usize);
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the user-noise level (cluster tightness).
    pub fn with_user_noise(mut self, noise: f64) -> Self {
        self.user_noise = noise;
        self
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics if `n_users` or `n_items` is zero.
    pub fn generate(&self) -> Dataset {
        assert!(self.n_users > 0 && self.n_items > 0, "empty dataset shape");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let m = self.n_items as usize;
        let f = self.n_factors.max(1);
        let head = self.head_items.min(m);

        // Popularity order: a seeded shuffle of the item ids, so popularity
        // rank and item id are uncorrelated.
        let mut pop_order: Vec<u32> = (0..self.n_items).collect();
        for i in (1..pop_order.len()).rev() {
            pop_order.swap(i, rng.gen_range(0..=i));
        }

        // Cluster archetypes and item factors.
        let norm = 1.0 / (f as f64).sqrt();
        let archetypes: Vec<Vec<f64>> = (0..self.n_clusters.max(1))
            .map(|_| (0..f).map(|_| randn(&mut rng)).collect())
            .collect();
        let item_vecs: Vec<f64> = (0..m * f).map(|_| randn(&mut rng) * norm).collect();
        let item_bias: Vec<f64> = (0..m).map(|_| randn(&mut rng) * 0.3).collect();

        let tail = m - head;
        let tail_zipf = (tail > 0).then(|| Zipf::new(tail, self.zipf_exponent));

        let center = (self.scale.min() + self.scale.max()) / 2.0;
        let gain = self.scale.range() * 0.45;

        let mut builder = MatrixBuilder::new(self.n_users, self.n_items, self.scale);
        let expected = self.n_users as usize * (self.min_ratings + self.mean_extra as usize).min(m);
        builder.reserve(expected);

        let mut user_vec = vec![0.0f64; f];
        for u in 0..self.n_users {
            let cluster = (u as usize) % self.n_clusters.max(1);
            for (slot, &a) in archetypes[cluster].iter().enumerate() {
                user_vec[slot] = a + self.user_noise * randn(&mut rng);
            }
            let user_bias = randn(&mut rng) * 0.2;

            // How many items this user rates.
            let extra = if self.mean_extra > 0.0 {
                let x: f64 = rng.gen::<f64>().max(1e-12);
                (-self.mean_extra * x.ln()) as usize
            } else {
                0
            };
            let d = (self.min_ratings + extra).clamp(head.max(1), m);

            // The head plus a Zipf sample of the tail.
            let mut rated_ranks: Vec<usize> = (0..head).collect();
            if d > head {
                if let Some(z) = &tail_zipf {
                    rated_ranks.extend(
                        z.sample_distinct(&mut rng, d - head)
                            .iter()
                            .map(|r| r + head),
                    );
                }
            }

            for rank in rated_ranks {
                let item = pop_order[rank];
                let iv = &item_vecs[item as usize * f..(item as usize + 1) * f];
                let dot: f64 = user_vec.iter().zip(iv).map(|(a, b)| a * b).sum();
                let raw = center
                    + gain * dot
                    + user_bias
                    + item_bias[item as usize]
                    + self.rating_noise * randn(&mut rng);
                let score = match self.rating_step {
                    Some(step) => self.scale.quantize(raw, step),
                    None => self.scale.clamp(raw),
                };
                builder
                    .push(u, item, score)
                    .expect("generator produced an invalid rating");
            }
        }

        Dataset {
            name: self.name.clone(),
            matrix: builder.build().expect("generator produced no ratings"),
        }
    }
}

/// One standard normal draw (Box–Muller; `rand` 0.8 ships no normal
/// distribution without `rand_distr`, which we avoid depending on).
fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, FormationConfig, GreedyFormer, GroupFormer, PrefIndex, Semantics};

    fn small_yahoo() -> Dataset {
        SynthConfig::yahoo_music()
            .with_users(300)
            .with_items(200)
            .generate()
    }

    #[test]
    fn shape_and_scale() {
        let d = small_yahoo();
        assert_eq!(d.matrix.n_users(), 300);
        assert_eq!(d.matrix.n_items(), 200);
        for u in 0..d.matrix.n_users() {
            assert!(
                d.matrix.degree(u) >= 20,
                "user {u} has {} < 20",
                d.matrix.degree(u)
            );
            for (_, s) in d.matrix.user_ratings(u) {
                assert!((1.0..=5.0).contains(&s));
                assert_eq!(s, s.round(), "whole stars expected");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SynthConfig::tiny(20, 8).generate();
        let b = SynthConfig::tiny(20, 8).generate();
        assert_eq!(a.matrix, b.matrix);
        let c = SynthConfig::tiny(20, 8).with_seed(99).generate();
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn ratings_use_the_full_scale() {
        let d = small_yahoo();
        let mut histogram = [0usize; 6];
        for u in 0..d.matrix.n_users() {
            for (_, s) in d.matrix.user_ratings(u) {
                histogram[s as usize] += 1;
            }
        }
        // Every star level 1..5 appears somewhere.
        for star in 1..=5 {
            assert!(
                histogram[star] > 0,
                "star {star} never generated: {histogram:?}"
            );
        }
    }

    #[test]
    fn clusters_create_shareable_prefixes() {
        // The reason this generator exists: greedy formation must find users
        // with identical top-k lists, i.e. fewer buckets than users.
        let d = SynthConfig::yahoo_music()
            .with_users(400)
            .with_items(100)
            .with_user_noise(0.1)
            .generate();
        let prefs = PrefIndex::build(&d.matrix);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 3, 10);
        let r = GreedyFormer::new().form(&d.matrix, &prefs, &cfg).unwrap();
        assert!(
            r.n_buckets < 400,
            "no shared top-k prefixes at all: {} buckets for 400 users",
            r.n_buckets
        );
    }

    #[test]
    fn head_items_are_rated_by_everyone() {
        let cfg = SynthConfig::yahoo_music().with_users(50).with_items(60);
        let d = cfg.generate();
        let t = d.matrix.transpose();
        let fully_rated = (0..60u32).filter(|&i| t.degree(i) == 50).count();
        assert!(
            fully_rated >= cfg.head_items,
            "only {fully_rated} items rated by everyone (head = {})",
            cfg.head_items
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let d = SynthConfig::yahoo_music()
            .with_users(200)
            .with_items(500)
            .generate();
        let t = d.matrix.transpose();
        let mut degrees: Vec<usize> = (0..500u32).map(|i| t.degree(i)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top50: usize = degrees[..50].iter().sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top50 as f64 > 0.4 * total as f64,
            "head mass too small: {top50}/{total}"
        );
    }

    #[test]
    fn continuous_ratings_mode() {
        let mut cfg = SynthConfig::tiny(10, 6);
        cfg.rating_step = None;
        let d = cfg.generate();
        let mut any_fractional = false;
        for u in 0..d.matrix.n_users() {
            for (_, s) in d.matrix.user_ratings(u) {
                assert!((1.0..=5.0).contains(&s));
                if (s - s.round()).abs() > 1e-9 {
                    any_fractional = true;
                }
            }
        }
        assert!(any_fractional, "continuous mode produced only integers");
    }

    #[test]
    fn flickr_preset_is_dense() {
        let d = SynthConfig::flickr_poi().generate();
        assert_eq!(d.matrix.n_users(), 50);
        assert_eq!(d.matrix.n_items(), 10);
        assert_eq!(d.matrix.nnz(), 500);
    }

    #[test]
    fn with_items_caps_head_and_min() {
        let cfg = SynthConfig::yahoo_music().with_items(5);
        assert!(cfg.head_items <= 5);
        assert!(cfg.min_ratings <= 5);
        let d = cfg.with_users(10).generate();
        assert_eq!(d.matrix.n_items(), 5);
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
