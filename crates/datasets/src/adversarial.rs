//! Adversarial instances from the NP-hardness machinery (Section 3).
//!
//! The paper reduces Exact Cover by 3-Sets (X3C) to PECS to group
//! formation: ground elements become users with binary preferences, the
//! 3-sets become items, and an exact cover exists iff `q` groups can each
//! achieve satisfaction 1 with `k = 1`. These generators build such
//! instances — both satisfiable (planted cover) and perturbed — which make
//! excellent stress inputs: they maximize hash-key collisions and tie
//! density, the regimes where greedy tie-breaking and the Theorem-2
//! degenerate cases live.

use gf_core::{MatrixBuilder, RatingMatrix, RatingScale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An X3C-derived group formation instance.
#[derive(Debug, Clone)]
pub struct X3cInstance {
    /// Users = ground elements (3q of them), items = 3-sets; rating 1 iff
    /// the element belongs to the set.
    pub matrix: RatingMatrix,
    /// The planted exact cover (item ids), if one was planted.
    pub cover: Vec<u32>,
    /// q — the number of cover sets (= the group budget for the reduction).
    pub q: usize,
}

/// Builds a satisfiable X3C instance with `q` planted cover sets plus
/// `extra_sets` random distractor 3-sets.
///
/// # Panics
/// Panics if `q == 0`.
pub fn planted_x3c(q: usize, extra_sets: usize, seed: u64) -> X3cInstance {
    assert!(q > 0, "need at least one cover set");
    let n_elements = 3 * q;
    let n_sets = q + extra_sets;
    let mut rng = SmallRng::seed_from_u64(seed);

    // Planted cover: sets {0,1,2}, {3,4,5}, … over a shuffled ground set.
    let mut ground: Vec<u32> = (0..n_elements as u32).collect();
    for i in (1..ground.len()).rev() {
        ground.swap(i, rng.gen_range(0..=i));
    }
    let mut b = MatrixBuilder::new(n_elements as u32, n_sets as u32, RatingScale::binary());
    let mut rated: Vec<Vec<bool>> = vec![vec![false; n_sets]; n_elements];
    for set in 0..q {
        for slot in 0..3 {
            let element = ground[3 * set + slot] as usize;
            rated[element][set] = true;
        }
    }
    // Distractor sets: three distinct random elements each.
    #[allow(clippy::needless_range_loop)] // `set` is an id, not just an index
    for set in q..n_sets {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < 3 {
            chosen.insert(rng.gen_range(0..n_elements));
        }
        for &element in &chosen {
            rated[element][set] = true;
        }
    }
    for (element, row) in rated.iter().enumerate() {
        for (set, &member) in row.iter().enumerate() {
            b.push(element as u32, set as u32, if member { 1.0 } else { 0.0 })
                .expect("binary rating");
        }
    }
    X3cInstance {
        matrix: b.build().expect("non-empty instance"),
        cover: (0..q as u32).collect(),
        q,
    }
}

/// A tie-dense instance: every user rates every item from a tiny value set
/// (default `{1, 5}`), maximizing duplicate preference profiles. Stresses
/// tie-breaking determinism and the duplicate-key regime of Theorem 2.
pub fn tie_dense(n_users: u32, n_items: u32, seed: u64) -> RatingMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = MatrixBuilder::new(n_users, n_items, RatingScale::one_to_five());
    for u in 0..n_users {
        for i in 0..n_items {
            let v = if rng.gen_bool(0.5) { 1.0 } else { 5.0 };
            b.push(u, i, v).expect("valid rating");
        }
    }
    b.build().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf_core::{Aggregation, FormationConfig, GroupFormer, PrefIndex, Semantics};
    use gf_exact::PartitionDp;

    #[test]
    fn planted_instance_shape() {
        let inst = planted_x3c(3, 2, 1);
        assert_eq!(inst.matrix.n_users(), 9);
        assert_eq!(inst.matrix.n_items(), 5);
        // Each planted set covers exactly 3 elements.
        let t = inst.matrix.transpose();
        for &set in &inst.cover {
            let ones = t.item_scores(set).iter().filter(|&&s| s == 1.0).count();
            assert_eq!(ones, 3, "set {set}");
        }
    }

    #[test]
    fn planted_cover_achieves_objective_q() {
        // The reduction's YES direction: partitioning by the planted cover
        // gives q groups each scoring 1 under LM with k = 1, so the exact
        // optimum is exactly q.
        let inst = planted_x3c(3, 1, 2);
        let prefs = PrefIndex::build(&inst.matrix);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 1, inst.q);
        let opt = PartitionDp::new().form(&inst.matrix, &prefs, &cfg).unwrap();
        assert_eq!(opt.objective, inst.q as f64);
    }

    #[test]
    fn every_element_in_exactly_one_cover_set() {
        let inst = planted_x3c(4, 3, 3);
        let t = inst.matrix.transpose();
        let mut covered = vec![0usize; inst.matrix.n_users() as usize];
        for &set in &inst.cover {
            for (pos, &u) in t.item_users(set).iter().enumerate() {
                if t.item_scores(set)[pos] == 1.0 {
                    covered[u as usize] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "{covered:?}");
    }

    #[test]
    fn tie_dense_values_are_binaryish() {
        let m = tie_dense(20, 5, 4);
        for u in 0..20 {
            for (_, s) in m.user_ratings(u) {
                assert!(s == 1.0 || s == 5.0);
            }
        }
        assert_eq!(m.nnz(), 100);
    }

    #[test]
    fn tie_dense_produces_duplicate_keys() {
        // With 2^3 = 8 possible profiles and 40 users, pigeonhole forces
        // duplicates — the regime where bucket sharing actually occurs.
        use gf_core::GreedyFormer;
        let m = tie_dense(40, 3, 5);
        let prefs = PrefIndex::build(&m);
        let cfg = FormationConfig::new(Semantics::LeastMisery, Aggregation::Sum, 3, 5);
        let r = GreedyFormer::new().form(&m, &prefs, &cfg).unwrap();
        assert!(
            r.n_buckets < 40,
            "expected duplicate profiles, got {}",
            r.n_buckets
        );
        r.grouping.validate(40, 5).unwrap();
    }
}
