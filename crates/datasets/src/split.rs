//! Dataset partitioning.
//!
//! Two kinds of splits appear in the paper's setup:
//!
//! * the Yahoo! Music snapshot "has been randomly partitioned so as to
//!   correspond to 10 equally sized sets of users, in order to enable
//!   cross-validation" — [`user_folds`];
//! * collaborative-filtering pre-processing needs per-user train/test
//!   rating holdouts to evaluate predictors — [`holdout_split`].

use gf_core::{MatrixBuilder, RatingMatrix, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Partitions the users into `folds` equally sized sets (sizes differ by at
/// most 1), reproducibly in `seed`. Returns the user ids of each fold.
pub fn user_folds(n_users: u32, folds: usize, seed: u64) -> Vec<Vec<u32>> {
    assert!(folds > 0, "need at least one fold");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut users: Vec<u32> = (0..n_users).collect();
    for i in (1..users.len()).rev() {
        users.swap(i, rng.gen_range(0..=i));
    }
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); folds];
    for (pos, u) in users.into_iter().enumerate() {
        out[pos % folds].push(u);
    }
    for fold in &mut out {
        fold.sort_unstable();
    }
    out
}

/// A per-user train/test holdout of ratings.
#[derive(Debug, Clone)]
pub struct Holdout {
    /// Training ratings (same shape as the source matrix).
    pub train: RatingMatrix,
    /// Held-out `(user, item, rating)` triples.
    pub test: Vec<(u32, u32, f64)>,
}

/// Holds out `test_fraction` of every user's ratings (at least one rating
/// always stays in train for users with ≥ 2 ratings; users with a single
/// rating keep it in train).
pub fn holdout_split(matrix: &RatingMatrix, test_fraction: f64, seed: u64) -> Result<Holdout> {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut train = MatrixBuilder::new(matrix.n_users(), matrix.n_items(), matrix.scale());
    let mut test = Vec::new();
    let mut row: Vec<(u32, f64)> = Vec::new();
    for u in 0..matrix.n_users() {
        row.clear();
        row.extend(matrix.user_ratings(u));
        if row.len() < 2 {
            for &(i, s) in &row {
                train.push(u, i, s)?;
            }
            continue;
        }
        // Shuffle the row, keep the first (1 - fraction) in train.
        for i in (1..row.len()).rev() {
            row.swap(i, rng.gen_range(0..=i));
        }
        let n_test = ((row.len() as f64) * test_fraction).floor() as usize;
        let n_test = n_test.min(row.len() - 1);
        for (pos, &(i, s)) in row.iter().enumerate() {
            if pos < n_test {
                test.push((u, i, s));
            } else {
                train.push(u, i, s)?;
            }
        }
    }
    Ok(Holdout {
        train: train.build()?,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn folds_partition_all_users() {
        let folds = user_folds(103, 10, 42);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<u32> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Equal sizes within 1 (the paper's "10 equally sized sets").
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn folds_deterministic() {
        assert_eq!(user_folds(50, 5, 7), user_folds(50, 5, 7));
        assert_ne!(user_folds(50, 5, 7), user_folds(50, 5, 8));
    }

    #[test]
    fn holdout_preserves_every_rating_once() {
        let d = SynthConfig::tiny(30, 10).generate();
        let h = holdout_split(&d.matrix, 0.3, 1).unwrap();
        assert_eq!(h.train.nnz() + h.test.len(), d.matrix.nnz());
        for &(u, i, s) in &h.test {
            assert_eq!(d.matrix.get(u, i), Some(s));
            assert_eq!(h.train.get(u, i), None, "rating leaked into train");
        }
    }

    #[test]
    fn holdout_keeps_at_least_one_train_rating_per_user() {
        let d = SynthConfig::yahoo_music()
            .with_users(40)
            .with_items(50)
            .generate();
        let h = holdout_split(&d.matrix, 0.9, 2).unwrap();
        for u in 0..40 {
            assert!(h.train.degree(u) >= 1, "user {u} has no train ratings");
        }
    }

    #[test]
    fn zero_fraction_keeps_everything_in_train() {
        let d = SynthConfig::tiny(10, 5).generate();
        let h = holdout_split(&d.matrix, 0.0, 3).unwrap();
        assert!(h.test.is_empty());
        assert_eq!(h.train.nnz(), d.matrix.nnz());
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn full_fraction_rejected() {
        let d = SynthConfig::tiny(4, 4).generate();
        let _ = holdout_split(&d.matrix, 1.0, 0);
    }
}
