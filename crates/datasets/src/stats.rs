//! Dataset statistics (regenerates Table 3 of the paper).

use gf_core::RatingMatrix;
use std::fmt;

/// Summary statistics of a rating dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub n_users: u32,
    /// Number of items.
    pub n_items: u32,
    /// Number of stored ratings.
    pub n_ratings: usize,
    /// Fraction of the user × item grid that is rated.
    pub density: f64,
    /// Minimum ratings per user.
    pub min_ratings_per_user: usize,
    /// Mean ratings per user.
    pub mean_ratings_per_user: f64,
    /// Maximum ratings per user.
    pub max_ratings_per_user: usize,
    /// Mean rating value.
    pub mean_rating: f64,
    /// Smallest and largest observed rating.
    pub rating_range: (f64, f64),
}

impl DatasetStats {
    /// Computes statistics for a named matrix.
    pub fn compute(name: &str, matrix: &RatingMatrix) -> Self {
        let n = matrix.n_users();
        let mut min_d = usize::MAX;
        let mut max_d = 0usize;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for u in 0..n {
            let d = matrix.degree(u);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
            for &s in matrix.user_scores(u) {
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        if matrix.nnz() == 0 {
            lo = 0.0;
            hi = 0.0;
        }
        DatasetStats {
            name: name.to_string(),
            n_users: n,
            n_items: matrix.n_items(),
            n_ratings: matrix.nnz(),
            density: matrix.density(),
            min_ratings_per_user: if n == 0 { 0 } else { min_d },
            mean_ratings_per_user: if n == 0 {
                0.0
            } else {
                matrix.nnz() as f64 / n as f64
            },
            max_ratings_per_user: max_d,
            mean_rating: matrix.global_mean(),
            rating_range: (lo, hi),
        }
    }

    /// The Table-3 row: `dataset name | # users | # items`.
    pub fn table3_row(&self) -> String {
        format!("{} | {} | {}", self.name, self.n_users, self.n_items)
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataset: {}", self.name)?;
        writeln!(f, "  users:           {}", self.n_users)?;
        writeln!(f, "  items:           {}", self.n_items)?;
        writeln!(f, "  ratings:         {}", self.n_ratings)?;
        writeln!(f, "  density:         {:.5}", self.density)?;
        writeln!(
            f,
            "  ratings/user:    min {} / mean {:.1} / max {}",
            self.min_ratings_per_user, self.mean_ratings_per_user, self.max_ratings_per_user
        )?;
        writeln!(
            f,
            "  rating values:   mean {:.2}, range [{}, {}]",
            self.mean_rating, self.rating_range.0, self.rating_range.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;
    use gf_core::RatingScale;

    #[test]
    fn stats_of_dense_example() {
        let m =
            RatingMatrix::from_dense(&[&[1.0, 4.0][..], &[2.0, 3.0]], RatingScale::one_to_five())
                .unwrap();
        let s = DatasetStats::compute("ex", &m);
        assert_eq!(s.n_users, 2);
        assert_eq!(s.n_items, 2);
        assert_eq!(s.n_ratings, 4);
        assert_eq!(s.density, 1.0);
        assert_eq!(s.min_ratings_per_user, 2);
        assert_eq!(s.max_ratings_per_user, 2);
        assert_eq!(s.rating_range, (1.0, 4.0));
        assert!((s.mean_rating - 2.5).abs() < 1e-12);
    }

    #[test]
    fn paper_trim_guarantee_holds_on_synth() {
        // Table 3 pre-processing: each user has rated at least 20 songs.
        let d = SynthConfig::yahoo_music()
            .with_users(100)
            .with_items(200)
            .generate();
        let s = DatasetStats::compute(&d.name, &d.matrix);
        assert!(s.min_ratings_per_user >= 20);
        assert_eq!(s.rating_range.0, 1.0);
        assert_eq!(s.rating_range.1, 5.0);
    }

    #[test]
    fn table3_row_format() {
        let d = SynthConfig::tiny(5, 3).generate();
        let s = DatasetStats::compute("tiny", &d.matrix);
        assert_eq!(s.table3_row(), "tiny | 5 | 3");
    }

    #[test]
    fn display_contains_key_fields() {
        let d = SynthConfig::tiny(5, 3).generate();
        let s = DatasetStats::compute(&d.name, &d.matrix);
        let text = s.to_string();
        assert!(text.contains("users"));
        assert!(text.contains("density"));
    }
}
