//! # gf-datasets — the dataset substrate
//!
//! The paper evaluates on Yahoo! Music (200,000 users × 136,736 songs) and
//! MovieLens 10M (71,567 users × 10,681 movies), plus a Flickr-derived POI
//! log for the user study (Table 3, Section 7). Those corpora cannot be
//! redistributed, so this crate provides:
//!
//! * a **latent-factor synthetic generator** ([`synth`]) that reproduces
//!   the *structural* properties the experiments rely on — clustered user
//!   preferences (so greedy group formation finds users with shared top-`k`
//!   prefixes), Zipf item popularity, a densely-rated head, per-user rating
//!   counts ≥ 20 and a 1–5 star scale — with presets matching each paper
//!   dataset's shape;
//! * **loaders** ([`io`]) for the real MovieLens `.dat`/CSV formats and
//!   generic TSV, so the actual files can be dropped in when available;
//! * **sampling** ([`sample`]) of user/item sub-populations (the paper's
//!   "randomly select 200 users and 100 items");
//! * **splits** ([`split`]) — the 10-fold user partition the Yahoo! set
//!   ships with, and per-user holdout splits for recommender evaluation;
//! * **statistics** ([`stats`]) that regenerate Table 3.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod io;
pub mod sample;
pub mod split;
pub mod stats;
pub mod synth;
pub mod zipf;

pub use io::IdRemapper;
pub use stats::DatasetStats;
pub use synth::{Dataset, SynthConfig};
pub use zipf::Zipf;
