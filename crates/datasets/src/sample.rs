//! Sub-population sampling.
//!
//! The paper's quality experiments "randomly select 200 users and 100 items"
//! from the full corpora. These helpers draw such samples reproducibly and
//! slice the matrix down with [`RatingMatrix::submatrix`].

use gf_core::{RatingMatrix, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws `count` distinct values from `0..n` by partial Fisher–Yates,
/// in O(n) memory and O(count) swaps. Returns all of `0..n` if `count >= n`.
pub fn sample_indices(rng: &mut impl Rng, n: u32, count: usize) -> Vec<u32> {
    let n_usize = n as usize;
    let mut pool: Vec<u32> = (0..n).collect();
    let take = count.min(n_usize);
    for slot in 0..take {
        let pick = rng.gen_range(slot..n_usize);
        pool.swap(slot, pick);
    }
    pool.truncate(take);
    pool
}

/// The `count` most-rated items of the matrix (ties by ascending id) — the
/// realistic choice when slicing a sparse corpus down to an experimental
/// item set, since uniformly random items of a Zipf corpus are mostly
/// unrated.
pub fn densest_items(matrix: &RatingMatrix, count: usize) -> Vec<u32> {
    let t = matrix.transpose();
    let mut by_degree: Vec<u32> = (0..matrix.n_items()).collect();
    by_degree.sort_by_key(|&i| (std::cmp::Reverse(t.degree(i)), i));
    by_degree.truncate(count.min(matrix.n_items() as usize));
    by_degree
}

/// Draws a reproducible `n_users x n_items` experimental slice: uniformly
/// random users crossed with the densest items.
pub fn experimental_slice(
    matrix: &RatingMatrix,
    n_users: usize,
    n_items: usize,
    seed: u64,
) -> Result<RatingMatrix> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let users = sample_indices(&mut rng, matrix.n_users(), n_users);
    let items = densest_items(matrix, n_items);
    matrix.submatrix(&users, &items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sample_indices(&mut rng, 100, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(s.iter().all(|&v| v < 100));
    }

    #[test]
    fn sample_indices_saturates() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = sample_indices(&mut rng, 5, 50);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn sample_is_seed_deterministic() {
        let a = sample_indices(&mut SmallRng::seed_from_u64(3), 1000, 10);
        let b = sample_indices(&mut SmallRng::seed_from_u64(3), 1000, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn densest_items_sorted_by_degree() {
        let d = SynthConfig::yahoo_music()
            .with_users(100)
            .with_items(300)
            .generate();
        let items = densest_items(&d.matrix, 20);
        assert_eq!(items.len(), 20);
        let t = d.matrix.transpose();
        for w in items.windows(2) {
            assert!(t.degree(w[0]) >= t.degree(w[1]));
        }
    }

    #[test]
    fn experimental_slice_has_requested_shape() {
        let d = SynthConfig::yahoo_music()
            .with_users(500)
            .with_items(400)
            .generate();
        let s = experimental_slice(&d.matrix, 200, 100, 7).unwrap();
        assert_eq!(s.n_users(), 200);
        assert_eq!(s.n_items(), 100);
        // Densest-item slicing keeps the slice usable: everyone still has
        // ratings (the head items are rated by everyone).
        for u in 0..s.n_users() {
            assert!(s.degree(u) > 0, "user {u} lost all ratings");
        }
    }
}
