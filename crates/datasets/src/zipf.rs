//! Zipf-distributed sampling over item ranks.
//!
//! Item popularity in rating datasets is heavy-tailed: a small head of
//! items collects most ratings. The generator samples which items a user
//! rates from a Zipf distribution `P(rank r) ∝ 1 / r^s`, implemented by
//! inverse-CDF lookup over a precomputed cumulative table (O(m) memory,
//! O(log m) per sample) — no extra dependency needed.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` (rank 0 is the most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[r]` = P(rank <= r).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s >= 0`
    /// (`s = 0` is uniform; `s ≈ 1` is classic Zipf).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draws `count` *distinct* ranks (by rejection), ascending order not
    /// guaranteed. Falls back to taking every rank when `count >= n`.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        let n = self.len();
        if count >= n {
            return (0..n).collect();
        }
        let mut seen = vec![false; n];
        let mut out = Vec::with_capacity(count);
        // Rejection sampling is fast while count << n; once the acceptance
        // rate degrades (count close to n), sweep the remaining ranks.
        let mut attempts = 0usize;
        let max_attempts = 20 * count + 100;
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let r = self.sample(rng);
            if !seen[r] {
                seen[r] = true;
                out.push(r);
            }
        }
        if out.len() < count {
            for (r, s) in seen.iter().enumerate() {
                if !*s {
                    out.push(r);
                    if out.len() == count {
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn head_dominates_when_s_is_one() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0usize;
        const N: usize = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1 over 1000 ranks, the top-10 mass is H(10)/H(1000) ≈ 39%.
        let frac = head as f64 / N as f64;
        assert!((0.3..0.5).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(17, 1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn distinct_sampling() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let s = z.sample_distinct(&mut rng, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn distinct_sampling_saturates() {
        let z = Zipf::new(5, 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let s = z.sample_distinct(&mut rng, 50);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn distinct_sampling_near_saturation_completes() {
        // Acceptance degrades near n; the sweep fallback must kick in.
        let z = Zipf::new(50, 2.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let s = z.sample_distinct(&mut rng, 49);
        assert_eq!(s.len(), 49);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid Zipf exponent")]
    fn negative_exponent_panics() {
        let _ = Zipf::new(3, -1.0);
    }
}
