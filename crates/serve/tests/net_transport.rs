//! Transport-level regression tests, run against **both** transports
//! (`epoll` where the platform has it, `blocking` everywhere): request
//! segmentation across arbitrary TCP boundaries, pipelining, oversized
//! bodies (413), stalled-client deadlines, the blocking thread cap, and
//! byte-identical responses across transports.
//!
//! Everything here talks over real sockets; the routing layer is
//! byte-for-byte shared, so any divergence is a transport bug.

use gf_core::{Aggregation, FormationConfig, RatingMatrix, RatingScale, Semantics};
use gf_serve::{NetMode, NetOptions, ServeConfig, ServeState, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn modes() -> Vec<NetMode> {
    if cfg!(target_os = "linux") {
        vec![NetMode::Epoll, NetMode::Blocking]
    } else {
        vec![NetMode::Blocking]
    }
}

fn test_state() -> Arc<ServeState> {
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|u| {
            (0..6)
                .map(|i| 1.0 + ((u * 5 + i * 3 + u * i) % 5) as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let matrix = RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap();
    let cfg = ServeConfig::new(FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::Min,
        2,
        4,
    ))
    .with_batch_window(Duration::from_millis(1));
    ServeState::new(matrix, cfg).unwrap()
}

fn start(mode: NetMode, tweak: impl FnOnce(&mut NetOptions)) -> ServerHandle {
    let mut net = NetOptions {
        mode,
        ..NetOptions::default()
    };
    tweak(&mut net);
    Server::bind_with("127.0.0.1:0", test_state(), net)
        .unwrap()
        .spawn()
        .unwrap()
}

/// Reads one HTTP response (headers + content-length body) off `stream`.
/// `carry` holds bytes read past the end of this response — pipelined
/// responses often share a TCP segment, so callers reading several
/// responses off one connection must pass the same carry buffer.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String) {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before a full response arrived");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..header_end].to_vec()).unwrap();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().unwrap())
        })
        .expect("every response carries content-length");
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec()).unwrap();
    *carry = buf.split_off(body_start + content_length);
    (status, body)
}

/// `read_response` for call sites that only ever read one response per
/// connection (no pipelining, so nothing can trail the response).
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    read_response(stream, &mut Vec::new())
}

#[test]
fn two_pipelined_requests_in_one_write_answer_in_order() {
    for mode in modes() {
        let server = start(mode, |_| {});
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Two requests in a single TCP segment; answers must come back
        // in order on the same connection.
        let wire = "GET /v1/health HTTP/1.1\r\n\r\nGET /v1/group/0 HTTP/1.1\r\n\r\n";
        stream.write_all(wire.as_bytes()).unwrap();
        let mut carry = Vec::new();
        let (s1, b1) = read_response(&mut stream, &mut carry);
        let (s2, b2) = read_response(&mut stream, &mut carry);
        assert_eq!(s1, 200, "{mode:?}: health status");
        assert!(b1.contains("\"status\":\"ok\""), "{mode:?}: health body");
        assert_eq!(s2, 200, "{mode:?}: group status");
        assert!(b2.contains("\"user\":0"), "{mode:?}: group body: {b2}");
        server.stop();
    }
}

#[test]
fn one_request_split_across_five_reads_still_parses() {
    for mode in modes() {
        let server = start(mode, |_| {});
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = "{\"user\":0,\"item\":2,\"rating\":4}";
        let wire = format!(
            "POST /v1/rate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        // Five deliberately awkward fragments: mid-method, mid-header
        // name, between header block and body, and mid-body.
        let cuts = [4, 17, 30, wire.len() - 9, wire.len() - 3, wire.len()];
        let mut at = 0;
        for cut in cuts {
            stream.write_all(&wire.as_bytes()[at..cut]).unwrap();
            stream.flush().unwrap();
            at = cut;
            std::thread::sleep(Duration::from_millis(5));
        }
        let (status, body) = read_one_response(&mut stream);
        assert_eq!(status, 202, "{mode:?}: fragmented rate: {body}");
        assert!(body.contains("\"accepted\":true"), "{mode:?}: {body}");
        server.stop();
    }
}

#[test]
fn header_and_body_straddling_one_boundary_parses() {
    for mode in modes() {
        let server = start(mode, |_| {});
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = "{\"user\":1,\"item\":0,\"rating\":5}";
        let wire = format!(
            "POST /v1/rate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        // One boundary, placed so the blank line and the body head land
        // in different segments.
        let cut = wire.find("\r\n\r\n").unwrap() + 2;
        stream.write_all(&wire.as_bytes()[..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        stream.write_all(&wire.as_bytes()[cut..]).unwrap();
        let (status, body) = read_one_response(&mut stream);
        assert_eq!(status, 202, "{mode:?}: straddled rate: {body}");
        server.stop();
    }
}

#[test]
fn oversized_content_length_is_413_with_shared_envelope() {
    let fixture = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/error_payload_too_large.json");
    for mode in modes() {
        let server = start(mode, |_| {});
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Declared 1 byte over MAX_BODY; the reject must come *without*
        // the client ever sending the body.
        stream
            .write_all(b"POST /v1/rate HTTP/1.1\r\ncontent-length: 1048577\r\n\r\n")
            .unwrap();
        let (status, body) = read_one_response(&mut stream);
        assert_eq!(status, 413, "{mode:?}: oversized body status: {body}");
        assert!(
            body.contains("\"code\":\"payload_too_large\""),
            "{mode:?}: envelope code: {body}"
        );
        if std::env::var("GF_UPDATE_GOLDEN").is_ok() {
            std::fs::write(&fixture, format!("{body}\n")).unwrap();
        } else {
            let committed = std::fs::read_to_string(&fixture)
                .expect("golden fixture error_payload_too_large.json is committed");
            assert_eq!(body, committed.trim_end(), "{mode:?}: 413 envelope drifted");
        }
        // The connection closes after a protocol error.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "{mode:?}: server kept talking after 413");
        server.stop();
    }
}

#[test]
fn at_limit_content_length_is_still_accepted() {
    // The boundary itself (exactly MAX_BODY) must not be rejected: a
    // 1MiB body is a 400 (bad json) from routing, not a 413.
    for mode in modes() {
        let server = start(mode, |_| {});
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let body = "x".repeat(1024 * 1024);
        let wire = format!(
            "POST /v1/rate HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        stream.write_all(wire.as_bytes()).unwrap();
        let (status, body) = read_one_response(&mut stream);
        assert_eq!(status, 400, "{mode:?}: at-limit body reaches routing");
        assert!(body.contains("\"bad_request\""), "{mode:?}: {body}");
        server.stop();
    }
}

#[test]
fn stalled_client_is_disconnected_at_the_deadline() {
    for mode in modes() {
        let server = start(mode, |net| {
            net.conn_timeout = Some(Duration::from_millis(300));
        });
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A slowloris: half a request line, then silence.
        stream.write_all(b"GET /v1/hea").unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let started = std::time::Instant::now();
        let mut buf = [0u8; 64];
        let n = stream.read(&mut buf).expect("server must close, not hang");
        assert_eq!(n, 0, "{mode:?}: stalled client got bytes: {buf:?}");
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "{mode:?}: deadline took {:?}",
            started.elapsed()
        );
        // The reap is visible in stats.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let timed_out = server
                .state()
                .stats
                .conns_timed_out
                .load(std::sync::atomic::Ordering::Relaxed);
            if timed_out >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{mode:?}: conns_timed_out never incremented"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        server.stop();
    }
}

#[test]
fn responsive_connection_survives_the_idle_deadline() {
    // Activity must push the deadline out: a keep-alive connection
    // issuing a request every ~150ms across 4 windows of a 300ms
    // timeout stays connected.
    for mode in modes() {
        let server = start(mode, |net| {
            net.conn_timeout = Some(Duration::from_millis(300));
        });
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for _ in 0..8 {
            stream
                .write_all(b"GET /v1/health HTTP/1.1\r\n\r\n")
                .unwrap();
            let (status, _) = read_one_response(&mut stream);
            assert_eq!(status, 200, "{mode:?}: keep-alive request failed");
            std::thread::sleep(Duration::from_millis(150));
        }
        server.stop();
    }
}

#[test]
fn blocking_thread_cap_queues_instead_of_refusing() {
    // With the handler-thread cap at 2, six concurrent clients must all
    // eventually be answered (the extras wait in the kernel backlog).
    let server = start(NetMode::Blocking, |net| {
        net.max_conn_threads = 2;
    });
    let addr = server.addr();
    let joins: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .write_all(b"GET /v1/health HTTP/1.1\r\nconnection: close\r\n\r\n")
                    .unwrap();
                let (status, _) = read_one_response(&mut stream);
                status
            })
        })
        .collect();
    for join in joins {
        assert_eq!(join.join().unwrap(), 200);
    }
    server.stop();
}

#[test]
fn transports_answer_byte_identically() {
    if !cfg!(target_os = "linux") {
        return; // only one transport to compare
    }
    let requests: &[&str] = &[
        "GET /v1/health HTTP/1.1\r\nconnection: close\r\n\r\n",
        "GET /v1/group/0 HTTP/1.1\r\nconnection: close\r\n\r\n",
        "GET /v1/recommend/0 HTTP/1.1\r\nconnection: close\r\n\r\n",
        "GET /v1/nope HTTP/1.1\r\nconnection: close\r\n\r\n",
        "NONSENSE\r\n\r\n",
        "POST /v1/rate HTTP/1.1\r\ncontent-length: 3\r\n\r\n{]x",
    ];
    let collect = |mode: NetMode| -> Vec<(u16, String)> {
        let server = start(mode, |_| {});
        let outcomes = requests
            .iter()
            .map(|wire| {
                let mut stream = TcpStream::connect(server.addr()).unwrap();
                stream.write_all(wire.as_bytes()).unwrap();
                read_one_response(&mut stream)
            })
            .collect();
        server.stop();
        outcomes
    };
    let epoll = collect(NetMode::Epoll);
    let blocking = collect(NetMode::Blocking);
    assert_eq!(epoll, blocking, "transports disagreed on a response");
}

#[test]
fn slow_route_pipelined_behind_fast_one_keeps_response_order() {
    // `POST /form` is offloaded on the epoll path; a health check
    // pipelined *behind* it must still be answered second.
    for mode in modes() {
        let server = start(mode, |_| {});
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let wire = "POST /v1/form HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}\
                    GET /v1/health HTTP/1.1\r\n\r\n";
        stream.write_all(wire.as_bytes()).unwrap();
        let mut carry = Vec::new();
        let (s1, b1) = read_response(&mut stream, &mut carry);
        let (s2, b2) = read_response(&mut stream, &mut carry);
        assert_eq!(s1, 200, "{mode:?}: form answered first: {b1}");
        assert!(b1.contains("\"objective\""), "{mode:?}: form body: {b1}");
        assert_eq!(s2, 200, "{mode:?}: health answered second: {b2}");
        assert!(b2.contains("\"status\":\"ok\""), "{mode:?}: {b2}");
        server.stop();
    }
}

#[test]
fn eof_mid_request_is_dropped_without_dispatch() {
    for mode in modes() {
        let server = start(mode, |_| {});
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A form request cut off before the body: must never dispatch.
        stream
            .write_all(b"POST /v1/form HTTP/1.1\r\ncontent-length: 2\r\n\r\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(
            rest.is_empty(),
            "{mode:?}: truncated request was answered: {rest:?}"
        );
        let runs = server
            .state()
            .stats
            .form_runs
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(runs, 0, "{mode:?}: truncated form request dispatched");
        server.stop();
    }
}

#[test]
fn conns_accepted_counter_tracks_connections() {
    for mode in modes() {
        let server = start(mode, |_| {});
        for _ in 0..3 {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .write_all(b"GET /v1/health HTTP/1.1\r\nconnection: close\r\n\r\n")
                .unwrap();
            let (status, _) = read_one_response(&mut stream);
            assert_eq!(status, 200);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let accepted = server
                .state()
                .stats
                .conns_accepted
                .load(std::sync::atomic::Ordering::Relaxed);
            if accepted >= 3 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{mode:?}: conns_accepted stuck below 3 ({accepted})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        server.stop();
    }
}
