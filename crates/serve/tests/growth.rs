//! End-to-end population growth: a serving instance under
//! `GrowthPolicy::Grow` admits never-seen users and items through the
//! ordinary `/rate` path — journal entry, background pass, snapshot
//! succession — without a restart, and keeps every snapshot equal to a
//! cold rebuild over the union universe. Also exercises the capped-repair
//! serving mode: a `--max-swaps`-style budget still converges to the
//! unbounded grouping once updates quiesce.

use gf_core::{
    Aggregation, FormationConfig, GfError, GrowthPolicy, RatingMatrix, RatingScale, Semantics,
};
use gf_serve::http::route;
use gf_serve::{HttpRequest, Json, ServeConfig, ServeState};
use std::sync::Arc;
use std::time::Duration;

fn base_matrix(n: u32, m: u32) -> RatingMatrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|u| {
            (0..m)
                .map(|i| 1.0 + ((u * 7 + i * 3 + u * i) % 5) as f64)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    RatingMatrix::from_dense(&refs, RatingScale::one_to_five()).unwrap()
}

fn grow_state(n: u32, m: u32, max_users: u32, max_items: u32) -> Arc<ServeState> {
    let cfg = ServeConfig::new(
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3).with_growth(
            GrowthPolicy::Grow {
                max_users,
                max_items,
            },
        ),
    )
    .with_batch_window(Duration::ZERO);
    ServeState::new(base_matrix(n, m), cfg).unwrap()
}

fn get(state: &ServeState, path: &str) -> (u16, Json) {
    route(
        state,
        &HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            body: String::new(),
            keep_alive: true,
        },
    )
}

fn post(state: &ServeState, path: &str, body: &str) -> (u16, Json) {
    route(
        state,
        &HttpRequest {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            body: body.into(),
            keep_alive: true,
        },
    )
}

/// The acceptance-criteria flow: a never-seen user rates (a never-seen
/// item), `/group/{new_user}` resolves after the refresh, `/stats`
/// counters advance — no restart anywhere.
#[test]
fn never_seen_user_is_admitted_and_served() {
    let s = grow_state(8, 4, 64, 64);
    // Unknown before admission: the growth policy defers to the refresh,
    // so queries 404 until the journal applies.
    assert_eq!(get(&s, "/group/12").0, 404);
    let (status, body) = post(&s, "/rate", r#"{"user":12,"item":9,"rating":5}"#);
    assert_eq!(status, 202);
    assert_eq!(body.get("accepted"), Some(&Json::Bool(true)));
    s.flush().unwrap();

    let (status, body) = get(&s, "/group/12");
    assert_eq!(status, 200, "admitted user must resolve: {body}");
    let members = body.get("members").and_then(Json::as_arr).unwrap();
    assert!(members.iter().any(|m| m.as_u64() == Some(12)));

    let (status, stats) = get(&s, "/stats");
    assert_eq!(status, 200);
    assert_eq!(stats.get("n_users").and_then(Json::as_u64), Some(13));
    assert_eq!(stats.get("n_items").and_then(Json::as_u64), Some(10));
    assert_eq!(stats.get("users_admitted").and_then(Json::as_u64), Some(5));
    assert_eq!(stats.get("items_admitted").and_then(Json::as_u64), Some(6));

    // Gap rows (users 8..12 admitted with no ratings) are served too.
    for u in 8..12u32 {
        assert_eq!(get(&s, &format!("/group/{u}")).0, 200, "gap user {u}");
    }

    // The grown snapshot equals a cold boot over the union universe.
    let snap = s.snapshot();
    let cold = ServeState::new(
        snap.matrix.as_ref().clone(),
        ServeConfig::new(snap.default_grouping().config).with_batch_window(Duration::ZERO),
    )
    .unwrap();
    assert_eq!(
        snap.default_grouping().formation,
        cold.snapshot().default_grouping().formation
    );
    assert_eq!(
        snap.default_grouping().assignment,
        cold.snapshot().default_grouping().assignment
    );
}

/// Admissions and plain updates interleave across several bounded passes;
/// versions stay monotone, nothing is lost, and the final state is the
/// cold union state.
#[test]
fn interleaved_admissions_and_rates_apply_in_order() {
    let s = grow_state(6, 4, 32, 32);
    let updates: Vec<(u32, u32, f64)> = vec![
        (2, 1, 5.0),  // existing cell overwrite
        (9, 2, 4.0),  // new user, existing item
        (9, 2, 1.0),  // create-then-rate-again across the same journal
        (3, 6, 2.0),  // existing user, new item
        (11, 7, 3.0), // both new
    ];
    for &(u, i, r) in &updates {
        s.rate(u, i, r).unwrap();
    }
    let mut version = s.snapshot().version;
    loop {
        let applied = s.process_pending().unwrap();
        if applied == 0 {
            break;
        }
        // One version per applied journal record, independent of how the
        // bounded passes chunk the journal (the invariant crash replay
        // relies on).
        let now = s.snapshot().version;
        assert_eq!(now, version + applied as u64);
        version = now;
    }
    let snap = s.snapshot();
    assert_eq!(snap.matrix.n_users(), 12);
    assert_eq!(snap.matrix.n_items(), 8);
    assert_eq!(snap.matrix.get(9, 2), Some(1.0), "last write wins");
    assert_eq!(snap.matrix.get(2, 1), Some(5.0));
    assert_eq!(snap.matrix.get(11, 7), Some(3.0));
    snap.default_grouping()
        .formation
        .grouping
        .validate(12, 3)
        .unwrap();
    assert!(snap
        .default_grouping()
        .assignment
        .iter()
        .all(Option::is_some));
}

/// Exhaustion is a clean, atomic refusal: the journal stays empty, the
/// serving state untouched, and the route layer maps it to 409.
#[test]
fn cap_exhaustion_is_clean() {
    let s = grow_state(4, 3, 6, 5);
    assert!(matches!(
        s.rate(6, 0, 3.0),
        Err(GfError::GrowthExhausted {
            axis: "user",
            id: 6,
            max: 6
        })
    ));
    assert!(matches!(
        s.rate(0, 5, 3.0),
        Err(GfError::GrowthExhausted { axis: "item", .. })
    ));
    assert_eq!(s.pending_len(), 0);
    assert_eq!(
        post(&s, "/rate", r#"{"user":6,"item":0,"rating":3}"#).0,
        409
    );
    // In-range admissions still work right up to the cap.
    s.rate(5, 4, 2.0).unwrap();
    s.flush().unwrap();
    let snap = s.snapshot();
    assert_eq!(snap.matrix.n_users(), 6);
    assert_eq!(snap.matrix.n_items(), 5);
    // A fixed-policy server keeps the historical 404s.
    let fixed = ServeState::new(
        base_matrix(4, 3),
        ServeConfig::new(FormationConfig::new(
            Semantics::LeastMisery,
            Aggregation::Min,
            2,
            2,
        ))
        .with_batch_window(Duration::ZERO),
    )
    .unwrap();
    assert!(matches!(
        fixed.rate(4, 0, 3.0),
        Err(GfError::UserOutOfRange { .. })
    ));
}

/// Capped-repair serving mode: with `with_max_swaps(1)` every refresh may
/// defer bucket admissions, but once updates quiesce the catch-up passes
/// (run by `flush` and the background worker) converge the snapshot to
/// exactly what an unbounded server serves.
#[test]
fn capped_server_converges_once_updates_quiesce() {
    let formation = FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 4)
        .with_refresh(gf_core::RefreshMode::Incremental)
        .with_growth(GrowthPolicy::Grow {
            max_users: 64,
            max_items: 64,
        });
    let capped = ServeState::new(
        base_matrix(10, 5),
        ServeConfig::new(formation)
            .with_batch_window(Duration::ZERO)
            .with_max_updates_per_pass(2)
            .with_max_swaps(1),
    )
    .unwrap();
    // A stream that reshapes buckets and admits new users.
    let updates: Vec<(u32, u32, f64)> = vec![
        (0, 0, 5.0),
        (1, 1, 5.0),
        (12, 0, 5.0),
        (12, 1, 5.0),
        (3, 2, 1.0),
        (14, 3, 4.0),
        (7, 0, 2.0),
    ];
    for &(u, i, r) in &updates {
        capped.rate(u, i, r).unwrap();
    }
    // flush drains the journal *and* the capped catch-up passes.
    capped.flush().unwrap();
    let warm = capped.snapshot();

    let unbounded = ServeState::new(
        warm.matrix.as_ref().clone(),
        ServeConfig::new(warm.default_grouping().config).with_batch_window(Duration::ZERO),
    )
    .unwrap();
    let cold = unbounded.snapshot();
    assert_eq!(
        warm.default_grouping().formation,
        cold.default_grouping().formation,
        "capped server failed to converge after quiescence"
    );
    assert_eq!(
        warm.default_grouping().assignment,
        cold.default_grouping().assignment
    );
    // Catch-up passes really ran as installs (version beyond the update
    // passes alone is not guaranteed, but the counters must balance).
    let stats = &capped.stats;
    use std::sync::atomic::Ordering;
    assert_eq!(
        stats.rates_applied.load(Ordering::Relaxed),
        updates.len() as u64
    );
    assert!(
        stats.refresh_incremental.load(Ordering::Relaxed)
            >= stats.refresh_passes.load(Ordering::Relaxed)
    );
}
