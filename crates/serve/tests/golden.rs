//! Golden-file regression tests for the serve JSON codecs: a scripted,
//! fully deterministic serving session renders `/health`, `/rate`,
//! `/stats`, `/group` (plain and paged), `/recommend` and `/v1/feedback`
//! bodies — plus the shared `{"error":{...}}` envelope — and each
//! byte-compares against a committed fixture. Codec drift — a renamed
//! field, a reordered object, a number formatting change — fails loudly
//! here instead of silently changing the wire format.
//!
//! Success bodies are fixture-shared between `/v1/...` and the
//! unversioned aliases (the surfaces differ only in `/recommend`'s
//! `exclude_rated` default and the `Deprecation` header, which is not
//! part of the body).
//!
//! To regenerate after an *intentional* format change:
//! `GF_UPDATE_GOLDEN=1 cargo test -p gf-serve --test golden` and commit
//! the rewritten `tests/golden/*.json`.

use gf_core::{Aggregation, FormationConfig, GrowthPolicy, RatingMatrix, RatingScale, Semantics};
use gf_serve::http::route;
use gf_serve::{HttpRequest, Json, ServeConfig, ServeState};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares a rendered body against its committed fixture (or rewrites
/// the fixture under `GF_UPDATE_GOLDEN=1`).
fn assert_golden(name: &str, status: u16, expected_status: u16, body: &Json) {
    assert_eq!(status, expected_status, "{name}: unexpected status");
    let rendered = body.to_string();
    let path = fixture_path(name);
    if std::env::var("GF_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{rendered}\n")).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name}: missing fixture {} ({e})", path.display()));
    assert_eq!(
        rendered,
        committed.trim_end(),
        "{name}: wire format drifted from the committed fixture \
         (GF_UPDATE_GOLDEN=1 regenerates after intentional changes)"
    );
    // The fixture itself must stay parseable — guards against committing
    // a broken regeneration.
    Json::parse(committed.trim_end()).unwrap_or_else(|e| panic!("{name}: fixture invalid: {e}"));
}

fn request(state: &ServeState, method: &str, path: &str, query: &str, body: &str) -> (u16, Json) {
    route(
        state,
        &HttpRequest {
            method: method.into(),
            path: path.into(),
            query: query.into(),
            body: body.into(),
            keep_alive: true,
        },
    )
}

/// The scripted session: Example-1 ratings (Table 1 of the paper), one
/// accepted update, one synchronous flush. Every response below is a pure
/// function of this script.
fn scripted_state() -> Arc<ServeState> {
    let matrix = RatingMatrix::from_dense(
        &[
            &[1.0, 4.0, 3.0][..],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[3.0, 1.0, 1.0],
            &[1.0, 2.0, 5.0],
        ],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let cfg = ServeConfig::new(FormationConfig::new(
        Semantics::LeastMisery,
        Aggregation::Min,
        2,
        3,
    ))
    .with_batch_window(Duration::ZERO);
    ServeState::new(matrix, cfg).unwrap()
}

#[test]
fn serve_json_bodies_match_committed_fixtures() {
    let state = scripted_state();

    let (status, body) = request(&state, "GET", "/health", "", "");
    assert_golden("health.json", status, 200, &body);

    let (status, body) = request(
        &state,
        "POST",
        "/rate",
        "",
        r#"{"user":1,"item":0,"rating":5}"#,
    );
    assert_golden("rate.json", status, 202, &body);
    state.flush().unwrap();

    let (status, body) = request(&state, "GET", "/stats", "", "");
    assert_golden("stats.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/group/3", "", "");
    assert_golden("group.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/group/3", "limit=1&offset=1", "");
    assert_golden("group_paged.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/recommend/0", "", "");
    assert_golden("recommend.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/group/99", "", "");
    assert_golden("error_unknown_user.json", status, 404, &body);
}

/// The registry-scripted session: the Example-1 ratings with a consensus
/// grouping registered at runtime (`POST /grouping`), re-formed by name
/// (`POST /form?name=`), then one rating fanned out to both groupings.
/// Pins the named-endpoint wire formats and the per-grouping digest map.
#[test]
fn multi_grouping_json_bodies_match_committed_fixtures() {
    let state = scripted_state();

    let (status, body) = request(
        &state,
        "POST",
        "/grouping",
        "",
        r#"{"name":"cons","semantics":"cons","lambda":0.5,"aggregation":"min","ell":2}"#,
    );
    assert_golden("grouping_create.json", status, 200, &body);

    let (status, body) = request(&state, "POST", "/form", "name=cons", "");
    assert_golden("form_named.json", status, 200, &body);

    let (status, _) = request(
        &state,
        "POST",
        "/rate",
        "",
        r#"{"user":0,"item":1,"rating":2}"#,
    );
    assert_eq!(status, 202);
    state.flush().unwrap();

    let (status, body) = request(&state, "GET", "/group/cons/3", "", "");
    assert_golden("group_named.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/recommend/cons/0", "", "");
    assert_golden("recommend_named.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/stats", "", "");
    assert_golden("stats_multi.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/digest", "", "");
    assert_golden("digest_multi.json", status, 200, &body);

    // Unknown grouping names are 404s, on queries and on /form alike
    // (creation stays POST /grouping's job).
    let (status, body) = request(&state, "GET", "/group/nope/0", "", "");
    assert_golden("error_unknown_grouping.json", status, 404, &body);
    let (status, _) = request(&state, "POST", "/form", "name=nope", "");
    assert_eq!(status, 404);
}

/// The quality-loop session: one journaled `/v1/feedback` event, the
/// candidate-filtered `/v1/recommend` body (the dense Example-1 matrix
/// leaves no unrated candidates, so the filtered list is empty), the
/// opt-out + `top_k` variant, the `/v1/stats` quality block, and the
/// error envelope in its 400/404 shapes.
#[test]
fn v1_quality_loop_bodies_match_committed_fixtures() {
    let state = scripted_state();

    let (status, body) = request(&state, "POST", "/v1/feedback", "", r#"{"user":3,"item":1}"#);
    assert_golden("feedback.json", status, 202, &body);
    state.flush().unwrap();

    let (status, body) = request(&state, "GET", "/v1/recommend/0", "", "");
    assert_golden("recommend_v1_filtered.json", status, 200, &body);

    let (status, body) = request(
        &state,
        "GET",
        "/v1/recommend/0",
        "exclude_rated=false&top_k=2",
        "",
    );
    assert_golden("recommend_v1_topk.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/v1/stats", "", "");
    assert_golden("stats_quality.json", status, 200, &body);

    let (status, body) = request(
        &state,
        "POST",
        "/v1/feedback",
        "",
        r#"{"user":0,"item":0,"grouping":"nope"}"#,
    );
    assert_golden("error_unknown_grouping_feedback.json", status, 404, &body);

    let (status, body) = request(&state, "GET", "/v1/nope", "", "");
    assert_golden("error_unknown_endpoint.json", status, 404, &body);

    let (status, body) = request(&state, "GET", "/v1/group/abc", "", "");
    assert_golden("error_bad_request.json", status, 400, &body);
}

/// The growth-scripted session: the same Example-1 ratings serving under
/// `GrowthPolicy::Grow { max_users: 8, max_items: 4 }`, one admission
/// (never-seen user 7 rating never-seen item 3 — user 6 stays a gap row),
/// one flush. Pins the admission-era `/stats` counters and the clean
/// exhaustion errors at the caps.
#[test]
fn growth_json_bodies_match_committed_fixtures() {
    let matrix = RatingMatrix::from_dense(
        &[
            &[1.0, 4.0, 3.0][..],
            &[2.0, 3.0, 5.0],
            &[2.0, 5.0, 1.0],
            &[2.0, 5.0, 1.0],
            &[3.0, 1.0, 1.0],
            &[1.0, 2.0, 5.0],
        ],
        RatingScale::one_to_five(),
    )
    .unwrap();
    let cfg = ServeConfig::new(
        FormationConfig::new(Semantics::LeastMisery, Aggregation::Min, 2, 3).with_growth(
            GrowthPolicy::Grow {
                max_users: 8,
                max_items: 4,
            },
        ),
    )
    .with_batch_window(Duration::ZERO);
    let state = ServeState::new(matrix, cfg).unwrap();

    let (status, body) = request(
        &state,
        "POST",
        "/rate",
        "",
        r#"{"user":7,"item":3,"rating":5}"#,
    );
    assert_golden("rate_admission.json", status, 202, &body);
    state.flush().unwrap();

    let (status, body) = request(&state, "GET", "/stats", "", "");
    assert_golden("stats_grown.json", status, 200, &body);

    let (status, body) = request(&state, "GET", "/group/7", "", "");
    assert_golden("group_admitted.json", status, 200, &body);

    // Exhaustion on both axes: clean 409s, nothing enqueued.
    let (status, body) = request(
        &state,
        "POST",
        "/rate",
        "",
        r#"{"user":8,"item":0,"rating":5}"#,
    );
    assert_golden("error_users_exhausted.json", status, 409, &body);
    let (status, body) = request(
        &state,
        "POST",
        "/rate",
        "",
        r#"{"user":0,"item":4,"rating":5}"#,
    );
    assert_golden("error_items_exhausted.json", status, 409, &body);
    assert_eq!(state.pending_len(), 0);
}
